// Batched ingest (BAT1) over real sockets: the headline equivalence —
// any batch size through any shard count seals byte-identical to the
// single-report socket path and to the in-process SimulatedTransport
// coordinator path — plus batch-granular admission accounting,
// duplicate-batch replay, the dedup/rejected-payload interaction, and
// the zero-/max-report frame edges.

#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/coordinator.h"
#include "mergeable/aggregate/fault.h"
#include "mergeable/aggregate/storage.h"
#include "mergeable/aggregate/wire.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/server/client.h"
#include "mergeable/server/epoch_service.h"
#include "mergeable/server/ingest_server.h"
#include "mergeable/server/sharded_server.h"
#include "mergeable/store/summary_store.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

constexpr uint64_t kStream = 1;
constexpr uint64_t kShards = 6;
constexpr uint64_t kEpochs = 3;
constexpr double kEpsilon = 0.02;

SpaceSaving ShardSummary(uint64_t epoch, uint64_t shard, int items = 120) {
  SpaceSaving summary = SpaceSaving::ForEpsilon(kEpsilon);
  Rng rng(1000 * epoch + shard);
  for (int i = 0; i < items; ++i) {
    summary.Update(rng.Bernoulli(0.7) ? rng.UniformInt(15)
                                      : 200 + rng.UniformInt(50));
  }
  return summary;
}

WireReport MakeReport(uint64_t epoch, uint64_t shard) {
  WireReport report;
  report.shard_id = shard;
  report.epoch = epoch;
  report.payload = EncodeSummary(ShardSummary(epoch, shard));
  return report;
}

BackoffPolicy FastPolicy() {
  BackoffPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 1;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 8;
  return policy;
}

StoreOptions TestStore() {
  return StoreOptions{.prefix = "store",
                      .cache_capacity = 128,
                      .epsilon = kEpsilon,
                      .num_threads = 1};
}

EpochServiceConfig TestService() {
  EpochServiceConfig config;
  config.stream = kStream;
  config.shards_per_epoch = kShards;
  config.dedup_capacity = 64;
  return config;
}

// The reference answer bytes: every epoch aggregated through the
// in-process SimulatedTransport + durable coordinator path.
std::vector<std::vector<uint8_t>> ReferenceAnswers(MemStorage* backing) {
  SummaryStore<SpaceSaving> store(backing, TestStore());
  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    uint64_t offered = 0;
    SimulatedTransport transport{FaultPlan{}};
    for (uint64_t shard = 0; shard < kShards; ++shard) {
      const SpaceSaving summary = ShardSummary(epoch, shard);
      offered += summary.n();
      transport.Submit(shard, MakeReportFrame(summary, shard, epoch));
    }
    MemStorage wal;
    Coordinator<SpaceSaving> coordinator(epoch, FastPolicy(),
                                         MergeTopology::kLeftDeepChain);
    const auto result = coordinator.RunDurable(transport, kShards, &wal);
    EXPECT_TRUE(result.summary.has_value());
    EXPECT_TRUE(store.SealResult(kStream, epoch, result, offered));
  }
  std::vector<std::vector<uint8_t>> answers;
  for (uint64_t t1 = 0; t1 < kEpochs; ++t1) {
    for (uint64_t t2 = t1; t2 < kEpochs; ++t2) {
      const auto range = store.QueryRangePayload(kStream, t1, t2);
      EXPECT_TRUE(range.has_value());
      answers.push_back(*range->payload);
    }
  }
  return answers;
}

// Batched frames — every batch size, every shard count — seal
// byte-identical to the single-report and SimulatedTransport paths.
TEST(BatchTest, BatchedIngestSealsByteIdenticalAcrossSizesAndShards) {
  MemStorage ref_backing;
  const std::vector<std::vector<uint8_t>> reference =
      ReferenceAnswers(&ref_backing);

  const size_t batch_sizes[] = {1, 3, kShards};
  const size_t shard_counts[] = {1, 2, 4};
  for (const size_t batch_size : batch_sizes) {
    for (const size_t shards : shard_counts) {
      SCOPED_TRACE("batch=" + std::to_string(batch_size) +
                   " shards=" + std::to_string(shards));
      MemStorage storage;
      SummaryStore<SpaceSaving> store(&storage, TestStore());
      EpochService<SpaceSaving> service(&store, TestService());
      ShardedServerConfig config;
      config.shards = shards;
      ShardedIngestServer server(&service, config);
      ASSERT_TRUE(server.Start());
      EXPECT_EQ(server.shards(), shards);

      IngestClient client(server.port());
      ASSERT_TRUE(client.connected());
      BatchOptions options;
      options.max_reports = static_cast<uint32_t>(batch_size);
      client.set_batch_options(options);

      for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
        uint64_t offered = 0;
        uint64_t accepted = 0;
        for (uint64_t shard = 0; shard < kShards; ++shard) {
          offered += ShardSummary(epoch, shard).n();
          // The buffering path: flushes fire on max_reports and go out
          // through the scatter-gather send.
          const auto outcome =
              client.BufferReport(MakeReport(epoch, shard), FastPolicy());
          if (outcome.has_value()) {
            EXPECT_EQ(outcome->status, SendStatus::kAccepted);
            accepted += outcome->accepted;
          }
        }
        const BatchOutcome tail = client.Flush(FastPolicy());
        EXPECT_NE(tail.status, SendStatus::kExhausted);
        accepted += tail.accepted;
        EXPECT_EQ(accepted, kShards);
        server.Drain();
        ASSERT_TRUE(service.SealEpoch(epoch, offered));
      }

      size_t range_index = 0;
      for (uint64_t t1 = 0; t1 < kEpochs; ++t1) {
        for (uint64_t t2 = t1; t2 < kEpochs; ++t2) {
          WireQuery query;
          query.stream = kStream;
          query.t1 = t1;
          query.t2 = t2;
          const auto answer = client.Query(query);
          ASSERT_TRUE(answer.has_value());
          ASSERT_EQ(answer->status, AnswerStatus::kOk);
          EXPECT_EQ(answer->lost_mass, 0u);
          const auto tagged = DecodeTaggedPayload(answer->payload);
          ASSERT_TRUE(tagged.has_value());
          EXPECT_EQ(tagged->payload, reference[range_index])
              << "range [" << t1 << ", " << t2 << "]";
          ++range_index;
        }
      }
      server.Stop();
    }
  }
}

// A duplicate batch replayed after a lost verdict — the whole frame,
// verbatim — answers kDuplicate on every record and counts nothing
// twice, storm or not.
TEST(BatchTest, DuplicateBatchReplayDoesNotDoubleCount) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage, TestStore());
  EpochService<SpaceSaving> service(&store, TestService());
  IngestServer server(&service, ServerConfig{});
  ASSERT_TRUE(server.Start());
  IngestClient client(server.port());

  WireBatch batch;
  uint64_t offered = 0;
  for (uint64_t shard = 0; shard < kShards; ++shard) {
    offered += ShardSummary(0, shard).n();
    batch.reports.push_back(MakeReport(0, shard));
  }
  const std::vector<uint8_t> frame = EncodeBatchFrame(batch);

  ASSERT_TRUE(client.SendFrame(frame));
  const auto first = client.ReadFrame();
  ASSERT_TRUE(first.has_value());
  const auto verdict = DecodeBatchVerdictFrame(*first);
  ASSERT_TRUE(verdict.has_value());
  ASSERT_EQ(verdict->batch_code, ControlCode::kAccepted);
  ASSERT_EQ(verdict->codes.size(), kShards);
  for (const ControlCode code : verdict->codes) {
    EXPECT_EQ(code, ControlCode::kAccepted);
  }

  // The storm: the client's verdict was "lost", so it resends the
  // identical frame, repeatedly.
  constexpr int kResends = 30;
  for (int resend = 0; resend < kResends; ++resend) {
    ASSERT_TRUE(client.SendFrame(frame));
    const auto replay = client.ReadFrame();
    ASSERT_TRUE(replay.has_value());
    const auto replay_verdict = DecodeBatchVerdictFrame(*replay);
    ASSERT_TRUE(replay_verdict.has_value());
    ASSERT_EQ(replay_verdict->batch_code, ControlCode::kAccepted);
    for (const ControlCode code : replay_verdict->codes) {
      EXPECT_EQ(code, ControlCode::kDuplicate);
    }
  }
  server.Drain();
  EXPECT_EQ(service.pending_reports(), kShards);
  EXPECT_EQ(service.stats().reports_accepted, kShards);
  EXPECT_EQ(service.stats().reports_duplicate,
            static_cast<uint64_t>(kResends) * kShards);

  ASSERT_TRUE(service.SealEpoch(0, offered));
  const auto range = store.QueryRangePayload(kStream, 0, 0);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->eps.lost_mass, 0u);  // Nothing double- or un-counted.
  EXPECT_EQ(range->eps.n_received, offered);
  server.Stop();
}

// SendBatch resolves a duplicate storm transparently: the retry loop
// maps kDuplicate to accepted.
TEST(BatchTest, SendBatchTreatsReplayedRecordsAsAccepted) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage, TestStore());
  EpochService<SpaceSaving> service(&store, TestService());
  IngestServer server(&service, ServerConfig{});
  ASSERT_TRUE(server.Start());
  IngestClient client(server.port());

  std::vector<WireReport> reports;
  for (uint64_t shard = 0; shard < kShards; ++shard) {
    reports.push_back(MakeReport(0, shard));
  }
  const BatchOutcome once = client.SendBatch(reports, FastPolicy());
  EXPECT_EQ(once.status, SendStatus::kAccepted);
  EXPECT_EQ(once.accepted, kShards);
  const BatchOutcome again = client.SendBatch(reports, FastPolicy());
  EXPECT_EQ(again.status, SendStatus::kAccepted);
  EXPECT_EQ(again.accepted, kShards);
  EXPECT_EQ(client.stats().duplicates, kShards);
  server.Drain();
  EXPECT_EQ(service.stats().reports_accepted, kShards);
  server.Stop();
}

// Admission is exact at batch granularity: depth limits are denominated
// in reports, a batch that does not fit whole is shed whole (never
// split), and a shed batch is NACKed with one whole-batch verdict whose
// mass is accounted to the byte at seal time.
TEST(BatchTest, ShedBatchesAccountMassExactlyAtBatchGranularity) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage, TestStore());
  EpochServiceConfig service_config = TestService();
  service_config.shards_per_epoch = 16;
  EpochService<SpaceSaving> service(&store, service_config);
  ServerConfig config;
  config.workers = 1;
  // High watermark == hard cap: the cap's whole-batch check is what
  // bites first (backpressure only engages at the same threshold, and a
  // batch is hard-checked before the backpressure test).
  config.admission.high_watermark = 8;
  config.admission.low_watermark = 2;
  config.admission.hard_cap = 8;
  IngestServer server(&service, config);
  ASSERT_TRUE(server.Start());
  server.PauseWorkers(true);

  IngestClient client(server.port());
  auto make_batch = [](uint64_t first_shard, uint64_t count) {
    WireBatch batch;
    for (uint64_t i = 0; i < count; ++i) {
      batch.reports.push_back(MakeReport(0, first_shard + i));
    }
    return batch;
  };
  uint64_t offered_mass = 0;
  for (uint64_t shard = 0; shard < 12; ++shard) {
    offered_mass += ShardSummary(0, shard).n();
  }

  // Batch A (5 reports): fits the 8-report cap; admitted.
  ASSERT_TRUE(client.SendFrame(EncodeBatchFrame(make_batch(0, 5))));
  // Batch B (4 reports): 5 + 4 > 8 — shed WHOLE, immediately NACKed
  // with a whole-batch retry-after verdict.
  ASSERT_TRUE(client.SendFrame(EncodeBatchFrame(make_batch(5, 4))));
  const auto nack_frame = client.ReadFrame();
  ASSERT_TRUE(nack_frame.has_value());
  const auto nack = DecodeBatchVerdictFrame(*nack_frame);
  ASSERT_TRUE(nack.has_value());
  EXPECT_EQ(nack->batch_code, ControlCode::kRetryAfter);
  EXPECT_TRUE(nack->codes.empty());
  EXPECT_EQ(nack->retry_after_ms, config.admission.retry_after_ms);
  // Batch C (3 reports): 5 + 3 == 8 — still fits; admission never
  // split B to make room, but C's exact fit is admitted.
  ASSERT_TRUE(client.SendFrame(EncodeBatchFrame(make_batch(9, 3))));

  const AdmissionStats paused = server.admission_stats();
  EXPECT_EQ(paused.admitted_reports, 8u);
  EXPECT_EQ(paused.admitted_batches, 2u);
  EXPECT_EQ(paused.shed_reports, 4u);
  EXPECT_EQ(paused.shed_batches, 1u);
  EXPECT_LE(paused.peak_depth, config.admission.hard_cap);

  server.PauseWorkers(false);
  // The two admitted batches' verdicts arrive, all-accepted.
  for (int i = 0; i < 2; ++i) {
    const auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.has_value());
    const auto verdict = DecodeBatchVerdictFrame(*frame);
    ASSERT_TRUE(verdict.has_value());
    EXPECT_EQ(verdict->batch_code, ControlCode::kAccepted);
    for (const ControlCode code : verdict->codes) {
      EXPECT_EQ(code, ControlCode::kAccepted);
    }
  }
  server.Drain();
  EXPECT_EQ(service.pending_reports(), 8u);

  // Seal: exactly batch B's mass (shards 5..8) is lost, to the byte.
  uint64_t shed_mass = 0;
  for (uint64_t shard = 5; shard < 9; ++shard) {
    shed_mass += ShardSummary(0, shard).n();
  }
  ASSERT_TRUE(service.SealEpoch(0, offered_mass));
  const auto range = store.QueryRangePayload(kStream, 0, 0);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->eps.lost_mass, shed_mass);
  EXPECT_EQ(range->eps.n_received, offered_mass - shed_mass);
  EXPECT_FALSE(range->eps.lost_mass_estimated);
  server.Stop();
}

// A batch shed at admission recovers through SendBatch's whole-batch
// retry loop once pressure clears.
TEST(BatchTest, ShedBatchRecoversViaWholeBatchRetry) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage, TestStore());
  EpochServiceConfig service_config = TestService();
  service_config.shards_per_epoch = 16;
  EpochService<SpaceSaving> service(&store, service_config);
  ServerConfig config;
  config.workers = 1;
  config.admission.high_watermark = 4;
  config.admission.low_watermark = 2;
  config.admission.hard_cap = 8;
  config.admission.retry_after_ms = 1;
  IngestServer server(&service, config);
  ASSERT_TRUE(server.Start());
  server.PauseWorkers(true);

  // Fill to the watermark so the next batch is shed...
  IngestClient blaster(server.port());
  WireBatch filler;
  for (uint64_t shard = 0; shard < 4; ++shard) {
    filler.reports.push_back(MakeReport(0, shard));
  }
  ASSERT_TRUE(blaster.SendFrame(EncodeBatchFrame(filler)));

  // ...then release pressure from another thread while SendBatch is in
  // its NACK-backoff-resend loop. The patient policy gives the retry
  // loop ~150 ms of budget so scheduler jitter cannot exhaust it.
  std::thread releaser([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.PauseWorkers(false);
  });
  std::vector<WireReport> late;
  for (uint64_t shard = 4; shard < 8; ++shard) {
    late.push_back(MakeReport(0, shard));
  }
  BackoffPolicy patient;
  patient.max_attempts = 20;
  patient.initial_backoff_ms = 2;
  patient.multiplier = 1.5;
  patient.max_backoff_ms = 10;
  IngestClient retrier(server.port());
  const BatchOutcome outcome = retrier.SendBatch(late, patient);
  releaser.join();
  EXPECT_EQ(outcome.status, SendStatus::kAccepted);
  EXPECT_EQ(outcome.accepted, 4u);
  EXPECT_GE(retrier.stats().batch_shed_nacks, 1u);
  server.Drain();
  EXPECT_EQ(service.pending_reports(), 8u);
  server.Stop();
}

// A record whose payload fails summary validation must not poison its
// (shard, epoch) dedup key: the shard's corrected retry is accepted,
// not misread as a duplicate (which would silently lose its mass).
TEST(BatchTest, RejectedPayloadDoesNotPoisonDedupKey) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage, TestStore());
  EpochService<SpaceSaving> service(&store, TestService());
  IngestServer server(&service, ServerConfig{});
  ASSERT_TRUE(server.Start());
  IngestClient client(server.port());

  WireReport corrupt = MakeReport(0, 0);
  corrupt.payload = {0xde, 0xad, 0xbe, 0xef};  // Not a SpaceSaving.

  // Single-report path.
  EXPECT_EQ(client.SendReport(corrupt, FastPolicy()),
            SendStatus::kRejected);
  EXPECT_EQ(client.SendReport(MakeReport(0, 0), FastPolicy()),
            SendStatus::kAccepted);  // NOT kDuplicate.

  // Batched path: one bad record among good ones, then the correction.
  WireBatch mixed;
  WireReport bad = MakeReport(0, 1);
  bad.payload = {0x01, 0x02};
  mixed.reports.push_back(bad);
  mixed.reports.push_back(MakeReport(0, 2));
  ASSERT_TRUE(client.SendFrame(EncodeBatchFrame(mixed)));
  const auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.has_value());
  const auto verdict = DecodeBatchVerdictFrame(*frame);
  ASSERT_TRUE(verdict.has_value());
  ASSERT_EQ(verdict->codes.size(), 2u);
  EXPECT_EQ(verdict->codes[0], ControlCode::kRejected);
  EXPECT_EQ(verdict->codes[1], ControlCode::kAccepted);

  const BatchOutcome corrected =
      client.SendBatch({MakeReport(0, 1)}, FastPolicy());
  EXPECT_EQ(corrected.status, SendStatus::kAccepted);
  EXPECT_EQ(client.stats().duplicates, 0u);

  server.Drain();
  EXPECT_EQ(service.pending_reports(), 3u);
  EXPECT_EQ(service.stats().reports_rejected, 2u);
  server.Stop();
}

// Zero-report edge: an empty batch is a valid frame; the server answers
// it with an accepted verdict carrying zero codes and records nothing.
TEST(BatchTest, EmptyBatchRoundTripsWithZeroVerdicts) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage, TestStore());
  EpochService<SpaceSaving> service(&store, TestService());
  IngestServer server(&service, ServerConfig{});
  ASSERT_TRUE(server.Start());
  IngestClient client(server.port());

  ASSERT_TRUE(client.SendFrame(EncodeBatchFrame(WireBatch{})));
  const auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.has_value());
  const auto verdict = DecodeBatchVerdictFrame(*frame);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->batch_code, ControlCode::kAccepted);
  EXPECT_TRUE(verdict->codes.empty());
  server.Drain();
  EXPECT_EQ(service.pending_reports(), 0u);
  // Client-side, SendBatch([]) short-circuits without touching the wire.
  const BatchOutcome empty = client.SendBatch({}, FastPolicy());
  EXPECT_EQ(empty.status, SendStatus::kAccepted);
  EXPECT_EQ(empty.accepted, 0u);
  server.Stop();
}

// Max-report edge and hostile counts, at the codec level.
TEST(BatchTest, MaxReportAndHostileCountEdges) {
  // Exactly kMaxBatchReports empty-payload records round-trip.
  WireBatch max_batch;
  max_batch.reports.resize(kMaxBatchReports);
  for (uint32_t i = 0; i < kMaxBatchReports; ++i) {
    max_batch.reports[i].shard_id = i;
    max_batch.reports[i].epoch = 1;
  }
  const auto max_frame = EncodeBatchFrame(max_batch);
  const auto decoded = DecodeBatchFrame(max_frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->reports.size(), kMaxBatchReports);

  // One past the cap — hand-built with a VALID checksum, so the count
  // bound itself must reject it (not the corruption defense).
  ByteWriter over_body;
  over_body.PutU32(kMaxBatchReports + 1);
  for (uint32_t i = 0; i < kMaxBatchReports + 1; ++i) {
    over_body.PutU64(i);
    over_body.PutU64(1);
    over_body.PutBytes(std::vector<uint8_t>{});
  }
  ByteWriter over;
  over.PutU32(BatchFrameMagic());
  over.PutBytes(over_body.bytes());
  over.PutU64(BatchFrameBodyChecksum(over_body.bytes()));
  EXPECT_FALSE(DecodeBatchFrame(over.TakeBytes()).has_value());

  // Allocation bomb with a valid checksum: the count claims 10000
  // records but the body holds two. The bound check must refuse before
  // reserving anything.
  ByteWriter bomb_body;
  bomb_body.PutU32(10000);
  for (int i = 0; i < 2; ++i) {
    bomb_body.PutU64(static_cast<uint64_t>(i));
    bomb_body.PutU64(1);
    bomb_body.PutBytes(std::vector<uint8_t>{});
  }
  ByteWriter bomb;
  bomb.PutU32(BatchFrameMagic());
  bomb.PutBytes(bomb_body.bytes());
  bomb.PutU64(BatchFrameBodyChecksum(bomb_body.bytes()));
  const std::vector<uint8_t> bomb_frame = bomb.TakeBytes();
  EXPECT_FALSE(DecodeBatchFrame(bomb_frame).has_value());

  // The loop thread's peek charges the bomb for what the frame could
  // physically carry, not the lying header.
  uint32_t peeked = 0;
  ASSERT_TRUE(PeekBatchReportCount(bomb_frame, &peeked));
  EXPECT_LE(peeked, bomb_frame.size() / 20);
  EXPECT_LT(peeked, 10000u);
}

// Client-side flush triggers: report count, buffered bytes, deadline.
TEST(BatchTest, BufferReportFlushesOnEveryThreshold) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage, TestStore());
  EpochService<SpaceSaving> service(&store, TestService());
  IngestServer server(&service, ServerConfig{});
  ASSERT_TRUE(server.Start());
  IngestClient client(server.port());

  // Count trigger.
  BatchOptions by_count;
  by_count.max_reports = 3;
  client.set_batch_options(by_count);
  EXPECT_FALSE(client.BufferReport(MakeReport(0, 0), FastPolicy()));
  EXPECT_FALSE(client.BufferReport(MakeReport(0, 1), FastPolicy()));
  EXPECT_EQ(client.buffered_reports(), 2u);
  const auto count_flush = client.BufferReport(MakeReport(0, 2), FastPolicy());
  ASSERT_TRUE(count_flush.has_value());
  EXPECT_EQ(count_flush->accepted, 3u);
  EXPECT_EQ(client.buffered_reports(), 0u);

  // Byte trigger: one report's body already exceeds a tiny budget.
  BatchOptions by_bytes;
  by_bytes.max_bytes = 16;
  client.set_batch_options(by_bytes);
  const auto byte_flush = client.BufferReport(MakeReport(0, 3), FastPolicy());
  ASSERT_TRUE(byte_flush.has_value());
  EXPECT_EQ(byte_flush->accepted, 1u);

  // Deadline trigger: the report that finds the buffer stale flushes it.
  BatchOptions by_deadline;
  by_deadline.flush_deadline_ms = 5;
  client.set_batch_options(by_deadline);
  EXPECT_FALSE(client.BufferReport(MakeReport(0, 4), FastPolicy()));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto deadline_flush =
      client.BufferReport(MakeReport(0, 5), FastPolicy());
  ASSERT_TRUE(deadline_flush.has_value());
  EXPECT_EQ(deadline_flush->accepted, 2u);

  server.Drain();
  EXPECT_EQ(service.stats().reports_accepted, 6u);
  server.Stop();
}

// Sharded accept: connections spread across SO_REUSEPORT listeners, and
// the aggregated stats see every one exactly once.
TEST(BatchTest, ShardedAcceptCountsEveryConnectionOnce) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage, TestStore());
  EpochServiceConfig service_config = TestService();
  service_config.shards_per_epoch = 32;
  EpochService<SpaceSaving> service(&store, service_config);
  ShardedServerConfig config;
  config.shards = 4;
  ShardedIngestServer server(&service, config);
  ASSERT_TRUE(server.Start());

  constexpr size_t kClients = 32;
  std::vector<std::unique_ptr<IngestClient>> clients;
  for (size_t i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<IngestClient>(server.port()));
    ASSERT_TRUE(clients.back()->connected());
    const BatchOutcome outcome = clients.back()->SendBatch(
        {MakeReport(0, static_cast<uint64_t>(i))}, FastPolicy());
    EXPECT_EQ(outcome.status, SendStatus::kAccepted);
  }
  server.Drain();
  EXPECT_EQ(service.pending_reports(), kClients);
  EXPECT_EQ(server.stats().connections_accepted, kClients);
  EXPECT_EQ(server.admission_stats().admitted_reports, kClients);
  EXPECT_EQ(server.admission_stats().admitted_batches, kClients);
  clients.clear();
  server.Stop();
}

}  // namespace
}  // namespace mergeable
