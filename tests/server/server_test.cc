// End-to-end ingest server tests over real loopback sockets: report
// round trips, dedup, malformed/hostile input handling, and the
// headline equivalence property — an epoch ingested through the socket
// path seals byte-identically to the same reports aggregated through
// the in-process SimulatedTransport coordinator path (zero shedding).

#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/coordinator.h"
#include "mergeable/aggregate/fault.h"
#include "mergeable/aggregate/storage.h"
#include "mergeable/aggregate/wire.h"
#include "mergeable/core/merge_driver.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/server/chaos.h"
#include "mergeable/server/client.h"
#include "mergeable/server/epoch_service.h"
#include "mergeable/server/ingest_server.h"
#include "mergeable/store/summary_store.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

constexpr uint64_t kStream = 1;
constexpr uint64_t kShards = 6;
constexpr double kEpsilon = 0.02;

SpaceSaving ShardSummary(uint64_t epoch, uint64_t shard, int items = 200) {
  SpaceSaving summary = SpaceSaving::ForEpsilon(kEpsilon);
  Rng rng(1000 * epoch + shard);
  for (int i = 0; i < items; ++i) {
    summary.Update(rng.Bernoulli(0.7) ? rng.UniformInt(15)
                                      : 200 + rng.UniformInt(50));
  }
  return summary;
}

BackoffPolicy FastPolicy() {
  BackoffPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 1;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 8;
  return policy;
}

struct Harness {
  MemStorage storage;
  SummaryStore<SpaceSaving> store;
  EpochService<SpaceSaving> service;
  IngestServer server;

  explicit Harness(ServerConfig config = {},
                   EpochServiceConfig service_config = DefaultService())
      : store(&storage, StoreOptions{.prefix = "store",
                                     .cache_capacity = 128,
                                     .epsilon = kEpsilon,
                                     .num_threads = 1}),
        service(&store, service_config),
        server(&service, config) {}

  static EpochServiceConfig DefaultService() {
    EpochServiceConfig config;
    config.stream = kStream;
    config.shards_per_epoch = kShards;
    config.dedup_capacity = 64;
    return config;
  }
};

TEST(ServerTest, BindsEphemeralPortAndStopsCleanly) {
  Harness harness;
  ASSERT_TRUE(harness.server.Start());
  EXPECT_GT(harness.server.port(), 0);
  harness.server.Stop();
  // Stop is idempotent, and a stopped server can be queried for stats.
  harness.server.Stop();
  EXPECT_EQ(harness.server.stats().connections_accepted, 0u);
}

TEST(ServerTest, ReportRoundTripSealsAndAnswersQueries) {
  Harness harness;
  ASSERT_TRUE(harness.server.Start());
  IngestClient client(harness.server.port());
  ASSERT_TRUE(client.connected());

  uint64_t offered = 0;
  for (uint64_t shard = 0; shard < kShards; ++shard) {
    const SpaceSaving summary = ShardSummary(/*epoch=*/0, shard);
    offered += summary.n();
    WireReport report;
    report.shard_id = shard;
    report.epoch = 0;
    report.payload = EncodeSummary(summary);
    EXPECT_EQ(client.SendReport(report, FastPolicy()),
              SendStatus::kAccepted);
  }
  harness.server.Drain();
  EXPECT_EQ(harness.service.pending_reports(), kShards);
  ASSERT_TRUE(harness.service.SealEpoch(0, offered));

  WireQuery query;
  query.stream = kStream;
  query.t1 = 0;
  query.t2 = 0;
  const auto answer = client.Query(query);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->status, AnswerStatus::kOk);
  EXPECT_FALSE(answer->partial);
  EXPECT_EQ(answer->n_received, offered);
  EXPECT_EQ(answer->lost_mass, 0u);  // Nothing shed: exact coverage.
  EXPECT_DOUBLE_EQ(answer->coverage, 1.0);
  const auto tagged = DecodeTaggedPayload(answer->payload);
  ASSERT_TRUE(tagged.has_value());
  EXPECT_FALSE(tagged->payload.empty());
}

TEST(ServerTest, DuplicateReportsAreAbsorbedOnce) {
  Harness harness;
  ASSERT_TRUE(harness.server.Start());
  IngestClient client(harness.server.port());
  const SpaceSaving summary = ShardSummary(0, 0);
  WireReport report;
  report.shard_id = 0;
  report.epoch = 0;
  report.payload = EncodeSummary(summary);
  EXPECT_EQ(client.SendReport(report, FastPolicy()), SendStatus::kAccepted);
  // The storm: verbatim resends all come back kDuplicate (mapped to
  // accepted — the report IS recorded) and record nothing twice.
  for (int resend = 0; resend < 50; ++resend) {
    EXPECT_EQ(client.SendReport(report, FastPolicy()),
              SendStatus::kAccepted);
  }
  harness.server.Drain();
  EXPECT_EQ(harness.service.pending_reports(), 1u);
  EXPECT_EQ(harness.service.stats().reports_accepted, 1u);
  EXPECT_EQ(harness.service.stats().reports_duplicate, 50u);
  EXPECT_LE(harness.service.dedup_size(), 64u);
}

TEST(ServerTest, DedupWindowStaysBoundedAcrossEpochs) {
  Harness harness;
  ASSERT_TRUE(harness.server.Start());
  IngestClient client(harness.server.port());
  for (uint64_t epoch = 0; epoch < 40; ++epoch) {
    for (uint64_t shard = 0; shard < kShards; ++shard) {
      WireReport report;
      report.shard_id = shard;
      report.epoch = epoch;
      report.payload = EncodeSummary(ShardSummary(epoch, shard, 20));
      ASSERT_EQ(client.SendReport(report, FastPolicy()),
                SendStatus::kAccepted);
    }
    harness.server.Drain();
    harness.service.SealEpoch(epoch, 0);
  }
  // 240 distinct keys passed through a 64-key window.
  EXPECT_LE(harness.service.dedup_size(), 64u);
  EXPECT_GT(harness.service.dedup_evictions(), 0u);
}

TEST(ServerTest, MalformedAndMisroutedReportsAreRejected) {
  Harness harness;
  ASSERT_TRUE(harness.server.Start());
  IngestClient client(harness.server.port());

  // Corrupt payload: frame-valid but the summary does not decode.
  WireReport bad;
  bad.shard_id = 0;
  bad.epoch = 0;
  bad.payload = {0x01, 0x02, 0x03};
  EXPECT_EQ(client.SendReport(bad, FastPolicy()), SendStatus::kRejected);

  // Misrouted shard id (beyond the configured fleet).
  WireReport misrouted;
  misrouted.shard_id = kShards + 3;
  misrouted.epoch = 0;
  misrouted.payload = EncodeSummary(ShardSummary(0, 0));
  EXPECT_EQ(client.SendReport(misrouted, FastPolicy()),
            SendStatus::kRejected);

  // A frame with an unknown magic is NACKed kRejected by the loop
  // thread without ever reaching a worker.
  ASSERT_TRUE(client.SendFrame({0xde, 0xad, 0xbe, 0xef, 0x00}));
  const auto response = client.ReadFrame();
  ASSERT_TRUE(response.has_value());
  const auto control = DecodeControlFrame(*response);
  ASSERT_TRUE(control.has_value());
  EXPECT_EQ(control->code, ControlCode::kRejected);

  harness.server.Drain();
  EXPECT_EQ(harness.service.stats().reports_rejected, 2u);
  EXPECT_EQ(harness.server.stats().unknown_frames, 1u);
}

TEST(ServerTest, StragglerForSealedEpochIsRejected) {
  Harness harness;
  ASSERT_TRUE(harness.server.Start());
  IngestClient client(harness.server.port());
  WireReport report;
  report.shard_id = 0;
  report.epoch = 0;
  report.payload = EncodeSummary(ShardSummary(0, 0));
  ASSERT_EQ(client.SendReport(report, FastPolicy()), SendStatus::kAccepted);
  harness.server.Drain();
  harness.service.SealEpoch(0, 0);
  // The epoch is sealed: a late report for it cannot be admitted (it
  // would change a served answer), so the verdict is terminal.
  WireReport straggler;
  straggler.shard_id = 1;
  straggler.epoch = 0;
  straggler.payload = EncodeSummary(ShardSummary(0, 1));
  EXPECT_EQ(client.SendReport(straggler, FastPolicy()),
            SendStatus::kRejected);
}

TEST(ServerTest, UnknownStreamAndUnsealedRangeAreRefused) {
  Harness harness;
  ASSERT_TRUE(harness.server.Start());
  IngestClient client(harness.server.port());
  WireQuery query;
  query.stream = 99;  // Not this service's stream.
  query.t1 = 0;
  query.t2 = 0;
  auto answer = client.Query(query);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->status, AnswerStatus::kUnknownRange);
  query.stream = kStream;  // Right stream, nothing sealed yet.
  answer = client.Query(query);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->status, AnswerStatus::kUnknownRange);
}

// ISSUE criterion (c): with zero shedding, the socket path's sealed
// epochs — and every range answer over them — are byte-identical to the
// SimulatedTransport coordinator path over the same reports.
TEST(ServerTest, ZeroSheddingMatchesSimulatedTransportByteForByte) {
  constexpr uint64_t kEpochs = 4;
  Harness harness;
  ASSERT_TRUE(harness.server.Start());
  IngestClient client(harness.server.port());

  // Reference path: healthy SimulatedTransport + durable coordinator,
  // sealed into its own store.
  MemStorage ref_backing;
  SummaryStore<SpaceSaving> ref_store(
      &ref_backing, StoreOptions{.prefix = "store",
                                 .cache_capacity = 128,
                                 .epsilon = kEpsilon,
                                 .num_threads = 1});

  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    uint64_t offered = 0;
    SimulatedTransport transport{FaultPlan{}};
    for (uint64_t shard = 0; shard < kShards; ++shard) {
      const SpaceSaving summary = ShardSummary(epoch, shard);
      offered += summary.n();
      // Same encoded report bytes travel both paths.
      WireReport report;
      report.shard_id = shard;
      report.epoch = epoch;
      report.payload = EncodeSummary(summary);
      ASSERT_EQ(client.SendReport(report, FastPolicy()),
                SendStatus::kAccepted);
      transport.Submit(shard, MakeReportFrame(summary, shard, epoch));
    }
    harness.server.Drain();
    ASSERT_TRUE(harness.service.SealEpoch(epoch, offered));

    MemStorage ref_wal;  // Fresh durable state per epoch.
    Coordinator<SpaceSaving> coordinator(epoch, FastPolicy(),
                                         MergeTopology::kLeftDeepChain);
    const auto result =
        coordinator.RunDurable(transport, kShards, &ref_wal);
    ASSERT_TRUE(result.summary.has_value());
    ASSERT_TRUE(ref_store.SealResult(kStream, epoch, result, offered));
  }

  // Every range answer agrees byte-for-byte, via the wire and not.
  for (uint64_t t1 = 0; t1 < kEpochs; ++t1) {
    for (uint64_t t2 = t1; t2 < kEpochs; ++t2) {
      WireQuery query;
      query.stream = kStream;
      query.t1 = t1;
      query.t2 = t2;
      const auto answer = client.Query(query);
      ASSERT_TRUE(answer.has_value());
      ASSERT_EQ(answer->status, AnswerStatus::kOk);
      const auto tagged = DecodeTaggedPayload(answer->payload);
      ASSERT_TRUE(tagged.has_value());
      const auto reference = ref_store.QueryRangePayload(kStream, t1, t2);
      ASSERT_TRUE(reference.has_value());
      EXPECT_EQ(tagged->payload, *reference->payload)
          << "range [" << t1 << ", " << t2 << "]";
      EXPECT_EQ(answer->lost_mass, reference->eps.lost_mass);
      EXPECT_DOUBLE_EQ(answer->full_stream_bound,
                       reference->eps.full_stream_bound);
    }
  }
}

TEST(ServerTest, DeadlineBoundedQueryReturnsWidenedPartialAnswer) {
  constexpr uint64_t kEpochs = 16;
  ServerConfig config;
  EpochServiceConfig service_config = Harness::DefaultService();
  // Slow-merge injection: every covering node costs 10 virtual ms.
  service_config.query_cost_per_node_ms = 10;
  Harness harness(config, service_config);
  ASSERT_TRUE(harness.server.Start());
  IngestClient client(harness.server.port());

  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    uint64_t offered = 0;
    for (uint64_t shard = 0; shard < kShards; ++shard) {
      const SpaceSaving summary = ShardSummary(epoch, shard, 60);
      offered += summary.n();
      WireReport report;
      report.shard_id = shard;
      report.epoch = epoch;
      report.payload = EncodeSummary(summary);
      ASSERT_EQ(client.SendReport(report, FastPolicy()),
                SendStatus::kAccepted);
    }
    harness.server.Drain();
    ASSERT_TRUE(harness.service.SealEpoch(epoch, offered));
  }

  // [1, 14] needs several covering nodes; a 10 ms budget affords one.
  WireQuery tight;
  tight.stream = kStream;
  tight.t1 = 1;
  tight.t2 = 14;
  tight.deadline_ms = 10;
  const auto partial = client.Query(tight);
  ASSERT_TRUE(partial.has_value());
  ASSERT_EQ(partial->status, AnswerStatus::kOk);
  EXPECT_TRUE(partial->partial);
  EXPECT_LT(partial->epochs_covered, 14u);

  WireQuery generous = tight;
  generous.deadline_ms = 10000;
  const auto full = client.Query(generous);
  ASSERT_TRUE(full.has_value());
  EXPECT_FALSE(full->partial);
  EXPECT_EQ(full->epochs_covered, 14u);

  // The widening is honest: the partial bound accounts at least the
  // mass of every epoch it skipped, on top of the full answer's bound.
  const std::vector<EpochMeta>& metas = harness.store.Metas(kStream);
  uint64_t skipped_mass = 0;
  for (uint64_t e = tight.t1 + partial->epochs_covered; e <= tight.t2; ++e) {
    skipped_mass += metas[e].n;
  }
  EXPECT_GT(skipped_mass, 0u);
  EXPECT_EQ(partial->lost_mass, full->lost_mass + skipped_mass);
  EXPECT_GE(partial->full_stream_bound, full->full_stream_bound);
  EXPECT_GT(partial->degraded_epochs, 0u);

  // The deadline respected both ways: unbounded deadline (0) answers in
  // full too.
  WireQuery unbounded = tight;
  unbounded.deadline_ms = 0;
  const auto free = client.Query(unbounded);
  ASSERT_TRUE(free.has_value());
  EXPECT_FALSE(free->partial);
}

TEST(ServerTest, PoisonedStreamIsDisconnected) {
  Harness harness;
  ASSERT_TRUE(harness.server.Start());
  StalledConnection hostile(harness.server.port());
  ASSERT_TRUE(hostile.valid());
  // Claim a 256 MiB frame: the server must hang up, not buffer.
  ASSERT_TRUE(hostile.SendPartial(256u << 20, 16));
  EXPECT_TRUE(hostile.PeerClosed());
  // Give the loop thread a beat to account the close, then check.
  for (int i = 0; i < 100 && harness.server.stats().poisoned_streams == 0;
       ++i) {
    StalledConnection probe(harness.server.port());  // Nudges the loop.
  }
  EXPECT_EQ(harness.server.stats().poisoned_streams, 1u);
}

TEST(ServerTest, StalledPartialFrameDoesNotBlockOtherClients) {
  Harness harness;
  ASSERT_TRUE(harness.server.Start());
  StalledConnection stalled(harness.server.port());
  ASSERT_TRUE(stalled.valid());
  // A legal frame, half-delivered, then silence: the connection is idle
  // from the server's perspective and must cost other clients nothing.
  ASSERT_TRUE(stalled.SendPartial(1000, 500));
  IngestClient client(harness.server.port());
  WireReport report;
  report.shard_id = 0;
  report.epoch = 0;
  report.payload = EncodeSummary(ShardSummary(0, 0));
  EXPECT_EQ(client.SendReport(report, FastPolicy()), SendStatus::kAccepted);
}

TEST(ServerTest, ConnectionChurnSurvives) {
  Harness harness;
  ASSERT_TRUE(harness.server.Start());
  for (uint64_t round = 0; round < 30; ++round) {
    IngestClient client(harness.server.port());
    ASSERT_TRUE(client.connected());
    WireReport report;
    report.shard_id = round % kShards;
    report.epoch = 100;  // One epoch, distinct shards + duplicates.
    report.payload =
        EncodeSummary(ShardSummary(100, round % kShards, 30));
    EXPECT_EQ(client.SendReport(report, FastPolicy()),
              SendStatus::kAccepted);
  }
  harness.server.Drain();
  const ServerStats stats = harness.server.stats();
  EXPECT_EQ(stats.connections_accepted, 30u);
  EXPECT_EQ(harness.service.pending_reports(), kShards);
}

}  // namespace
}  // namespace mergeable
