// Disk pressure and warm restart at the service layer:
//
//   - a durable-backend write failure flips the service into degraded
//     mode: queries keep serving what is durable, new reports are shed
//     with retry-after NACKs, and the failed seal retries in order once
//     the disk recovers — every shed byte accounted as lost mass;
//   - the ingest service restarts warm from disk: a fresh process over
//     the same directory resumes the epoch axis and answers history;
//   - the chaos harness scripts the whole arc (healthy -> disk full ->
//     recovered) against a live server over real files.

#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/file_storage.h"
#include "mergeable/aggregate/storage.h"
#include "mergeable/aggregate/wire.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/server/chaos.h"
#include "mergeable/server/client.h"
#include "mergeable/server/epoch_service.h"
#include "mergeable/server/ingest_server.h"
#include "mergeable/store/durable_store.h"
#include "mergeable/util/random.h"
#include "../aggregate/storage_backends.h"

namespace mergeable {
namespace {

constexpr uint64_t kStream = 1;
constexpr uint64_t kShards = 4;
constexpr double kEpsilon = 0.02;

using DurableEpochService =
    EpochService<SpaceSaving, DurableStore<SpaceSaving>>;

SpaceSaving ShardSummary(uint64_t epoch, uint64_t shard, int items = 60) {
  SpaceSaving summary = SpaceSaving::ForEpsilon(kEpsilon);
  Rng rng(9000 + 100 * epoch + shard);
  for (int i = 0; i < items; ++i) summary.Update(rng.UniformInt(40));
  return summary;
}

SpaceSaving EmptySummary() { return SpaceSaving::ForEpsilon(kEpsilon); }

EpochServiceConfig ServiceConfig() {
  EpochServiceConfig config;
  config.stream = kStream;
  config.shards_per_epoch = kShards;
  config.dedup_capacity = 128;
  config.storage_retry_after_ms = 7;
  return config;
}

DurableStoreOptions StoreOptionsFor() {
  DurableStoreOptions options;
  options.store.epsilon = kEpsilon;
  return options;
}

// One epoch's reports fed straight through the frame handler.
struct FeedResult {
  uint64_t accepted = 0;
  uint64_t offered_mass = 0;
  ControlCode last_code = ControlCode::kAccepted;
  uint64_t retry_after_ms = 0;
};

FeedResult FeedEpoch(DurableEpochService& service, uint64_t epoch) {
  FeedResult result;
  for (uint64_t shard = 0; shard < kShards; ++shard) {
    const SpaceSaving summary = ShardSummary(epoch, shard);
    result.offered_mass += summary.n();
    WireReport report;
    report.shard_id = shard;
    report.epoch = epoch;
    report.payload = EncodeSummary(summary);
    const auto frame = service.HandleReport(EncodeReportFrame(report));
    const auto control = DecodeControlFrame(frame);
    EXPECT_TRUE(control.has_value()) << "shard " << shard;
    if (!control.has_value()) continue;
    result.last_code = control->code;
    result.retry_after_ms = control->retry_after_ms;
    if (control->code == ControlCode::kAccepted) ++result.accepted;
  }
  return result;
}

std::optional<WireAnswer> QueryRange(DurableEpochService& service,
                                     uint64_t t1, uint64_t t2) {
  WireQuery query;
  query.stream = kStream;
  query.t1 = t1;
  query.t2 = t2;
  const auto frame = service.HandleQuery(EncodeQueryFrame(query));
  auto answer = DecodeAnswerFrame(frame);
  if (!answer.has_value() || answer->status != AnswerStatus::kOk) {
    return std::nullopt;
  }
  return answer;
}

// The full degraded-mode arc, driven deterministically through the
// frame handlers with a sticky ENOSPC on the durable backend.
TEST(DurableServiceTest, DiskFullShedsRetriesInOrderAndAccountsMass) {
  FaultFd faults;
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make({}, &faults);
  DurableStore<SpaceSaving> store(storage.get(), StoreOptionsFor());
  DurableEpochService service(&store, ServiceConfig());
  service.set_empty_summary_factory(EmptySummary);

  // Healthy epoch 0.
  const FeedResult epoch0 = FeedEpoch(service, 0);
  ASSERT_EQ(epoch0.accepted, kShards);
  ASSERT_TRUE(service.SealEpoch(0, epoch0.offered_mass));
  EXPECT_FALSE(service.storage_degraded());

  // The disk fills. Epoch 1's reports were accepted before the seal
  // discovers the failure: their payloads are buffered, not lost.
  const FeedResult epoch1 = FeedEpoch(service, 1);
  ASSERT_EQ(epoch1.accepted, kShards);
  faults.SetSticky(FaultFd::Kind::kENOSPC);
  EXPECT_FALSE(service.SealEpoch(1, epoch1.offered_mass));
  EXPECT_TRUE(service.storage_degraded());
  EXPECT_EQ(service.buffered_seals(), 1u);
  EXPECT_EQ(service.stats().storage_seal_failures, 1u);

  // Degraded: epoch 2's reports are shed with the configured
  // retry-after hint, before dedup sees them.
  const FeedResult epoch2 = FeedEpoch(service, 2);
  EXPECT_EQ(epoch2.accepted, 0u);
  EXPECT_EQ(epoch2.last_code, ControlCode::kRetryAfter);
  EXPECT_EQ(epoch2.retry_after_ms, 7u);
  EXPECT_EQ(service.stats().reports_shed_storage, kShards);

  // Queries keep serving everything durable while degraded.
  const auto during = QueryRange(service, 0, 0);
  ASSERT_TRUE(during.has_value());
  EXPECT_EQ(during->lost_mass, 0u);

  // Sealing epoch 2 while still full: a zero-report placeholder joins
  // the buffer behind epoch 1; the store stays contiguous.
  EXPECT_FALSE(service.SealEpoch(2, epoch2.offered_mass));
  EXPECT_EQ(service.buffered_seals(), 2u);
  EXPECT_EQ(service.stats().epochs_sealed_empty, 1u);
  EXPECT_EQ(store.EpochCount(kStream), 1u);  // Only epoch 0 durable.

  // Space returns: the next seal drains the buffer in epoch order.
  faults.Clear();
  const FeedResult epoch3 = FeedEpoch(service, 3);
  EXPECT_EQ(epoch3.accepted, 0u);  // Still degraded until a seal lands.
  ASSERT_TRUE(service.SealEpoch(3, epoch3.offered_mass));
  EXPECT_FALSE(service.storage_degraded());
  EXPECT_EQ(service.buffered_seals(), 0u);
  EXPECT_EQ(service.stats().storage_recoveries, 1u);
  EXPECT_EQ(store.EpochCount(kStream), 4u);

  // Accounting to the byte: epoch 1's buffered payload survived in
  // full; epochs 2 and 3 lost exactly what the shards offered.
  const auto answer = QueryRange(service, 0, 3);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->n_received, epoch0.offered_mass + epoch1.offered_mass);
  EXPECT_EQ(answer->lost_mass,
            epoch2.offered_mass + epoch3.offered_mass);
  EXPECT_FALSE(answer->lost_mass_estimated);
  const auto& metas = store.Metas(kStream);
  EXPECT_EQ(metas[1].n, epoch1.offered_mass);
  EXPECT_EQ(metas[2].n, 0u);
  EXPECT_EQ(metas[2].lost_mass, epoch2.offered_mass);
  EXPECT_EQ(metas[3].lost_mass, epoch3.offered_mass);
}

// Buffer overflow under a long outage: overflowing epochs degrade to
// empty placeholders (O(1) memory each, mass lost to the byte) while
// the oldest buffered payloads are kept to seal first.
TEST(DurableServiceTest, SealBufferOverflowDegradesPayloadsToEmpty) {
  FaultFd faults;
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make({}, &faults);
  DurableStore<SpaceSaving> store(storage.get(), StoreOptionsFor());
  EpochServiceConfig config = ServiceConfig();
  config.max_buffered_seals = 2;
  DurableEpochService service(&store, config);
  service.set_empty_summary_factory(EmptySummary);

  const FeedResult epoch0 = FeedEpoch(service, 0);
  ASSERT_TRUE(service.SealEpoch(0, epoch0.offered_mass));

  // Shards report ahead for epochs 1..4 while the service is healthy
  // (HandleReport accepts any epoch >= next_epoch_), so every buffered
  // seal carries a real payload when the disk then fills.
  std::vector<FeedResult> fed;
  for (uint64_t epoch = 1; epoch <= 4; ++epoch) {
    fed.push_back(FeedEpoch(service, epoch));
    ASSERT_EQ(fed.back().accepted, kShards);
  }
  faults.SetSticky(FaultFd::Kind::kENOSPC);
  for (uint64_t epoch = 1; epoch <= 4; ++epoch) {
    EXPECT_FALSE(service.SealEpoch(epoch, fed[epoch - 1].offered_mass));
  }
  EXPECT_EQ(service.buffered_seals(), 4u);
  // Epochs beyond the cap (3 and 4) dropped their payloads.
  EXPECT_EQ(service.stats().seals_degraded_to_empty, 2u);

  faults.Clear();
  const FeedResult epoch5 = FeedEpoch(service, 5);
  EXPECT_EQ(epoch5.accepted, 0u);  // Still degraded until a seal lands.
  ASSERT_TRUE(service.SealEpoch(5, epoch5.offered_mass));
  EXPECT_EQ(store.EpochCount(kStream), 6u);  // Contiguous 0..5.
  const auto& metas = store.Metas(kStream);
  // Epochs 1 and 2 stayed inside the cap: payloads intact.
  for (uint64_t epoch = 1; epoch <= 2; ++epoch) {
    EXPECT_EQ(metas[epoch].n, fed[epoch - 1].offered_mass);
    EXPECT_EQ(metas[epoch].lost_mass, 0u);
  }
  // Epochs 3 and 4 degraded to empty: their whole mass is lost.
  for (uint64_t epoch = 3; epoch <= 4; ++epoch) {
    EXPECT_EQ(metas[epoch].n, 0u);
    EXPECT_EQ(metas[epoch].lost_mass, fed[epoch - 1].offered_mass);
  }
  // Every epoch's books balance: n + lost == offered, always.
  for (uint64_t epoch = 1; epoch <= 5; ++epoch) {
    const uint64_t offered =
        epoch <= 4 ? fed[epoch - 1].offered_mass : epoch5.offered_mass;
    EXPECT_EQ(metas[epoch].n + metas[epoch].lost_mass, offered)
        << "epoch " << epoch;
  }
}

// Without the factory, a zero-report epoch on a fresh stream is simply
// skipped — the pre-durability behavior.
TEST(DurableServiceTest, ZeroReportEpochSkippedWithoutFactory) {
  BackendFactory factory(BackendKind::kMem);
  auto storage = factory.Make();
  DurableStore<SpaceSaving> store(storage.get(), StoreOptionsFor());
  DurableEpochService service(&store, ServiceConfig());
  EXPECT_FALSE(service.SealEpoch(0, 0));
  EXPECT_FALSE(store.HasStream(kStream));
  EXPECT_EQ(service.next_epoch(), 1u);
}

// With the factory, a zero-report epoch after sealed history closes the
// gap that used to wedge the store's contiguous epoch axis.
TEST(DurableServiceTest, ZeroReportEpochSealsPlaceholderAfterHistory) {
  BackendFactory factory(BackendKind::kMem);
  auto storage = factory.Make();
  DurableStore<SpaceSaving> store(storage.get(), StoreOptionsFor());
  DurableEpochService service(&store, ServiceConfig());
  service.set_empty_summary_factory(EmptySummary);

  const FeedResult epoch0 = FeedEpoch(service, 0);
  ASSERT_TRUE(service.SealEpoch(0, epoch0.offered_mass));
  // Nothing arrives for epoch 1 (offered mass is known from the spec).
  ASSERT_TRUE(service.SealEpoch(1, 500));
  EXPECT_EQ(service.stats().epochs_sealed_empty, 1u);
  const FeedResult epoch2 = FeedEpoch(service, 2);
  ASSERT_TRUE(service.SealEpoch(2, epoch2.offered_mass));  // No wedge.
  EXPECT_EQ(store.EpochCount(kStream), 3u);
  const auto answer = QueryRange(service, 0, 2);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->lost_mass, 500u);
}

// Warm restart: a fresh service over a reopened store resumes the
// epoch axis, rejects stale reports, and serves history.
TEST(DurableServiceTest, WarmRestartResumesEpochAxis) {
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make();
  std::vector<uint64_t> masses;
  {
    DurableStore<SpaceSaving> store(storage.get(), StoreOptionsFor());
    DurableEpochService service(&store, ServiceConfig());
    for (uint64_t epoch = 0; epoch < 3; ++epoch) {
      const FeedResult fed = FeedEpoch(service, epoch);
      ASSERT_EQ(fed.accepted, kShards);
      masses.push_back(fed.offered_mass);
      ASSERT_TRUE(service.SealEpoch(epoch, fed.offered_mass));
    }
  }  // Process dies.

  storage->Restart();
  DurableStore<SpaceSaving> store(storage.get(), StoreOptionsFor());
  const OpenReport report = store.Open();
  EXPECT_EQ(report.epochs, 3u);
  DurableEpochService service(&store, ServiceConfig());
  EXPECT_EQ(service.next_epoch(), 3u);  // Resumed, not rewound.

  // A straggler for a pre-restart epoch is rejected, not re-admitted.
  WireReport stale;
  stale.shard_id = 0;
  stale.epoch = 1;
  stale.payload = EncodeSummary(ShardSummary(1, 0));
  const auto control =
      DecodeControlFrame(service.HandleReport(EncodeReportFrame(stale)));
  ASSERT_TRUE(control.has_value());
  EXPECT_EQ(control->code, ControlCode::kRejected);

  // History answers; the next epoch seals on the resumed axis.
  const auto history = QueryRange(service, 0, 2);
  ASSERT_TRUE(history.has_value());
  EXPECT_EQ(history->n_received, masses[0] + masses[1] + masses[2]);
  const FeedResult fed = FeedEpoch(service, 3);
  ASSERT_EQ(fed.accepted, kShards);
  ASSERT_TRUE(service.SealEpoch(3, fed.offered_mass));
  EXPECT_EQ(store.EpochCount(kStream), 4u);
}

// The scripted chaos arc against a LIVE server over real files:
// healthy traffic, a disk-full window (reports shed via retry-after
// until the client's budget exhausts), recovery — lost mass accounted
// to the byte, queries served throughout.
TEST(DurableServiceTest, ChaosDiskFullArcOverLiveServer) {
  FaultFd faults;
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make({}, &faults);
  DurableStore<SpaceSaving> store(storage.get(), StoreOptionsFor());
  DurableEpochService service(&store, ServiceConfig());
  service.set_empty_summary_factory(EmptySummary);
  ServerConfig server_config;
  server_config.workers = 1;
  IngestServer server(&service, server_config);
  ASSERT_TRUE(server.Start());

  BackoffPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 4;

  const auto set_disk_full = [&faults](bool full) {
    if (full) {
      faults.SetSticky(FaultFd::Kind::kENOSPC);
    } else {
      faults.Clear();
    }
  };
  const auto fill = [](uint64_t epoch, uint64_t shard, uint64_t items) {
    return ShardSummary(epoch, shard, static_cast<int>(items));
  };

  // Phase 1: healthy epoch 0, sealed clean.
  ChaosScript healthy;
  healthy.phases.push_back(ChaosPhase{.epoch = 0, .shards = kShards});
  const ChaosOutcome out0 =
      DriveChaos<SpaceSaving>(server.port(), healthy, policy, fill,
                              set_disk_full);
  ASSERT_EQ(out0.reports_accepted, kShards);
  ASSERT_TRUE(service.SealEpoch(0, out0.offered_mass));

  // Phase 2: the disk fills mid-epoch-1. Reports for epoch 1 landed
  // before the failed seal flags degradation.
  ChaosScript filling;
  filling.phases.push_back(
      ChaosPhase{.epoch = 1, .shards = kShards, .disk_full = true});
  const ChaosOutcome out1 = DriveChaos<SpaceSaving>(
      server.port(), filling, policy, fill, set_disk_full);
  ASSERT_EQ(out1.reports_accepted, kShards);
  EXPECT_EQ(out1.disk_full_phases, 1u);
  EXPECT_FALSE(service.SealEpoch(1, out1.offered_mass));
  EXPECT_TRUE(service.storage_degraded());

  // Phase 3: still full — every epoch-2 report is shed with
  // retry-after until the client's bounded budget exhausts.
  ChaosScript full;
  full.phases.push_back(
      ChaosPhase{.epoch = 2, .shards = kShards, .disk_full = true});
  const ChaosOutcome out2 = DriveChaos<SpaceSaving>(
      server.port(), full, policy, fill, set_disk_full);
  EXPECT_EQ(out2.reports_accepted, 0u);
  EXPECT_EQ(out2.reports_lost, kShards);
  EXPECT_GT(out2.retry_after_nacks, 0u);
  EXPECT_FALSE(service.SealEpoch(2, out2.offered_mass));

  // Phase 4: space returns. The service is still degraded until a seal
  // lands, so the recovery seal (epoch 3, nothing offered during the
  // outage tail) drains the buffer — epoch 1's payload intact, epoch
  // 2's placeholder, epoch 3's placeholder — in order.
  set_disk_full(false);
  ASSERT_TRUE(service.SealEpoch(3, 0));
  EXPECT_FALSE(service.storage_degraded());
  EXPECT_EQ(service.stats().storage_recoveries, 1u);
  EXPECT_EQ(store.EpochCount(kStream), 4u);

  // Healthy again: epoch 4 traffic is admitted and sealed clean.
  ChaosScript recovered;
  recovered.phases.push_back(ChaosPhase{.epoch = 4, .shards = kShards});
  const ChaosOutcome out4 = DriveChaos<SpaceSaving>(
      server.port(), recovered, policy, fill, set_disk_full);
  ASSERT_EQ(out4.reports_accepted, kShards);
  ASSERT_TRUE(service.SealEpoch(4, out4.offered_mass));
  EXPECT_EQ(store.EpochCount(kStream), 5u);

  IngestClient client(server.port());
  WireQuery query;
  query.stream = kStream;
  query.t1 = 0;
  query.t2 = 4;
  const auto answer = client.Query(query);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->status, AnswerStatus::kOk);
  EXPECT_EQ(answer->n_received,
            out0.accepted_mass + out1.accepted_mass + out4.accepted_mass);
  EXPECT_EQ(answer->lost_mass, out2.offered_mass);
  EXPECT_FALSE(answer->lost_mass_estimated);

  server.Stop();
}

}  // namespace
}  // namespace mergeable
