// AdmissionQueue: watermark hysteresis, hard caps, byte budget,
// priority shedding, and pause/drain semantics — the overload policy in
// isolation, fully deterministic (no server, no sockets).

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/server/admission.h"

namespace mergeable {
namespace {

WorkItem Report(size_t bytes = 10) {
  WorkItem item;
  item.kind = WorkKind::kReport;
  item.frame.assign(bytes, 0xaa);
  return item;
}

WorkItem Query(size_t bytes = 10) {
  WorkItem item;
  item.kind = WorkKind::kQuery;
  item.frame.assign(bytes, 0xbb);
  return item;
}

AdmissionConfig SmallConfig() {
  AdmissionConfig config;
  config.high_watermark = 4;
  config.low_watermark = 2;
  config.hard_cap = 8;
  config.byte_budget = 1 << 20;
  config.retry_after_ms = 7;
  return config;
}

TEST(AdmissionTest, AdmitsBelowHighWatermark) {
  AdmissionQueue queue(SmallConfig());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(queue.Offer(Report()), AdmitResult::kAdmitted);
  }
  EXPECT_FALSE(queue.in_backpressure());
  EXPECT_EQ(queue.depth(), 4u);
}

TEST(AdmissionTest, HighWatermarkEngagesBackpressureForReports) {
  AdmissionQueue queue(SmallConfig());
  for (int i = 0; i < 4; ++i) queue.Offer(Report());
  // Depth is at the high watermark: the next report is NACKed.
  EXPECT_EQ(queue.Offer(Report()), AdmitResult::kBackpressure);
  EXPECT_TRUE(queue.in_backpressure());
  const AdmissionStats stats = queue.stats();
  EXPECT_EQ(stats.admitted_reports, 4u);
  EXPECT_EQ(stats.shed_reports, 1u);
  EXPECT_EQ(stats.backpressure_nacks, 1u);
}

TEST(AdmissionTest, QueriesOutrankReportsUnderBackpressure) {
  AdmissionQueue queue(SmallConfig());
  for (int i = 0; i < 4; ++i) queue.Offer(Report());
  EXPECT_EQ(queue.Offer(Report()), AdmitResult::kBackpressure);
  // Same pressure, but a query still gets in — only the hard cap
  // stops it.
  EXPECT_EQ(queue.Offer(Query()), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.Offer(Query()), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.Offer(Query()), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.Offer(Query()), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.depth(), 8u);  // At the hard cap now.
  EXPECT_EQ(queue.Offer(Query()), AdmitResult::kOverCap);
  const AdmissionStats stats = queue.stats();
  EXPECT_EQ(stats.admitted_queries, 4u);
  EXPECT_EQ(stats.shed_queries, 1u);
}

TEST(AdmissionTest, HysteresisReleasesOnlyBelowLowWatermark) {
  AdmissionQueue queue(SmallConfig());
  for (int i = 0; i < 4; ++i) queue.Offer(Report());
  queue.Offer(Report());  // Engage.
  ASSERT_TRUE(queue.in_backpressure());
  // Draining to 3 (above low watermark 2) keeps backpressure on.
  ASSERT_TRUE(queue.Take().has_value());
  EXPECT_TRUE(queue.in_backpressure());
  EXPECT_EQ(queue.Offer(Report()), AdmitResult::kBackpressure);
  // Draining to the low watermark releases it.
  ASSERT_TRUE(queue.Take().has_value());
  EXPECT_FALSE(queue.in_backpressure());
  EXPECT_EQ(queue.Offer(Report()), AdmitResult::kAdmitted);
}

TEST(AdmissionTest, ByteBudgetBoundsQueueMemory) {
  AdmissionConfig config;
  config.high_watermark = 100;
  config.low_watermark = 10;
  config.hard_cap = 100;
  config.byte_budget = 1000;
  AdmissionQueue queue(config);
  EXPECT_EQ(queue.Offer(Report(600)), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.Offer(Report(600)), AdmitResult::kOverCap);
  EXPECT_EQ(queue.Offer(Report(400)), AdmitResult::kAdmitted);
  EXPECT_EQ(queue.queued_bytes(), 1000u);
  const AdmissionStats stats = queue.stats();
  EXPECT_LE(stats.peak_bytes, config.byte_budget);
}

TEST(AdmissionTest, DepthNeverExceedsHardCapUnderStorm) {
  AdmissionQueue queue(SmallConfig());
  for (int i = 0; i < 1000; ++i) {
    queue.Offer(Report());
    queue.Offer(Query());
    EXPECT_LE(queue.depth(), 8u);
  }
  EXPECT_LE(queue.stats().peak_depth, 8u);
}

TEST(AdmissionTest, PausedQueueStillAppliesPolicy) {
  AdmissionQueue queue(SmallConfig());
  queue.SetPaused(true);
  // With no consumer, exactly high_watermark reports are admitted and
  // the rest are NACKed — the deterministic overload state the server
  // tests lean on.
  int admitted = 0;
  int nacked = 0;
  for (int i = 0; i < 20; ++i) {
    if (queue.Offer(Report()) == AdmitResult::kAdmitted) {
      ++admitted;
    } else {
      ++nacked;
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(nacked, 16);
  queue.SetPaused(false);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.Take().has_value());
}

TEST(AdmissionTest, TakeBlocksUntilOfferAndDrainsFifo) {
  AdmissionQueue queue(SmallConfig());
  std::vector<uint8_t> seen;
  std::thread consumer([&] {
    for (int i = 0; i < 3; ++i) {
      auto item = queue.Take();
      ASSERT_TRUE(item.has_value());
      seen.push_back(item->frame.front());
    }
  });
  for (uint8_t fill : {1, 2, 3}) {
    WorkItem item;
    item.kind = WorkKind::kReport;
    item.frame.assign(4, fill);
    queue.Offer(std::move(item));
  }
  consumer.join();
  EXPECT_EQ(seen, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(AdmissionTest, CloseWakesTakersAndDrainsRemainder) {
  AdmissionQueue queue(SmallConfig());
  queue.Offer(Report());
  queue.Close();
  EXPECT_TRUE(queue.Take().has_value());   // Drains what it held.
  EXPECT_FALSE(queue.Take().has_value());  // Then reports closed.
  EXPECT_EQ(queue.Offer(Report()), AdmitResult::kClosed);
}

TEST(AdmissionTest, RetryAfterHintComesFromConfig) {
  AdmissionQueue queue(SmallConfig());
  EXPECT_EQ(queue.retry_after_ms(), 7u);
}

}  // namespace
}  // namespace mergeable
