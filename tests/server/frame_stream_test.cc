// Stream framing: reassembly from arbitrary chunkings, and poisoning
// on hostile length prefixes.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/server/frame_stream.h"

namespace mergeable {
namespace {

std::vector<uint8_t> Frame(uint8_t fill, size_t len) {
  return std::vector<uint8_t>(len, fill);
}

TEST(FrameStreamTest, WrapPrefixesLittleEndianLength) {
  const std::vector<uint8_t> wrapped = WrapFrame(Frame(0xcd, 300));
  ASSERT_EQ(wrapped.size(), 304u);
  EXPECT_EQ(wrapped[0], 0x2c);  // 300 = 0x012c.
  EXPECT_EQ(wrapped[1], 0x01);
  EXPECT_EQ(wrapped[2], 0x00);
  EXPECT_EQ(wrapped[3], 0x00);
}

TEST(FrameStreamTest, RoundTripsSingleFrame) {
  FrameDecoder decoder;
  const std::vector<uint8_t> frame = Frame(0xab, 17);
  const std::vector<uint8_t> wrapped = WrapFrame(frame);
  ASSERT_TRUE(decoder.Feed(wrapped.data(), wrapped.size()));
  const auto out = decoder.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, frame);
  EXPECT_FALSE(decoder.Next().has_value());
}

TEST(FrameStreamTest, ReassemblesAcrossEveryChunking) {
  // Three frames, delivered in chunks of every size from 1 to 7 bytes:
  // the decoder must produce identical frames regardless of chunking.
  const std::vector<std::vector<uint8_t>> frames = {
      Frame(0x11, 5), Frame(0x22, 0), Frame(0x33, 63)};
  std::vector<uint8_t> stream;
  for (const auto& frame : frames) {
    const auto wrapped = WrapFrame(frame);
    stream.insert(stream.end(), wrapped.begin(), wrapped.end());
  }
  for (size_t chunk = 1; chunk <= 7; ++chunk) {
    FrameDecoder decoder;
    std::vector<std::vector<uint8_t>> out;
    for (size_t at = 0; at < stream.size(); at += chunk) {
      const size_t len = std::min(chunk, stream.size() - at);
      ASSERT_TRUE(decoder.Feed(stream.data() + at, len));
      while (auto frame = decoder.Next()) out.push_back(*frame);
    }
    EXPECT_EQ(out, frames) << "chunk size " << chunk;
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(FrameStreamTest, EmptyFrameIsLegal) {
  FrameDecoder decoder;
  const auto wrapped = WrapFrame({});
  ASSERT_TRUE(decoder.Feed(wrapped.data(), wrapped.size()));
  const auto out = decoder.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(FrameStreamTest, OversizedLengthPoisonsWithoutAllocating) {
  FrameDecoder decoder;
  // A prefix claiming ~4 GiB: refused on sight; nothing is buffered for
  // it (the decoder holds only the 4 prefix bytes it was fed).
  const uint8_t hostile[4] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_FALSE(decoder.Feed(hostile, sizeof(hostile)));
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_FALSE(decoder.Next().has_value());
  // Poisoning is sticky: later bytes are refused too.
  const uint8_t more[1] = {0x00};
  EXPECT_FALSE(decoder.Feed(more, sizeof(more)));
}

TEST(FrameStreamTest, MaxSizedFrameIsAccepted) {
  FrameDecoder decoder;
  const auto wrapped = WrapFrame(Frame(0x5a, kMaxFrameBytes));
  ASSERT_TRUE(decoder.Feed(wrapped.data(), wrapped.size()));
  const auto out = decoder.Next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), kMaxFrameBytes);
}

TEST(FrameStreamTest, OversizedLengthMidStreamPoisons) {
  FrameDecoder decoder;
  const auto good = WrapFrame(Frame(0x01, 8));
  ASSERT_TRUE(decoder.Feed(good.data(), good.size()));
  ASSERT_TRUE(decoder.Next().has_value());
  const uint8_t hostile[4] = {0x01, 0x00, 0x10, 0x01};  // > kMaxFrameBytes.
  EXPECT_FALSE(decoder.Feed(hostile, sizeof(hostile)));
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameStreamTest, LongLivedConnectionCompactsItsBuffer) {
  // Push many frames through one decoder; the reassembly buffer must
  // not retain the whole history.
  FrameDecoder decoder;
  for (int i = 0; i < 1000; ++i) {
    const auto wrapped = WrapFrame(Frame(static_cast<uint8_t>(i), 100));
    ASSERT_TRUE(decoder.Feed(wrapped.data(), wrapped.size()));
    ASSERT_TRUE(decoder.Next().has_value());
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace mergeable
