// The chaos/overload harness against a live server — the ISSUE's three
// acceptance invariants:
//
//   (a) a 10x traffic spike never grows server memory past the
//       admission budget (hard cap + byte budget + peak counters);
//   (b) shed load is NACKed with retry-after, reports are shed before
//       queries, and the sealed epoch's epsilon report accounts every
//       shed report's mass *exactly*;
//   (c) recovery: after the spike drains, backpressure releases
//       (hysteresis) and shed reports retried under the client's
//       backoff policy land.
//
// Determinism: workers are paused while the spike arrives, so admission
// decisions depend only on arrival order on one connection — the first
// high_watermark reports are admitted, every later one is NACKed —
// independent of scheduling.

#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/storage.h"
#include "mergeable/aggregate/wire.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/server/chaos.h"
#include "mergeable/server/client.h"
#include "mergeable/server/epoch_service.h"
#include "mergeable/server/ingest_server.h"
#include "mergeable/store/summary_store.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

constexpr uint64_t kStream = 1;
constexpr double kEpsilon = 0.02;

SpaceSaving ShardSummary(uint64_t epoch, uint64_t shard, int items = 80) {
  SpaceSaving summary = SpaceSaving::ForEpsilon(kEpsilon);
  Rng rng(7000 + 100 * epoch + shard);
  for (int i = 0; i < items; ++i) summary.Update(rng.UniformInt(40));
  return summary;
}

BackoffPolicy FastPolicy() {
  BackoffPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 1;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 16;
  return policy;
}

struct OverloadHarness {
  static constexpr uint64_t kShards = 40;  // 10x the high watermark.
  static constexpr size_t kHighWatermark = 4;

  MemStorage storage;
  SummaryStore<SpaceSaving> store;
  EpochService<SpaceSaving> service;
  IngestServer server;

  OverloadHarness()
      : store(&storage, StoreOptions{.prefix = "store",
                                     .cache_capacity = 128,
                                     .epsilon = kEpsilon,
                                     .num_threads = 1}),
        service(&store, ServiceConfig()),
        server(&service, Config()) {}

  static EpochServiceConfig ServiceConfig() {
    EpochServiceConfig config;
    config.stream = kStream;
    config.shards_per_epoch = kShards;
    config.dedup_capacity = 128;
    return config;
  }

  static ServerConfig Config() {
    ServerConfig config;
    config.workers = 1;  // One worker: FIFO response order is exact.
    config.admission.high_watermark = kHighWatermark;
    config.admission.low_watermark = 2;
    config.admission.hard_cap = 8;
    config.admission.byte_budget = 64 << 10;
    config.admission.retry_after_ms = 1;
    return config;
  }
};

// (a) + (b): the deterministic 10x spike. Every number below is exact,
// not a tolerance band.
TEST(OverloadTest, SpikeShedsDeterministicallyAndAccountsMassExactly) {
  OverloadHarness harness;
  ASSERT_TRUE(harness.server.Start());
  harness.server.PauseWorkers(true);

  IngestClient client(harness.server.port());
  ASSERT_TRUE(client.connected());

  // Offered load: one report per shard, 10x the high watermark, fired
  // without waiting for verdicts (the spike).
  std::vector<uint64_t> mass(OverloadHarness::kShards, 0);
  uint64_t offered_mass = 0;
  for (uint64_t shard = 0; shard < OverloadHarness::kShards; ++shard) {
    const SpaceSaving summary = ShardSummary(/*epoch=*/0, shard);
    mass[shard] = summary.n();
    offered_mass += summary.n();
    WireReport report;
    report.shard_id = shard;
    report.epoch = 0;
    report.payload = EncodeSummary(summary);
    ASSERT_TRUE(client.SendFrame(EncodeReportFrame(report)));
  }

  // With workers paused, the verdicts are fully determined: the first
  // high_watermark reports are admitted (their ACKs arrive only after
  // unpause), every later one is NACKed kRetryAfter immediately.
  std::vector<uint64_t> nacked_shards;
  for (size_t i = 0;
       i < OverloadHarness::kShards - OverloadHarness::kHighWatermark;
       ++i) {
    const auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.has_value());
    const auto control = DecodeControlFrame(*frame);
    ASSERT_TRUE(control.has_value());
    EXPECT_EQ(control->code, ControlCode::kRetryAfter);
    EXPECT_EQ(control->retry_after_ms, 1u);
    nacked_shards.push_back(control->shard_id);
  }
  // The NACKs name exactly the shards past the admission cut.
  for (size_t i = 0; i < nacked_shards.size(); ++i) {
    EXPECT_EQ(nacked_shards[i], OverloadHarness::kHighWatermark + i);
  }

  // (a) Memory stayed inside the admission budget at the spike's peak.
  const AdmissionStats admission = harness.server.admission_stats();
  EXPECT_EQ(admission.admitted_reports, OverloadHarness::kHighWatermark);
  EXPECT_EQ(admission.shed_reports,
            OverloadHarness::kShards - OverloadHarness::kHighWatermark);
  EXPECT_EQ(admission.backpressure_nacks, admission.shed_reports);
  EXPECT_LE(admission.peak_depth, harness.Config().admission.hard_cap);
  EXPECT_LE(admission.peak_bytes, harness.Config().admission.byte_budget);
  EXPECT_TRUE(harness.server.in_backpressure());

  // Release the spike: workers drain the admitted prefix; their ACKs
  // arrive now.
  harness.server.PauseWorkers(false);
  for (size_t i = 0; i < OverloadHarness::kHighWatermark; ++i) {
    const auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.has_value());
    const auto control = DecodeControlFrame(*frame);
    ASSERT_TRUE(control.has_value());
    EXPECT_EQ(control->code, ControlCode::kAccepted);
    EXPECT_EQ(control->shard_id, i);
  }
  harness.server.Drain();
  EXPECT_FALSE(harness.server.in_backpressure());  // Hysteresis released.

  // (b) Seal with the shed mass lost and verify the epsilon report is
  // exact: lost mass == the summed mass of precisely the NACKed shards.
  uint64_t admitted_mass = 0;
  for (uint64_t shard = 0; shard < OverloadHarness::kHighWatermark;
       ++shard) {
    admitted_mass += mass[shard];
  }
  ASSERT_TRUE(harness.service.SealEpoch(0, offered_mass));

  WireQuery query;
  query.stream = kStream;
  query.t1 = 0;
  query.t2 = 0;
  const auto answer = client.Query(query);
  ASSERT_TRUE(answer.has_value());
  ASSERT_EQ(answer->status, AnswerStatus::kOk);
  EXPECT_EQ(answer->n_received, admitted_mass);
  EXPECT_EQ(answer->lost_mass, offered_mass - admitted_mass);
  EXPECT_FALSE(answer->lost_mass_estimated);  // Known exactly, not modeled.
  EXPECT_EQ(answer->degraded_epochs, 1u);
  EXPECT_DOUBLE_EQ(answer->coverage,
                   static_cast<double>(OverloadHarness::kHighWatermark) /
                       static_cast<double>(OverloadHarness::kShards));
  EXPECT_DOUBLE_EQ(answer->received_bound,
                   kEpsilon * static_cast<double>(admitted_mass));
  EXPECT_DOUBLE_EQ(
      answer->full_stream_bound,
      answer->received_bound +
          static_cast<double>(offered_mass - admitted_mass));
}

// Reports are shed before queries: at the same queue pressure that
// NACKs a report, a query is still admitted.
TEST(OverloadTest, QueriesOutrankReportsUnderPressure) {
  OverloadHarness harness;
  ASSERT_TRUE(harness.server.Start());

  // Seal one epoch first so queries have something to answer.
  IngestClient client(harness.server.port());
  WireReport seed;
  seed.shard_id = 0;
  seed.epoch = 0;
  seed.payload = EncodeSummary(ShardSummary(0, 0));
  ASSERT_EQ(client.SendReport(seed, FastPolicy()), SendStatus::kAccepted);
  harness.server.Drain();
  const uint64_t sealed_mass = ShardSummary(0, 0).n();
  ASSERT_TRUE(harness.service.SealEpoch(0, sealed_mass));

  harness.server.PauseWorkers(true);
  // Fill to the high watermark with reports for the next epoch.
  for (uint64_t shard = 0; shard < OverloadHarness::kHighWatermark;
       ++shard) {
    WireReport report;
    report.shard_id = shard;
    report.epoch = 1;
    report.payload = EncodeSummary(ShardSummary(1, shard));
    ASSERT_TRUE(client.SendFrame(EncodeReportFrame(report)));
  }
  // Pressure is at the watermark: one more report is NACKed...
  WireReport shed;
  shed.shard_id = 10;
  shed.epoch = 1;
  shed.payload = EncodeSummary(ShardSummary(1, 10));
  ASSERT_TRUE(client.SendFrame(EncodeReportFrame(shed)));
  const auto nack_frame = client.ReadFrame();
  ASSERT_TRUE(nack_frame.has_value());
  const auto nack = DecodeControlFrame(*nack_frame);
  ASSERT_TRUE(nack.has_value());
  EXPECT_EQ(nack->code, ControlCode::kRetryAfter);
  EXPECT_EQ(nack->shard_id, 10u);

  // ...while a query at the same instant is admitted and (after the
  // workers resume) answered.
  WireQuery query;
  query.stream = kStream;
  query.t1 = 0;
  query.t2 = 0;
  ASSERT_TRUE(client.SendFrame(EncodeQueryFrame(query)));
  harness.server.PauseWorkers(false);
  // Responses drain in admission order: the four report ACKs, then the
  // query answer.
  for (uint64_t shard = 0; shard < OverloadHarness::kHighWatermark;
       ++shard) {
    const auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.has_value());
    ASSERT_EQ(PeekFrameKind(*frame), FrameKind::kControl);
  }
  const auto answer_frame = client.ReadFrame();
  ASSERT_TRUE(answer_frame.has_value());
  ASSERT_EQ(PeekFrameKind(*answer_frame), FrameKind::kAnswer);
  const auto answer = DecodeAnswerFrame(*answer_frame);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->status, AnswerStatus::kOk);
  EXPECT_EQ(answer->n_received, sealed_mass);

  // The answered query proves admission let it past the same pressure
  // that NACKed the report.
  const AdmissionStats pressured = harness.server.admission_stats();
  EXPECT_EQ(pressured.admitted_queries, 1u);
  EXPECT_EQ(pressured.shed_queries, 0u);
  EXPECT_EQ(pressured.shed_reports, 1u);
}

// (c) Recovery: a shed report retried under the client's backoff policy
// (honoring the server's retry-after hint) lands once pressure clears,
// and the re-sealed accounting shows zero loss.
TEST(OverloadTest, ShedReportsRecoverViaRetryAfter) {
  OverloadHarness harness;
  ASSERT_TRUE(harness.server.Start());
  harness.server.PauseWorkers(true);

  IngestClient blaster(harness.server.port());
  constexpr uint64_t kReports = 12;
  uint64_t offered_mass = 0;
  std::vector<WireReport> reports(kReports);
  for (uint64_t shard = 0; shard < kReports; ++shard) {
    const SpaceSaving summary = ShardSummary(0, shard);
    offered_mass += summary.n();
    reports[shard].shard_id = shard;
    reports[shard].epoch = 0;
    reports[shard].payload = EncodeSummary(summary);
    ASSERT_TRUE(blaster.SendFrame(EncodeReportFrame(reports[shard])));
  }
  // Spike over: the workers return, pressure drains, hysteresis
  // releases, and the client retries every report under its policy.
  harness.server.PauseWorkers(false);
  harness.server.Drain();
  IngestClient retrier(harness.server.port());
  for (const WireReport& report : reports) {
    EXPECT_EQ(retrier.SendReport(report, FastPolicy()),
              SendStatus::kAccepted);
  }
  harness.server.Drain();
  EXPECT_EQ(harness.service.pending_reports(), kReports);
  EXPECT_GT(retrier.stats().duplicates +
                harness.service.stats().reports_duplicate,
            0u);  // The admitted prefix's retries were deduped, not
                  // double-counted.
  ASSERT_TRUE(harness.service.SealEpoch(0, offered_mass));
  IngestClient querier(harness.server.port());
  WireQuery query;
  query.stream = kStream;
  query.t1 = 0;
  query.t2 = 0;
  const auto answer = querier.Query(query);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->lost_mass, 0u);  // Everything recovered.
  EXPECT_DOUBLE_EQ(answer->coverage, 12.0 / 40.0);
}

// The scripted chaos driver: spikes, duplicate storms, churn and
// client-side corruption, all deterministic for the seed. Healthy
// admission (no shedding): every offered report must land and the
// sealed range must account zero lost mass.
TEST(OverloadTest, ChaosScriptWithoutSheddingLosesNothing) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage,
                                  StoreOptions{.prefix = "store",
                                               .cache_capacity = 128,
                                               .epsilon = kEpsilon,
                                               .num_threads = 1});
  EpochServiceConfig service_config;
  service_config.stream = kStream;
  service_config.shards_per_epoch = 8;
  service_config.dedup_capacity = 64;
  EpochService<SpaceSaving> service(&store, service_config);
  ServerConfig config;  // Default watermarks: far above this load.
  IngestServer server(&service, config);
  ASSERT_TRUE(server.Start());

  ChaosScript script;
  script.seed = 17;
  script.faults.truncate_probability = 0.3;
  script.faults.bit_flip_probability = 0.2;
  for (uint64_t epoch = 0; epoch < 6; ++epoch) {
    ChaosPhase phase;
    phase.epoch = epoch;
    phase.shards = 8;
    phase.items_per_shard = 50;
    phase.duplicate_sends = epoch % 2 == 0 ? 2 : 0;
    phase.churn = epoch % 3 == 0;
    script.phases.push_back(phase);
  }

  const ChaosOutcome outcome = DriveChaos<SpaceSaving>(
      server.port(), script, FastPolicy(),
      [](uint64_t epoch, uint64_t shard, uint64_t items) {
        return ShardSummary(epoch, shard, static_cast<int>(items));
      });
  EXPECT_EQ(outcome.reports_offered, 48u);
  EXPECT_EQ(outcome.reports_accepted, 48u);
  EXPECT_EQ(outcome.reports_lost, 0u);
  EXPECT_GT(outcome.corrupted_sent, 0u);  // The script did corrupt.
  EXPECT_GT(outcome.duplicate_verdicts, 0u);
  EXPECT_GT(outcome.reconnects, 0u);

  server.Drain();
  for (uint64_t epoch = 0; epoch < 6; ++epoch) {
    ASSERT_TRUE(service.SealEpoch(epoch, 0));
  }
  EXPECT_LE(service.dedup_size(), 64u);

  const auto range = store.QueryRangePayload(kStream, 0, 5);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->eps.lost_mass, 0u);
  EXPECT_DOUBLE_EQ(range->eps.coverage, 1.0);
  server.Stop();
}

// A slow consumer — a client that sends queries but never reads the
// answers — is disconnected once its outbound backlog crosses the cap,
// and the server's buffer accounting never exceeds it by more than one
// frame.
TEST(OverloadTest, SlowConsumerIsDisconnectedAtTheBufferCap) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage,
                                  StoreOptions{.prefix = "store",
                                               .cache_capacity = 128,
                                               .epsilon = kEpsilon,
                                               .num_threads = 1});
  EpochServiceConfig service_config;
  service_config.stream = kStream;
  service_config.shards_per_epoch = 2;
  EpochService<SpaceSaving> service(&store, service_config);
  ServerConfig config;
  config.max_conn_buffer_bytes = 16 << 10;  // Small cap: fast test.
  config.admission.high_watermark = 4096;
  config.admission.low_watermark = 1024;
  config.admission.hard_cap = 8192;
  IngestServer server(&service, config);
  ASSERT_TRUE(server.Start());

  // Seal one fat epoch so answers are large.
  IngestClient loader(server.port());
  SpaceSaving fat = SpaceSaving::ForEpsilon(0.001);
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) fat.Update(rng.UniformInt(5000));
  WireReport report;
  report.shard_id = 0;
  report.epoch = 0;
  report.payload = EncodeSummary(fat);
  ASSERT_EQ(loader.SendReport(report, FastPolicy()),
            SendStatus::kAccepted);
  server.Drain();
  ASSERT_TRUE(service.SealEpoch(0, fat.n()));

  // The slow consumer: fire queries, never read answers.
  IngestClient slow(server.port(), /*recv_timeout_ms=*/100);
  WireQuery query;
  query.stream = kStream;
  query.t1 = 0;
  query.t2 = 0;
  const auto query_frame = EncodeQueryFrame(query);
  bool disconnected = false;
  for (int i = 0; i < 4000 && !disconnected; ++i) {
    if (!slow.SendFrame(query_frame)) disconnected = true;
    if (server.stats().slow_consumer_disconnects > 0) disconnected = true;
  }
  // Sends can keep succeeding into kernel buffers after the server
  // hangs up; the authoritative signal is the server's own counter.
  // Drain leaves shipped responses in flight on the loop thread, so
  // give the counter real time, not just drain passes.
  server.Drain();
  for (int i = 0; i < 500 && server.stats().slow_consumer_disconnects == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.stats().slow_consumer_disconnects, 1u);
  server.Stop();
}

}  // namespace
}  // namespace mergeable
