// The autoscale arc over real loopback sockets: a RebalanceController
// scripts N -> 2N -> N, its TOP1 frames ride the same TCP stream as
// reports and queries, the EpochService re-denominates per-epoch
// coverage, and every epoch's offered/accepted mass is accounted to the
// byte through seal and query. Also: mid-epoch shard-count changes
// dropping orphaned pending reports, rejection of announcements for
// sealed epochs, admission's priority class for topology frames, and
// the default handler's hard reject.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/storage.h"
#include "mergeable/aggregate/wire.h"
#include "mergeable/elastic/rebalance.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/server/client.h"
#include "mergeable/server/epoch_service.h"
#include "mergeable/server/ingest_server.h"
#include "mergeable/store/summary_store.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

constexpr uint64_t kStream = 1;
constexpr double kEpsilon = 0.02;

SpaceSaving ShardSummary(uint64_t epoch, uint64_t shard, uint64_t shards,
                         int items = 150) {
  // Each shard reports the items it owns under the epoch's topology:
  // item % shards == shard, the same routing the split recipe uses.
  SpaceSaving summary = SpaceSaving::ForEpsilon(kEpsilon);
  Rng rng(10'000 * epoch + shard);
  for (int i = 0; i < items; ++i) {
    summary.Update(rng.UniformInt(40) * shards + shard);
  }
  return summary;
}

BackoffPolicy FastPolicy() {
  BackoffPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_ms = 1;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 8;
  return policy;
}

struct Harness {
  MemStorage storage;
  SummaryStore<SpaceSaving> store;
  EpochService<SpaceSaving> service;
  IngestServer server;

  explicit Harness(uint64_t base_shards)
      : store(&storage, StoreOptions{.prefix = "store",
                                     .cache_capacity = 128,
                                     .epsilon = kEpsilon,
                                     .num_threads = 1}),
        service(&store, MakeConfig(base_shards)),
        server(&service, ServerConfig{}) {}

  static EpochServiceConfig MakeConfig(uint64_t base_shards) {
    EpochServiceConfig config;
    config.stream = kStream;
    config.shards_per_epoch = base_shards;
    config.dedup_capacity = 256;
    return config;
  }
};

// Sends a topology frame and returns the control verdict.
std::optional<WireControl> SendTopology(IngestClient& client,
                                        const std::vector<uint8_t>& frame) {
  if (!client.SendFrame(frame)) return std::nullopt;
  const auto response = client.ReadFrame();
  if (!response.has_value()) return std::nullopt;
  return DecodeControlFrame(*response);
}

TEST(RebalanceServiceTest, ScriptedAutoscaleArcSealsEveryEpoch) {
  constexpr uint64_t kBase = 2;
  constexpr uint64_t kEpochs = 6;
  Harness harness(kBase);
  ASSERT_TRUE(harness.server.Start());
  IngestClient client(harness.server.port());
  ASSERT_TRUE(client.connected());

  // The arc: 2 shards, double to 4 at epoch 2, halve back at epoch 4.
  RebalanceController controller(kBase);
  controller.AddStep(/*effective_epoch=*/2, /*shard_count=*/4);
  controller.AddStep(/*effective_epoch=*/4, /*shard_count=*/2);

  // Announce both steps up front — epoch scoping makes early
  // announcement safe (they only bite at their effective epoch).
  for (size_t step = 0; step < controller.steps().size(); ++step) {
    const auto verdict = SendTopology(client, controller.EncodeStep(step));
    ASSERT_TRUE(verdict.has_value());
    EXPECT_EQ(verdict->code, ControlCode::kAccepted);
    EXPECT_EQ(verdict->shard_id, controller.steps()[step].shard_count);
    EXPECT_EQ(verdict->epoch, controller.steps()[step].effective_epoch);
  }

  // Both sides agree on every epoch's denominator before any report.
  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    EXPECT_EQ(harness.service.shards_for_epoch(epoch),
              controller.ShardsForEpoch(epoch))
        << "epoch " << epoch;
  }

  std::vector<uint64_t> offered(kEpochs, 0);
  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    const uint64_t shards = controller.ShardsForEpoch(epoch);
    for (uint64_t shard = 0; shard < shards; ++shard) {
      const SpaceSaving summary = ShardSummary(epoch, shard, shards);
      offered[epoch] += summary.n();
      WireReport report;
      report.shard_id = shard;
      report.epoch = epoch;
      report.payload = EncodeSummary(summary);
      ASSERT_EQ(client.SendReport(report, FastPolicy()),
                SendStatus::kAccepted)
          << "epoch " << epoch << " shard " << shard;
    }
    harness.server.Drain();
    ASSERT_TRUE(harness.service.SealEpoch(epoch, offered[epoch]));
  }

  // Zero loss: every epoch's accepted mass equals its offered mass,
  // under its own denominator.
  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    WireQuery query;
    query.stream = kStream;
    query.t1 = epoch;
    query.t2 = epoch;
    const auto answer = client.Query(query);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(answer->status, AnswerStatus::kOk);
    EXPECT_EQ(answer->n_received, offered[epoch]) << "epoch " << epoch;
    EXPECT_EQ(answer->lost_mass, 0u) << "epoch " << epoch;
    EXPECT_DOUBLE_EQ(answer->coverage, 1.0) << "epoch " << epoch;
  }

  // The whole-arc range answer accounts the full offered mass.
  WireQuery range;
  range.stream = kStream;
  range.t1 = 0;
  range.t2 = kEpochs - 1;
  const auto answer = client.Query(range);
  ASSERT_TRUE(answer.has_value());
  uint64_t total = 0;
  for (const uint64_t mass : offered) total += mass;
  EXPECT_EQ(answer->n_received, total);
  EXPECT_EQ(answer->lost_mass, 0u);

  const EpochServiceStats stats = harness.service.stats();
  EXPECT_EQ(stats.topology_accepted, 2u);
  EXPECT_EQ(stats.topology_rejected, 0u);
  EXPECT_EQ(stats.reports_dropped_topology, 0u);
  harness.server.Stop();
}

TEST(RebalanceServiceTest, MidEpochShrinkDropsOrphanedReports) {
  Harness harness(/*base_shards=*/4);
  ASSERT_TRUE(harness.server.Start());
  IngestClient client(harness.server.port());
  ASSERT_TRUE(client.connected());

  // All four shards report epoch 0 first...
  uint64_t offered = 0;
  uint64_t surviving = 0;
  for (uint64_t shard = 0; shard < 4; ++shard) {
    const SpaceSaving summary = ShardSummary(0, shard, 4);
    offered += summary.n();
    if (shard < 2) surviving += summary.n();
    WireReport report;
    report.shard_id = shard;
    report.epoch = 0;
    report.payload = EncodeSummary(summary);
    ASSERT_EQ(client.SendReport(report, FastPolicy()),
              SendStatus::kAccepted);
  }
  harness.server.Drain();
  ASSERT_EQ(harness.service.pending_reports(), 4u);

  // ... then a mid-epoch halving lands, effective immediately: the
  // already-admitted reports from shards 2 and 3 are orphaned.
  WireTopology topology;
  topology.effective_epoch = 0;
  topology.shard_count = 2;
  topology.ops = PlanTopologyOps(4, 2);
  const auto verdict = SendTopology(client, EncodeTopologyFrame(topology));
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->code, ControlCode::kAccepted);
  EXPECT_EQ(harness.service.pending_reports(), 2u);
  EXPECT_EQ(harness.service.stats().reports_dropped_topology, 2u);

  // A straggler from a now-out-of-range shard is rejected outright.
  WireReport late;
  late.shard_id = 3;
  late.epoch = 0;
  late.payload = EncodeSummary(ShardSummary(0, 3, 4));
  EXPECT_EQ(client.SendReport(late, FastPolicy()), SendStatus::kRejected);

  // The seal uses the new denominator; the orphaned mass is lost mass.
  ASSERT_TRUE(harness.service.SealEpoch(0, offered));
  WireQuery query;
  query.stream = kStream;
  query.t1 = 0;
  query.t2 = 0;
  const auto answer = client.Query(query);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->n_received, surviving);
  EXPECT_EQ(answer->lost_mass, offered - surviving);
  EXPECT_DOUBLE_EQ(answer->coverage, 1.0);  // 2 of 2 expected shards.
  harness.server.Stop();
}

TEST(RebalanceServiceTest, SealedEpochsRefuseRedenomination) {
  Harness harness(/*base_shards=*/2);
  ASSERT_TRUE(harness.server.Start());
  IngestClient client(harness.server.port());
  ASSERT_TRUE(client.connected());

  uint64_t offered = 0;
  for (uint64_t shard = 0; shard < 2; ++shard) {
    const SpaceSaving summary = ShardSummary(0, shard, 2);
    offered += summary.n();
    WireReport report;
    report.shard_id = shard;
    report.epoch = 0;
    report.payload = EncodeSummary(summary);
    ASSERT_EQ(client.SendReport(report, FastPolicy()),
              SendStatus::kAccepted);
  }
  harness.server.Drain();
  ASSERT_TRUE(harness.service.SealEpoch(0, offered));

  // Epoch 0 is history; its coverage cannot be rewritten.
  WireTopology topology;
  topology.effective_epoch = 0;
  topology.shard_count = 4;
  const auto verdict = SendTopology(client, EncodeTopologyFrame(topology));
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->code, ControlCode::kRejected);
  EXPECT_EQ(harness.service.stats().topology_rejected, 1u);

  // A malformed TOP1 frame (flipped byte) is rejected, not crashed on.
  std::vector<uint8_t> corrupt = EncodeTopologyFrame(topology);
  corrupt[corrupt.size() / 2] ^= 0xff;
  const auto bad = SendTopology(client, corrupt);
  // The server either rejects at routing (unknown frame -> control
  // reject) or at decode; both answer with a non-accepted control.
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->code, ControlCode::kAccepted);
  harness.server.Stop();
}

TEST(RebalanceServiceTest, TopologyChangesLandBetweenReportsOfOneStream) {
  // The full arc again, but interleaved on the wire: each step's TOP1
  // frame is sent right before the first report of its effective epoch,
  // over the *same* connection — ordering within one TCP stream is what
  // production relies on.
  constexpr uint64_t kEpochs = 6;
  Harness harness(/*base_shards=*/2);
  ASSERT_TRUE(harness.server.Start());
  IngestClient client(harness.server.port());
  ASSERT_TRUE(client.connected());

  RebalanceController controller(2);
  controller.AddStep(2, 4);
  controller.AddStep(4, 2);

  std::vector<uint64_t> offered(kEpochs, 0);
  size_t next_step = 0;
  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    if (next_step < controller.steps().size() &&
        controller.steps()[next_step].effective_epoch == epoch) {
      const auto verdict =
          SendTopology(client, controller.EncodeStep(next_step));
      ASSERT_TRUE(verdict.has_value());
      EXPECT_EQ(verdict->code, ControlCode::kAccepted);
      ++next_step;
    }
    const uint64_t shards = controller.ShardsForEpoch(epoch);
    ASSERT_EQ(harness.service.shards_for_epoch(epoch), shards);
    for (uint64_t shard = 0; shard < shards; ++shard) {
      const SpaceSaving summary = ShardSummary(epoch, shard, shards);
      offered[epoch] += summary.n();
      WireReport report;
      report.shard_id = shard;
      report.epoch = epoch;
      report.payload = EncodeSummary(summary);
      ASSERT_EQ(client.SendReport(report, FastPolicy()),
                SendStatus::kAccepted);
    }
    harness.server.Drain();
    ASSERT_TRUE(harness.service.SealEpoch(epoch, offered[epoch]));
  }
  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    WireQuery query;
    query.stream = kStream;
    query.t1 = epoch;
    query.t2 = epoch;
    const auto answer = client.Query(query);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(answer->n_received, offered[epoch]) << "epoch " << epoch;
    EXPECT_EQ(answer->lost_mass, 0u) << "epoch " << epoch;
  }
  EXPECT_EQ(harness.service.stats().topology_accepted, 2u);
  harness.server.Stop();
}

// A handler that never opted into topology management: the base-class
// default must hard-reject TOP1 frames without crashing the server.
class TopologyBlindHandler : public FrameHandler {
 public:
  std::vector<uint8_t> HandleReport(
      const std::vector<uint8_t>&) override {
    WireControl control;
    control.code = ControlCode::kAccepted;
    return EncodeControlFrame(control);
  }
  std::vector<uint8_t> HandleBatch(const std::vector<uint8_t>&) override {
    WireBatchVerdict verdict;
    verdict.batch_code = ControlCode::kRejected;
    return EncodeBatchVerdictFrame(verdict);
  }
  std::vector<uint8_t> HandleQuery(const std::vector<uint8_t>&) override {
    WireAnswer answer;
    answer.status = AnswerStatus::kUnknownRange;
    return EncodeAnswerFrame(answer);
  }
};

TEST(RebalanceServiceTest, DefaultHandlerRejectsTopologyFrames) {
  TopologyBlindHandler handler;
  IngestServer server(&handler, ServerConfig{});
  ASSERT_TRUE(server.Start());
  IngestClient client(server.port());
  ASSERT_TRUE(client.connected());

  WireTopology topology;
  topology.effective_epoch = 5;
  topology.shard_count = 8;
  const auto verdict = SendTopology(client, EncodeTopologyFrame(topology));
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->code, ControlCode::kRejected);
  // The default still echoes the announcement identity for the caller's
  // correlation.
  EXPECT_EQ(verdict->shard_id, 8u);
  EXPECT_EQ(verdict->epoch, 5u);
  server.Stop();
}

}  // namespace
}  // namespace mergeable
