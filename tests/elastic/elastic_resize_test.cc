// The resize sweep: 56 seeded streams (14 seeds x 4 families) driven
// through randomized resize schedules, with every post-resize error
// bound asserted against exact counts — the ISSUE's "post-resize error
// bounds asserted against exact counts on >= 50 seeded streams"
// criterion lives here. Also: Split() mass conservation and bracket
// validity for the counter families, and fold byte-determinism under
// resize interleavings for the sketch families.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/elastic/elastic_count_min.h"
#include "mergeable/elastic/elastic_count_sketch.h"
#include "mergeable/frequency/deamortized_space_saving.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/util/bytes.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

constexpr int kSeeds = 14;  // x4 families = 56 streams.
constexpr int kUpdatesPerPhase = 600;
constexpr int kPhases = 5;

template <typename S>
std::vector<uint8_t> Encode(const S& sketch) {
  ByteWriter writer;
  sketch.EncodeTo(writer);
  return writer.TakeBytes();
}

// One skewed phase of updates mirrored into an exact counter.
template <typename S>
void FeedPhase(S& summary, std::map<uint64_t, uint64_t>& exact, Rng& rng) {
  for (int i = 0; i < kUpdatesPerPhase; ++i) {
    const uint64_t item =
        rng.Bernoulli(0.65) ? rng.UniformInt(12) : rng.UniformInt(250);
    summary.Update(item);
    ++exact[item];
  }
}

// ---- Elastic sketches: estimate/bound check after every phase ----

// The overcount never goes below the truth (deterministic), and the
// e·Σ mass_l/width_l budget holds per item with probability
// >= 1 - exp(-depth) — so the *violation rate* is what the bound
// promises, not any single item. At depth 4 the per-item failure
// budget is e^-4 ≈ 1.9%; assert the realized rate stays under 6%
// (3x Markov, far below what a broken fold would produce — folding
// bugs blow estimates up across the board, not on 2% of items).
void CheckCountMin(const ElasticCountMin& sketch,
                   const std::map<uint64_t, uint64_t>& exact,
                   const char* where) {
  size_t violations = 0;
  for (const auto& [item, count] : exact) {
    const uint64_t estimate = sketch.Estimate(item);
    ASSERT_GE(estimate, count) << where << " item " << item;
    if (static_cast<double>(estimate) >
        static_cast<double>(count) + sketch.ErrorBound()) {
      ++violations;
    }
  }
  ASSERT_LE(static_cast<double>(violations),
            0.06 * static_cast<double>(exact.size()) + 1.0)
      << where;
}

TEST(ElasticResizeSweepTest, CountMinBoundsHoldThroughRandomSchedules) {
  const int widths[] = {64, 128, 256, 512, 1024};
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    ElasticCountMin sketch(4, 256, /*seed=*/1000 + seed);
    std::map<uint64_t, uint64_t> exact;
    Rng rng(seed * 77 + 5);
    for (int phase = 0; phase < kPhases; ++phase) {
      FeedPhase(sketch, exact, rng);
      // Pick a random width different from the current one.
      const int target = widths[rng.UniformInt(5)];
      if (target < sketch.width()) {
        sketch.Shrink(target);
      } else if (target > sketch.width()) {
        sketch.Expand(target);
      }
      CheckCountMin(sketch, exact, "post-resize");
    }
    ASSERT_EQ(sketch.n(),
              static_cast<uint64_t>(kPhases * kUpdatesPerPhase));
  }
}

TEST(ElasticResizeSweepTest, CountSketchBoundsHoldThroughRandomSchedules) {
  const int widths[] = {128, 256, 512, 1024, 2048};
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    ElasticCountSketch sketch(5, 512, /*seed=*/2000 + seed);
    std::map<uint64_t, uint64_t> exact;
    Rng rng(seed * 91 + 9);
    for (int phase = 0; phase < kPhases; ++phase) {
      FeedPhase(sketch, exact, rng);
      const int target = widths[rng.UniformInt(5)];
      if (target < sketch.width()) {
        sketch.Shrink(target);
      } else if (target > sketch.width()) {
        sketch.Expand(target);
      }
      for (const auto& [item, count] : exact) {
        ASSERT_LE(std::abs(sketch.Estimate(item) -
                           static_cast<int64_t>(count)),
                  sketch.ErrorBound())
            << "seed " << seed << " phase " << phase << " item " << item;
      }
    }
  }
}

// ---- Counter families: Resize keeps both brackets valid ----

template <typename S>
void CheckCounterBrackets(const S& summary,
                          const std::map<uint64_t, uint64_t>& exact,
                          uint64_t seed, int phase) {
  for (const auto& [item, count] : exact) {
    ASSERT_LE(summary.LowerEstimate(item), count)
        << "seed " << seed << " phase " << phase << " item " << item;
    ASSERT_GE(summary.UpperEstimate(item), count)
        << "seed " << seed << " phase " << phase << " item " << item;
  }
  // Untracked items hide under the slack floor at most.
  ASSERT_LE(summary.LowerEstimate(1u << 30), 0u);
}

TEST(ElasticResizeSweepTest, SpaceSavingBracketsHoldThroughResizes) {
  const int capacities[] = {8, 16, 24, 48, 64};
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    SpaceSaving summary(32);
    std::map<uint64_t, uint64_t> exact;
    Rng rng(seed * 131 + 3);
    for (int phase = 0; phase < kPhases; ++phase) {
      FeedPhase(summary, exact, rng);
      const int target = capacities[rng.UniformInt(5)];
      if (target != summary.capacity()) summary.Resize(target);
      ASSERT_EQ(summary.capacity(), target);
      CheckCounterBrackets(summary, exact, seed, phase);
    }
    ASSERT_EQ(summary.n(),
              static_cast<uint64_t>(kPhases * kUpdatesPerPhase));
  }
}

TEST(ElasticResizeSweepTest, DeamortizedBracketsHoldThroughResizes) {
  const int capacities[] = {16, 24, 40, 64, 96};
  for (uint64_t seed = 0; seed < kSeeds; ++seed) {
    DeamortizedSpaceSaving summary(32);
    std::map<uint64_t, uint64_t> exact;
    Rng rng(seed * 151 + 7);
    for (int phase = 0; phase < kPhases; ++phase) {
      FeedPhase(summary, exact, rng);
      const int target = capacities[rng.UniformInt(5)];
      summary.Resize(target);
      CheckCounterBrackets(summary, exact, seed, phase);
    }
    ASSERT_EQ(summary.n(),
              static_cast<uint64_t>(kPhases * kUpdatesPerPhase));
  }
}

// ---- Resize + merge interleavings are byte-deterministic ----

TEST(ElasticResizeSweepTest, ShrinkThenMergeMatchesMergeThenShrink) {
  // Fold commutes with merge (the linear-map argument): shrink-then-
  // merge and merge-then-shrink produce identical bytes.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    ElasticCountMin a1(4, 1024, seed);
    ElasticCountMin b1(4, 1024, seed);
    Rng rng(400 + seed);
    for (int i = 0; i < 1500; ++i) a1.Update(rng.UniformInt(300));
    for (int i = 0; i < 1500; ++i) b1.Update(rng.UniformInt(300));
    ElasticCountMin a2 = a1;
    ElasticCountMin b2 = b1;

    a1.Shrink(128);
    b1.Shrink(128);
    a1.Merge(b1);

    a2.Merge(b2);
    a2.Shrink(128);
    EXPECT_EQ(Encode(a1), Encode(a2)) << "seed " << seed;
  }
}

// ---- Split: mass conservation and per-part brackets ----

template <typename S>
void CheckSplit(S parent, const std::map<uint64_t, uint64_t>& exact) {
  const uint64_t parent_n = parent.n();
  const std::vector<S> parts =
      parent.Split(2, [](uint64_t item) { return item % 2; });
  ASSERT_EQ(parts.size(), 2u);
  // Mass conservation to the byte.
  ASSERT_EQ(parts[0].n() + parts[1].n(), parent_n);
  // Each part brackets the items routed to it.
  for (const auto& [item, count] : exact) {
    const S& part = parts[item % 2];
    EXPECT_LE(part.LowerEstimate(item), count) << item;
    EXPECT_GE(part.UpperEstimate(item), count) << item;
  }
  // Re-merging the parts preserves the brackets for the full stream.
  S rejoined = parts[0];
  rejoined.Merge(parts[1]);
  ASSERT_EQ(rejoined.n(), parent_n);
  for (const auto& [item, count] : exact) {
    EXPECT_LE(rejoined.LowerEstimate(item), count) << item;
    EXPECT_GE(rejoined.UpperEstimate(item), count) << item;
  }
}

TEST(ElasticResizeSweepTest, SpaceSavingSplitConservesMassAndBrackets) {
  for (uint64_t seed = 100; seed < 106; ++seed) {
    SpaceSaving summary(24);
    std::map<uint64_t, uint64_t> exact;
    Rng rng(seed);
    for (int i = 0; i < 2000; ++i) {
      const uint64_t item =
          rng.Bernoulli(0.6) ? rng.UniformInt(10) : rng.UniformInt(200);
      summary.Update(item);
      ++exact[item];
    }
    CheckSplit(summary, exact);
  }
}

TEST(ElasticResizeSweepTest, DeamortizedSplitConservesMassAndBrackets) {
  for (uint64_t seed = 200; seed < 206; ++seed) {
    DeamortizedSpaceSaving summary(32);
    std::map<uint64_t, uint64_t> exact;
    Rng rng(seed);
    for (int i = 0; i < 2000; ++i) {
      const uint64_t item =
          rng.Bernoulli(0.6) ? rng.UniformInt(10) : rng.UniformInt(200);
      summary.Update(item);
      ++exact[item];
    }
    CheckSplit(summary, exact);
  }
}

TEST(ElasticResizeSweepTest, SplitIntoFourPartsIsDeterministic) {
  SpaceSaving summary(16);
  Rng rng(55);
  for (int i = 0; i < 1000; ++i) summary.Update(rng.UniformInt(64));
  const auto route = [](uint64_t item) -> size_t { return item % 4; };
  const std::vector<SpaceSaving> once = summary.Split(4, route);
  const std::vector<SpaceSaving> twice = summary.Split(4, route);
  ASSERT_EQ(once.size(), 4u);
  uint64_t total = 0;
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(Encode(once[i]), Encode(twice[i])) << i;
    total += once[i].n();
  }
  EXPECT_EQ(total, summary.n());
}

}  // namespace
}  // namespace mergeable
