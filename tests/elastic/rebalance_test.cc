// RebalanceController tests: plan shapes for doubling/halving arcs,
// per-epoch shard accounting, TOP1 wire round trips, and — the part
// that makes live resharding sound — the summary-level recipes: a
// parent's Split() really produces its two children's summaries, and a
// join's Merge() really reconstitutes the parent, with mass accounted
// to the byte. Closes with a mixed-size dyadic store: epochs sealed at
// different sketch widths (the autoscale aftermath) must still answer
// range queries with valid brackets and byte-stable payloads.

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/storage.h"
#include "mergeable/aggregate/wire.h"
#include "mergeable/elastic/elastic_count_min.h"
#include "mergeable/elastic/rebalance.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/store/summary_store.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

TEST(RebalanceControllerTest, ShardsForEpochFollowsTheArc) {
  RebalanceController controller(/*base_shards=*/4);
  controller.AddStep(/*effective_epoch=*/3, /*shard_count=*/8);
  controller.AddStep(/*effective_epoch=*/6, /*shard_count=*/4);
  EXPECT_EQ(controller.ShardsForEpoch(0), 4u);
  EXPECT_EQ(controller.ShardsForEpoch(2), 4u);
  EXPECT_EQ(controller.ShardsForEpoch(3), 8u);
  EXPECT_EQ(controller.ShardsForEpoch(5), 8u);
  EXPECT_EQ(controller.ShardsForEpoch(6), 4u);
  EXPECT_EQ(controller.ShardsForEpoch(100), 4u);
  EXPECT_EQ(controller.ShardsBeforeStep(0), 4u);
  EXPECT_EQ(controller.ShardsBeforeStep(1), 8u);
}

TEST(RebalanceControllerTest, DoublingPlansSplitOps) {
  RebalanceController controller(4);
  controller.AddStep(3, 8);
  const WireTopology plan = controller.PlanStep(0);
  EXPECT_EQ(plan.effective_epoch, 3u);
  EXPECT_EQ(plan.shard_count, 8u);
  ASSERT_EQ(plan.ops.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(plan.ops[i].kind, TopologyOpKind::kSplit);
    EXPECT_EQ(plan.ops[i].parent, i);
    EXPECT_EQ(plan.ops[i].child_a, i);
    EXPECT_EQ(plan.ops[i].child_b, i + 4);
  }
}

TEST(RebalanceControllerTest, HalvingPlansJoinOps) {
  RebalanceController controller(8);
  controller.AddStep(5, 4);
  const WireTopology plan = controller.PlanStep(0);
  ASSERT_EQ(plan.ops.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(plan.ops[i].kind, TopologyOpKind::kJoin);
    EXPECT_EQ(plan.ops[i].parent, i);
    EXPECT_EQ(plan.ops[i].child_a, i);
    EXPECT_EQ(plan.ops[i].child_b, i + 4);
  }
}

TEST(RebalanceControllerTest, NonPowerChangeHasNoRecipe) {
  EXPECT_TRUE(PlanTopologyOps(4, 6).empty());
  EXPECT_TRUE(PlanTopologyOps(6, 4).empty());
  EXPECT_TRUE(PlanTopologyOps(4, 4).empty());
  EXPECT_EQ(PlanTopologyOps(1, 2).size(), 1u);
  EXPECT_EQ(PlanTopologyOps(2, 1).size(), 1u);
  EXPECT_EQ(PlanTopologyOps(16, 32).size(), 16u);
}

TEST(RebalanceControllerTest, EncodedStepsRoundTripTheWire) {
  RebalanceController controller(2);
  controller.AddStep(4, 4);
  controller.AddStep(9, 2);
  for (size_t step = 0; step < 2; ++step) {
    const std::vector<uint8_t> frame = controller.EncodeStep(step);
    EXPECT_EQ(PeekFrameKind(frame), FrameKind::kTopology);
    const auto decoded = DecodeTopologyFrame(frame);
    ASSERT_TRUE(decoded.has_value());
    const WireTopology plan = controller.PlanStep(step);
    EXPECT_EQ(decoded->effective_epoch, plan.effective_epoch);
    EXPECT_EQ(decoded->shard_count, plan.shard_count);
    ASSERT_EQ(decoded->ops.size(), plan.ops.size());
    for (size_t i = 0; i < plan.ops.size(); ++i) {
      EXPECT_EQ(decoded->ops[i].kind, plan.ops[i].kind);
      EXPECT_EQ(decoded->ops[i].parent, plan.ops[i].parent);
      EXPECT_EQ(decoded->ops[i].child_a, plan.ops[i].child_a);
      EXPECT_EQ(decoded->ops[i].child_b, plan.ops[i].child_b);
    }
  }
}

TEST(RebalanceControllerDeathTest, StepsMustAdvance) {
  RebalanceController controller(4);
  controller.AddStep(3, 8);
  ASSERT_DEATH(controller.AddStep(3, 4), "increasing");
  ASSERT_DEATH(controller.AddStep(2, 4), "increasing");
  ASSERT_DEATH(RebalanceController(0), "base shard");
}

// ---- The split recipe at the summary level ----
//
// Routing invariant behind {parent i -> children i, i + N}: an item
// hashed to shard h % N lands, under 2N shards, on h % 2N which is
// either i or i + N. So the parent's summary Split() with the child
// routing function *is* the migration — no replay, no approximation
// beyond the θ floor the Split contract already charges.

TEST(RebalanceRecipeTest, SplitRecipeProducesChildShardSummaries) {
  constexpr uint64_t kOldShards = 2;
  constexpr uint64_t kNewShards = 4;
  // Build each parent shard's summary over the items it owns.
  std::map<uint64_t, uint64_t> exact;
  std::vector<SpaceSaving> parents;
  for (uint64_t shard = 0; shard < kOldShards; ++shard) {
    SpaceSaving summary(16);
    Rng rng(31 + shard);
    for (int i = 0; i < 1500; ++i) {
      // Items this shard owns under the old topology.
      const uint64_t item = rng.UniformInt(100) * kOldShards + shard;
      summary.Update(item);
      ++exact[item];
    }
    parents.push_back(std::move(summary));
  }
  const std::vector<TopologyOp> ops =
      PlanTopologyOps(kOldShards, kNewShards);
  ASSERT_EQ(ops.size(), kOldShards);
  std::map<uint64_t, SpaceSaving> children;
  uint64_t parent_mass = 0;
  uint64_t child_mass = 0;
  for (const TopologyOp& op : ops) {
    ASSERT_EQ(op.kind, TopologyOpKind::kSplit);
    const SpaceSaving& parent = parents[op.parent];
    parent_mass += parent.n();
    // Child a keeps items that still hash to the old id under 2N;
    // child b takes the rest.
    const uint64_t child_b = op.child_b;
    auto parts = parent.Split(2, [child_b, kNewShards](uint64_t item) {
      return item % kNewShards == child_b ? 1u : 0u;
    });
    child_mass += parts[0].n() + parts[1].n();
    children.emplace(op.child_a, std::move(parts[0]));
    children.emplace(op.child_b, std::move(parts[1]));
  }
  EXPECT_EQ(child_mass, parent_mass);
  ASSERT_EQ(children.size(), kNewShards);
  // Every item's bracket holds on the child shard that owns it now.
  for (const auto& [item, count] : exact) {
    const SpaceSaving& owner = children.at(item % kNewShards);
    EXPECT_LE(owner.LowerEstimate(item), count) << item;
    EXPECT_GE(owner.UpperEstimate(item), count) << item;
  }
}

TEST(RebalanceRecipeTest, JoinRecipeReconstitutesParentBrackets) {
  constexpr uint64_t kOldShards = 4;
  constexpr uint64_t kNewShards = 2;
  std::map<uint64_t, uint64_t> exact;
  std::vector<SpaceSaving> shards;
  for (uint64_t shard = 0; shard < kOldShards; ++shard) {
    SpaceSaving summary(16);
    Rng rng(77 + shard);
    for (int i = 0; i < 1200; ++i) {
      const uint64_t item = rng.UniformInt(80) * kOldShards + shard;
      summary.Update(item);
      ++exact[item];
    }
    shards.push_back(std::move(summary));
  }
  const std::vector<TopologyOp> ops =
      PlanTopologyOps(kOldShards, kNewShards);
  ASSERT_EQ(ops.size(), kNewShards);
  uint64_t joined_mass = 0;
  for (const TopologyOp& op : ops) {
    ASSERT_EQ(op.kind, TopologyOpKind::kJoin);
    SpaceSaving joined = shards[op.child_a];
    joined.Merge(shards[op.child_b]);
    joined_mass += joined.n();
    // The joined shard owns items ≡ parent (mod kNewShards): both of
    // its children's item sets, bracketed through the merge.
    for (const auto& [item, count] : exact) {
      if (item % kNewShards != op.parent) continue;
      EXPECT_LE(joined.LowerEstimate(item), count) << item;
      EXPECT_GE(joined.UpperEstimate(item), count) << item;
    }
  }
  uint64_t shard_mass = 0;
  for (const SpaceSaving& s : shards) shard_mass += s.n();
  EXPECT_EQ(joined_mass, shard_mass);
}

// ---- Mixed-size nodes in the dyadic store ----
//
// After an autoscale arc the per-epoch summaries arrive at different
// widths (narrow before the scale-up, wide after). ElasticCountMin
// merges across widths, so the store's internal tree nodes mix sizes;
// answers must keep their brackets and stay byte-deterministic.

TEST(RebalanceStoreTest, MixedWidthEpochsServeValidRangeAnswers) {
  constexpr uint64_t kEpochs = 12;
  constexpr int kDepth = 4;
  constexpr uint64_t kSeed = 99;
  MemStorage storage;
  StoreOptions options;
  options.epsilon = 0.02;
  SummaryStore<ElasticCountMin> store(&storage, options);

  std::vector<std::map<uint64_t, uint64_t>> per_epoch_exact(kEpochs);
  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    // Width arc: 256 -> 1024 (epochs 4..7) -> 256.
    const int width = (epoch >= 4 && epoch < 8) ? 1024 : 256;
    ElasticCountMin sketch(kDepth, width, kSeed);
    Rng rng(500 + epoch);
    for (int i = 0; i < 400; ++i) {
      const uint64_t item =
          rng.Bernoulli(0.6) ? rng.UniformInt(10) : rng.UniformInt(120);
      sketch.Update(item);
      ++per_epoch_exact[epoch][item];
    }
    EpochMeta meta;
    meta.epoch = epoch;
    meta.n = sketch.n();
    meta.shards_total = 1;
    meta.shards_received = 1;
    ASSERT_TRUE(store.Seal(1, sketch, meta));
  }

  for (const auto& [lo, hi] :
       {std::pair<uint64_t, uint64_t>{0, 11}, {2, 9}, {4, 7}, {3, 4}}) {
    const auto outcome = store.QueryRangePayload(1, lo, hi);
    ASSERT_TRUE(outcome.has_value());
    ByteReader reader(*outcome->payload);
    const auto merged = ElasticCountMin::DecodeFrom(reader);
    ASSERT_TRUE(merged.has_value() && reader.Exhausted());
    // The merged range folds to the narrowest width it covers.
    EXPECT_EQ(merged->width(), (lo >= 4 && hi < 8) ? 1024 : 256);
    std::map<uint64_t, uint64_t> exact;
    uint64_t total = 0;
    for (uint64_t e = lo; e <= hi; ++e) {
      for (const auto& [item, count] : per_epoch_exact[e]) {
        exact[item] += count;
        total += count;
      }
    }
    EXPECT_EQ(merged->n(), total);
    for (const auto& [item, count] : exact) {
      EXPECT_GE(merged->Estimate(item), count) << item;
      EXPECT_LE(static_cast<double>(merged->Estimate(item)),
                static_cast<double>(count) + merged->ErrorBound())
          << item;
    }
    // Determinism: asking again returns identical bytes.
    const auto again = store.QueryRangePayload(1, lo, hi);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again->payload, *outcome->payload);
  }
}

TEST(RebalanceStoreTest, MixedWidthTreeIsCachePressureInvariant) {
  // A 1-entry cache evicts on every fetch; cold rebuilds of mixed-width
  // internal nodes must reproduce identical bytes.
  constexpr uint64_t kEpochs = 9;
  auto build = [](size_t cache_capacity, MemStorage* storage) {
    StoreOptions options;
    options.cache_capacity = cache_capacity;
    SummaryStore<ElasticCountMin> store(storage, options);
    for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
      const int width = epoch % 2 == 0 ? 128 : 512;
      ElasticCountMin sketch(4, width, /*seed=*/7);
      Rng rng(epoch);
      for (int i = 0; i < 250; ++i) sketch.Update(rng.UniformInt(90));
      EpochMeta meta;
      meta.epoch = epoch;
      meta.n = sketch.n();
      meta.shards_total = 1;
      meta.shards_received = 1;
      EXPECT_TRUE(store.Seal(1, sketch, meta));
    }
    std::vector<std::vector<uint8_t>> answers;
    for (uint64_t lo = 0; lo < kEpochs; ++lo) {
      for (uint64_t hi = lo; hi < kEpochs; ++hi) {
        auto outcome = store.QueryRangePayload(1, lo, hi);
        EXPECT_TRUE(outcome.has_value());
        answers.push_back(*outcome->payload);
      }
    }
    return answers;
  };
  MemStorage tiny_storage;
  MemStorage large_storage;
  EXPECT_EQ(build(1, &tiny_storage), build(256, &large_storage));
}

}  // namespace
}  // namespace mergeable
