// Unit tests for the elastic sketches: estimate brackets, lattice
// geometry under Expand/Shrink, exact-fold byte determinism, merge
// across mismatched widths, codec round trips, and the CHECK surface.
//
// Accuracy assertions here are deterministic per seed (the suite seeds
// are part of the test); the ≥50-stream statistical sweep lives in
// elastic_resize_test.cc.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/elastic/elastic_count_min.h"
#include "mergeable/elastic/elastic_count_sketch.h"
#include "mergeable/util/bytes.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

template <typename S>
std::vector<uint8_t> Encode(const S& sketch) {
  ByteWriter writer;
  sketch.EncodeTo(writer);
  return writer.TakeBytes();
}

template <typename S>
S RoundTrip(const S& sketch) {
  const std::vector<uint8_t> bytes = Encode(sketch);
  ByteReader reader(bytes);
  auto decoded = S::DecodeFrom(reader);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_TRUE(reader.Exhausted());
  return std::move(*decoded);
}

// A skewed stream shared by sketch and exact counter.
template <typename S>
std::map<uint64_t, uint64_t> FeedSkewed(S& sketch, uint64_t seed,
                                        int updates, int universe) {
  std::map<uint64_t, uint64_t> exact;
  Rng rng(seed);
  for (int i = 0; i < updates; ++i) {
    const uint64_t item = rng.Bernoulli(0.6)
                              ? rng.UniformInt(universe / 10 + 1)
                              : rng.UniformInt(universe);
    sketch.Update(item);
    ++exact[item];
  }
  return exact;
}

// ---- ElasticCountMin ----

TEST(ElasticCountMinTest, EstimateBracketsExactCounts) {
  ElasticCountMin sketch(4, 512, /*seed=*/11);
  const auto exact = FeedSkewed(sketch, 100, 5000, 300);
  EXPECT_EQ(sketch.n(), 5000u);
  for (const auto& [item, count] : exact) {
    const uint64_t estimate = sketch.Estimate(item);
    EXPECT_GE(estimate, count) << item;
    EXPECT_LE(static_cast<double>(estimate),
              static_cast<double>(count) + sketch.ErrorBound())
        << item;
  }
  // An item never seen keeps the one-sided bound.
  EXPECT_LE(static_cast<double>(sketch.Estimate(1u << 30)),
            sketch.ErrorBound());
}

TEST(ElasticCountMinTest, ErrorBoundMatchesClassicFormulaSingleLevel) {
  ElasticCountMin sketch(4, 256, /*seed=*/1);
  for (int i = 0; i < 1000; ++i) sketch.Update(i % 50);
  // e · n / w for a never-resized sketch.
  EXPECT_DOUBLE_EQ(sketch.ErrorBound(),
                   std::exp(1.0) * 1000.0 / 256.0);
}

TEST(ElasticCountMinTest, ExpandOpensFinerLevelAndKeepsOldMassBudget) {
  ElasticCountMin sketch(4, 64, /*seed=*/7);
  for (int i = 0; i < 1000; ++i) sketch.Update(i % 40);
  const double before = sketch.ErrorBound();
  sketch.Expand(256);
  EXPECT_EQ(sketch.width(), 256);
  EXPECT_EQ(sketch.num_levels(), 2u);
  // Expanding re-routes nothing: the budget of existing mass is
  // unchanged until new updates land at the finer level.
  EXPECT_DOUBLE_EQ(sketch.ErrorBound(), before);
  for (int i = 0; i < 1000; ++i) sketch.Update(i % 40);
  // New mass at width 256 costs e·1000/256 < e·1000/64: the combined
  // budget is strictly better than staying at 64 would have been.
  EXPECT_LT(sketch.ErrorBound(), std::exp(1.0) * 2000.0 / 64.0);
  EXPECT_EQ(sketch.n(), 2000u);
}

TEST(ElasticCountMinTest, ShrinkIsByteIdenticalToNativeNarrowSketch) {
  // The fold linchpin, asserted at the byte level: stream wide, shrink,
  // and the result is indistinguishable from having streamed narrow.
  for (const uint64_t seed : {3u, 4u, 5u}) {
    ElasticCountMin wide(4, 1024, seed);
    ElasticCountMin narrow(4, 64, seed);
    Rng rng_a(900 + seed);
    Rng rng_b(900 + seed);
    for (int i = 0; i < 4000; ++i) {
      wide.Update(rng_a.UniformInt(500));
      narrow.Update(rng_b.UniformInt(500));
    }
    wide.Shrink(64);
    EXPECT_EQ(wide.width(), 64);
    EXPECT_EQ(wide.num_levels(), 1u);
    EXPECT_EQ(Encode(wide), Encode(narrow)) << "seed " << seed;
    EXPECT_DOUBLE_EQ(wide.ErrorBound(), narrow.ErrorBound());
  }
}

TEST(ElasticCountMinTest, ShrinkAfterExpandFoldsTheWholeLattice) {
  ElasticCountMin sketch(4, 64, /*seed=*/21);
  for (int i = 0; i < 500; ++i) sketch.Update(i % 30);
  sketch.Expand(512);
  for (int i = 0; i < 500; ++i) sketch.Update(i % 30);
  ASSERT_EQ(sketch.num_levels(), 2u);
  sketch.Shrink(32);
  EXPECT_EQ(sketch.width(), 32);
  EXPECT_EQ(sketch.num_levels(), 1u);
  EXPECT_EQ(sketch.n(), 1000u);
  // All mass now at width 32.
  EXPECT_DOUBLE_EQ(sketch.ErrorBound(), std::exp(1.0) * 1000.0 / 32.0);
}

TEST(ElasticCountMinTest, MergeMismatchedWidthsKeepsBracket) {
  ElasticCountMin a(4, 256, /*seed=*/9);
  ElasticCountMin b(4, 1024, /*seed=*/9);
  auto exact = FeedSkewed(a, 41, 3000, 200);
  for (const auto& [item, count] : FeedSkewed(b, 42, 2000, 200)) {
    exact[item] += count;
  }
  a.Merge(b);
  EXPECT_EQ(a.width(), 256);
  EXPECT_EQ(a.n(), 5000u);
  for (const auto& [item, count] : exact) {
    EXPECT_GE(a.Estimate(item), count);
    EXPECT_LE(static_cast<double>(a.Estimate(item)),
              static_cast<double>(count) + a.ErrorBound());
  }
}

TEST(ElasticCountMinTest, CodecRoundTripsMultiLevelLattice) {
  ElasticCountMin sketch(4, 64, /*seed=*/33);
  FeedSkewed(sketch, 50, 1000, 100);
  sketch.Expand(256);
  FeedSkewed(sketch, 51, 1000, 100);
  const ElasticCountMin decoded = RoundTrip(sketch);
  EXPECT_EQ(decoded.n(), sketch.n());
  EXPECT_EQ(decoded.width(), sketch.width());
  EXPECT_EQ(decoded.num_levels(), sketch.num_levels());
  EXPECT_DOUBLE_EQ(decoded.ErrorBound(), sketch.ErrorBound());
  // Canonical: the round trip is a byte fixed point.
  EXPECT_EQ(Encode(decoded), Encode(sketch));
  for (uint64_t item = 0; item < 100; ++item) {
    EXPECT_EQ(decoded.Estimate(item), sketch.Estimate(item));
  }
}

TEST(ElasticCountMinTest, DecodeRejectsTruncationsAndBitFlips) {
  ElasticCountMin sketch(3, 32, /*seed=*/2);
  FeedSkewed(sketch, 60, 300, 50);
  sketch.Expand(128);
  FeedSkewed(sketch, 61, 300, 50);
  const std::vector<uint8_t> bytes = Encode(sketch);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    ByteReader reader(truncated);
    auto decoded = ElasticCountMin::DecodeFrom(reader);
    EXPECT_FALSE(decoded.has_value() && reader.Exhausted()) << cut;
  }
  // Corrupting a counter breaks the per-row mass invariant.
  std::vector<uint8_t> corrupt = bytes;
  corrupt[corrupt.size() - 3] ^= 0xff;
  ByteReader reader(corrupt);
  EXPECT_FALSE(ElasticCountMin::DecodeFrom(reader).has_value());
}

TEST(ElasticCountMinTest, ForEpsilonDeltaMeetsRequestedBound) {
  const ElasticCountMin sketch =
      ElasticCountMin::ForEpsilonDelta(0.01, 0.05, /*seed=*/5);
  // Width is e/ε rounded up to a power of two: the realized per-item
  // bound e·n/width is at least as tight as ε·n.
  EXPECT_GE(sketch.width() * 0.01, std::exp(1.0));
  EXPECT_GE(sketch.depth(), 3);
}

TEST(ElasticCountMinDeathTest, ChecksGuardTheLattice) {
  ASSERT_DEATH(ElasticCountMin(4, 48, 1), "power of two");
  ElasticCountMin sketch(4, 64, /*seed=*/1);
  ASSERT_DEATH(sketch.Shrink(64), "smaller");
  ASSERT_DEATH(sketch.Expand(64), "larger");
  ASSERT_DEATH(sketch.Shrink(33), "power of two");
  ElasticCountMin other_seed(4, 64, /*seed=*/2);
  ASSERT_DEATH(sketch.Merge(other_seed), "depth and seed");
}

// ---- ElasticCountSketch ----

TEST(ElasticCountSketchTest, EstimateWithinErrorBound) {
  ElasticCountSketch sketch(5, 512, /*seed=*/17);
  std::map<uint64_t, uint64_t> exact;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t item =
        rng.Bernoulli(0.5) ? rng.UniformInt(20) : rng.UniformInt(300);
    sketch.Update(item);
    ++exact[item];
  }
  for (const auto& [item, count] : exact) {
    const double err = std::abs(sketch.Estimate(item) -
                                static_cast<int64_t>(count));
    EXPECT_LE(err, sketch.ErrorBound()) << item;
  }
}

TEST(ElasticCountSketchTest, SupportsNegativeWeightsAcrossResize) {
  // Turnstile stream: inserts at one width, deletes after a shrink.
  ElasticCountSketch sketch(5, 256, /*seed=*/23);
  for (int i = 0; i < 400; ++i) sketch.Update(i % 8, 2);
  sketch.Shrink(64);
  for (int i = 0; i < 400; ++i) sketch.Update(i % 8, -1);
  // Each of the 8 items: 50·2 - 50·1 = 50.
  for (uint64_t item = 0; item < 8; ++item) {
    EXPECT_LE(std::abs(sketch.Estimate(item) - 50), sketch.ErrorBound());
  }
}

TEST(ElasticCountSketchTest, ShrinkIsByteIdenticalToNativeNarrowSketch) {
  for (const uint64_t seed : {13u, 14u}) {
    ElasticCountSketch wide(5, 2048, seed);
    ElasticCountSketch narrow(5, 128, seed);
    Rng rng_a(70 + seed);
    Rng rng_b(70 + seed);
    for (int i = 0; i < 3000; ++i) {
      wide.Update(rng_a.UniformInt(400));
      narrow.Update(rng_b.UniformInt(400));
    }
    wide.Shrink(128);
    EXPECT_EQ(Encode(wide), Encode(narrow)) << "seed " << seed;
  }
}

TEST(ElasticCountSketchTest, MergeMismatchedWidthsStaysUnbiasedish) {
  ElasticCountSketch a(5, 128, /*seed=*/31);
  ElasticCountSketch b(5, 1024, /*seed=*/31);
  std::map<uint64_t, int64_t> exact;
  Rng rng(19);
  for (int i = 0; i < 2500; ++i) {
    const uint64_t item = rng.UniformInt(150);
    a.Update(item);
    ++exact[item];
  }
  for (int i = 0; i < 2500; ++i) {
    const uint64_t item = rng.UniformInt(150);
    b.Update(item);
    ++exact[item];
  }
  a.Merge(b);
  EXPECT_EQ(a.width(), 128);
  EXPECT_EQ(a.n(), 5000u);
  for (const auto& [item, count] : exact) {
    EXPECT_LE(std::abs(a.Estimate(item) - count), a.ErrorBound()) << item;
  }
}

TEST(ElasticCountSketchTest, CodecRoundTripsAndRejectsCorruption) {
  ElasticCountSketch sketch(5, 64, /*seed=*/3);
  for (int i = 0; i < 500; ++i) sketch.Update(i % 60);
  sketch.Expand(256);
  for (int i = 0; i < 500; ++i) sketch.Update(i % 60, -1);
  const ElasticCountSketch decoded = RoundTrip(sketch);
  EXPECT_EQ(Encode(decoded), Encode(sketch));
  EXPECT_EQ(decoded.n(), 1000u);

  const std::vector<uint8_t> bytes = Encode(sketch);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    ByteReader reader(truncated);
    auto partial = ElasticCountSketch::DecodeFrom(reader);
    EXPECT_FALSE(partial.has_value() && reader.Exhausted()) << cut;
  }
}

TEST(ElasticCountSketchTest, ErrorBoundTracksLatticeGeometry) {
  ElasticCountSketch sketch(5, 64, /*seed=*/41);
  for (int i = 0; i < 1000; ++i) sketch.Update(i % 100);
  // Single level: sqrt(3·n²/w).
  EXPECT_DOUBLE_EQ(sketch.ErrorBound(),
                   std::sqrt(3.0 * 1000.0 * 1000.0 / 64.0));
  const double before = sketch.ErrorBound();
  sketch.Expand(1024);
  EXPECT_DOUBLE_EQ(sketch.ErrorBound(), before);
  sketch.Shrink(32);
  EXPECT_DOUBLE_EQ(sketch.ErrorBound(),
                   std::sqrt(3.0 * 1000.0 * 1000.0 / 32.0));
}

}  // namespace
}  // namespace mergeable
