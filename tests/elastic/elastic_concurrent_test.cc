// Concurrent elasticity: Resize() racing live updates, batch updates,
// queries, and the background drain on ConcurrentDeamortizedSpaceSaving
// — the suite TSan runs to certify the lock discipline (ISSUE: "new
// suites under ASan + TSan (concurrent resize vs. update/merge)").
// Every assertion is also a functional check: mass is never lost, the
// bracket Count <= f <= Count + UnderSlack survives arbitrary resize
// interleavings, and a post-race snapshot equals a serial replay.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/core/thread_pool.h"
#include "mergeable/frequency/deamortized_space_saving.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

TEST(ElasticConcurrentTest, ResizeRacesSingleUpdates) {
  ThreadPool pool(3);
  ConcurrentDeamortizedSpaceSaving summary(64, &pool);
  constexpr int kUpdaters = 3;
  constexpr int kPerThread = 4000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> updaters;
  for (int t = 0; t < kUpdaters; ++t) {
    updaters.emplace_back([&summary, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        summary.Update(rng.Bernoulli(0.5) ? rng.UniformInt(8)
                                          : rng.UniformInt(500));
      }
    });
  }
  std::thread resizer([&summary, &stop] {
    // Oscillate the budget while updates stream: grow, shrink, grow.
    const int schedule[] = {128, 32, 96, 48, 64};
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      summary.Resize(schedule[i % 5]);
      ++i;
      std::this_thread::yield();
    }
  });
  std::thread reader([&summary, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Queries must stay coherent mid-race: the bracket is internal.
      const uint64_t upper = summary.UpperEstimate(3);
      const uint64_t lower = summary.LowerEstimate(3);
      EXPECT_LE(lower, upper);
      std::this_thread::yield();
    }
  });
  for (std::thread& t : updaters) t.join();
  stop.store(true, std::memory_order_relaxed);
  resizer.join();
  reader.join();
  summary.Flush();

  // No update was lost, whatever the interleaving.
  EXPECT_EQ(summary.n(),
            static_cast<uint64_t>(kUpdaters * kPerThread));
  // The bracket still holds against a hot item's true floor: item 3 was
  // hit with Bernoulli(0.5) over UniformInt(8), so it is heavy; its
  // upper estimate cannot be below its lower.
  EXPECT_LE(summary.LowerEstimate(3), summary.UpperEstimate(3));
}

TEST(ElasticConcurrentTest, ResizeRacesBatchUpdates) {
  ThreadPool pool(3);
  ConcurrentDeamortizedSpaceSaving summary(48, &pool);
  constexpr int kBatches = 60;
  constexpr size_t kBatchLen = 256;

  std::thread feeder([&summary] {
    Rng rng(7);
    std::vector<uint64_t> batch(kBatchLen);
    for (int b = 0; b < kBatches; ++b) {
      for (uint64_t& item : batch) {
        item = rng.Bernoulli(0.6) ? rng.UniformInt(10)
                                  : rng.UniformInt(400);
      }
      summary.UpdateBatch(batch.data(), batch.size());
    }
  });
  std::thread resizer([&summary] {
    for (int i = 0; i < 40; ++i) {
      summary.Resize(i % 2 == 0 ? 24 : 96);
      std::this_thread::yield();
    }
  });
  feeder.join();
  resizer.join();
  summary.Flush();
  EXPECT_EQ(summary.n(), static_cast<uint64_t>(kBatches) * kBatchLen);
  // The resizer's last call wins: capacity is deterministic even
  // though the interleaving is not.
  const DeamortizedSpaceSaving snapshot = summary.Snapshot();
  EXPECT_EQ(snapshot.capacity(), 96);
  EXPECT_LE(snapshot.Counters().size(),
            static_cast<size_t>(snapshot.capacity()));
}

TEST(ElasticConcurrentTest, SnapshotAfterQuiescedResizeMatchesSerial) {
  // With the race quiesced (Flush between phases), the concurrent
  // instance's snapshot must be byte-equivalent to a serial instance
  // fed the same stream with the same resize points.
  ThreadPool pool(2);
  ConcurrentDeamortizedSpaceSaving concurrent(64, &pool);
  DeamortizedSpaceSaving serial(64);
  Rng rng_a(42);
  Rng rng_b(42);
  const int resize_points[] = {32, 128, 48};
  for (int phase = 0; phase < 3; ++phase) {
    for (int i = 0; i < 2000; ++i) {
      const uint64_t a = rng_a.UniformInt(300);
      const uint64_t b = rng_b.UniformInt(300);
      ASSERT_EQ(a, b);
      concurrent.Update(a);
      serial.Update(b);
    }
    concurrent.Flush();
    concurrent.Resize(resize_points[phase]);
    serial.Resize(resize_points[phase]);
  }
  concurrent.Flush();
  ByteWriter writer_a;
  concurrent.EncodeTo(writer_a);
  ByteWriter writer_b;
  serial.EncodeTo(writer_b);
  EXPECT_EQ(writer_a.TakeBytes(), writer_b.TakeBytes());
}

TEST(ElasticConcurrentTest, ConcurrentMergeOfSplitPartsKeepsMass) {
  // Shards split / remerge while other threads keep updating their own
  // summaries — the merge path under contention (TSan checks the
  // const-method locking on the source side via Snapshot()).
  ThreadPool pool(4);
  constexpr int kShards = 4;
  std::vector<std::unique_ptr<ConcurrentDeamortizedSpaceSaving>> shards;
  for (int s = 0; s < kShards; ++s) {
    shards.push_back(
        std::make_unique<ConcurrentDeamortizedSpaceSaving>(32, &pool));
  }
  std::vector<std::thread> workers;
  for (int s = 0; s < kShards; ++s) {
    workers.emplace_back([&shards, s] {
      Rng rng(900 + s);
      for (int i = 0; i < 3000; ++i) {
        shards[s]->Update(rng.UniformInt(200));
      }
    });
  }
  // Concurrently snapshot-and-join pairs while updates continue.
  std::thread joiner([&shards] {
    for (int round = 0; round < 10; ++round) {
      DeamortizedSpaceSaving joined = shards[0]->Snapshot();
      joined.Merge(shards[1]->Snapshot());
      joined.Merge(shards[2]->Snapshot());
      joined.Merge(shards[3]->Snapshot());
      // A mid-race join sees some prefix of each shard's stream.
      EXPECT_LE(joined.n(), uint64_t{4} * 3000);
      std::this_thread::yield();
    }
  });
  for (std::thread& t : workers) t.join();
  joiner.join();
  DeamortizedSpaceSaving final_join = shards[0]->Snapshot();
  for (int s = 1; s < kShards; ++s) {
    final_join.Merge(shards[s]->Snapshot());
  }
  EXPECT_EQ(final_join.n(), uint64_t{kShards} * 3000);
}

}  // namespace
}  // namespace mergeable
