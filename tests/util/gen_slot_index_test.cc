#include "mergeable/util/gen_slot_index.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/util/random.h"

namespace mergeable {
namespace {

TEST(GenSlotIndexTest, InsertAndFind) {
  GenSlotIndex index(16);
  EXPECT_TRUE(index.empty());
  index.Insert(42, 0);
  index.Insert(7, 1);
  ASSERT_TRUE(index.Find(42).has_value());
  EXPECT_EQ(*index.Find(42), 0u);
  EXPECT_EQ(*index.Find(7), 1u);
  EXPECT_FALSE(index.Find(9).has_value());
  EXPECT_EQ(index.size(), 2u);
}

TEST(GenSlotIndexTest, ClearIsLogicalNotPhysical) {
  GenSlotIndex index(8);
  for (uint32_t i = 0; i < 8; ++i) index.Insert(i, i);
  index.Clear();
  EXPECT_TRUE(index.empty());
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(index.Find(i).has_value()) << i;
  }
  // Old keys can re-enter with new slots after the clear.
  index.Insert(3, 99);
  EXPECT_EQ(*index.Find(3), 99u);
  EXPECT_EQ(index.size(), 1u);
}

TEST(GenSlotIndexTest, ManyGenerationsStayConsistent) {
  GenSlotIndex index(64);
  Rng rng(2024);
  for (int gen = 0; gen < 1000; ++gen) {
    std::unordered_map<uint64_t, uint32_t> reference;
    for (uint32_t slot = 0; slot < 64; ++slot) {
      const uint64_t key = rng.Next();
      if (reference.count(key)) continue;
      reference[key] = slot;
      index.Insert(key, slot);
    }
    for (const auto& [key, slot] : reference) {
      ASSERT_TRUE(index.Find(key).has_value());
      EXPECT_EQ(*index.Find(key), slot);
    }
    // A key from a prior generation must not resurrect.
    EXPECT_FALSE(index.Find(rng.Next()).has_value());
    index.Clear();
  }
}

TEST(GenSlotIndexTest, GrowsBeyondReservation) {
  GenSlotIndex index(4);
  for (uint32_t i = 0; i < 4096; ++i) index.Insert(i * 2654435761u, i);
  EXPECT_EQ(index.size(), 4096u);
  for (uint32_t i = 0; i < 4096; ++i) {
    ASSERT_TRUE(index.Find(i * 2654435761u).has_value());
    EXPECT_EQ(*index.Find(i * 2654435761u), i);
  }
  EXPECT_GT(index.rebuilds(), 0u);
}

TEST(GenSlotIndexTest, ReservePreventsRebuilds) {
  GenSlotIndex index(1024);
  for (uint32_t i = 0; i < 1024; ++i) index.Insert(i * 0x9e3779b9u, i);
  EXPECT_EQ(index.rebuilds(), 0u);
}

}  // namespace
}  // namespace mergeable
