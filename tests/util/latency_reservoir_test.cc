// The latency reservoir and the interpolated percentile rule it (and
// the bench harness) use. The interpolation cases pin down the exact
// arithmetic — including the small-sample tails where the old
// truncating index math reported a lower percentile than asked.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/util/latency_reservoir.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

TEST(InterpolatedPercentileTest, KnownSmallDistributions) {
  // Four values: fractional ranks interpolate, they do not truncate.
  std::vector<double> four = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(InterpolatedPercentile(four, 0), 10.0);
  EXPECT_DOUBLE_EQ(InterpolatedPercentile(four, 100), 40.0);
  // rank = 1.5 -> halfway between 20 and 30. Truncation would say 20.
  EXPECT_DOUBLE_EQ(InterpolatedPercentile(four, 50), 25.0);
  // rank = 0.75 -> 10 + 0.75 * 10.
  EXPECT_DOUBLE_EQ(InterpolatedPercentile(four, 25), 17.5);

  std::vector<double> single = {7.0};
  EXPECT_DOUBLE_EQ(InterpolatedPercentile(single, 50), 7.0);
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(InterpolatedPercentile(empty, 99), 0.0);
}

TEST(InterpolatedPercentileTest, UniformRampIsExact) {
  // 0..100 ramp: the interpolated percentile of p is exactly p.
  std::vector<double> ramp;
  for (int i = 100; i >= 0; --i) ramp.push_back(static_cast<double>(i));
  for (double p : {0.0, 12.5, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(InterpolatedPercentile(ramp, p), p) << "p=" << p;
  }
}

TEST(InterpolatedPercentileTest, TailIsNotTruncatedAway) {
  // 1000 samples of 1.0 plus one 100.0 outlier: p99.9 has fractional
  // rank 999.999 * 0.999 -- the truncating rule lands on a 1.0 sample
  // and hides the outlier's pull entirely at p = 99.95.
  std::vector<double> values(1000, 1.0);
  values.push_back(100.0);
  const double p9995 = InterpolatedPercentile(values, 99.95);
  EXPECT_GT(p9995, 1.0);
  EXPECT_LE(p9995, 100.0);
  EXPECT_DOUBLE_EQ(InterpolatedPercentile(values, 100), 100.0);
}

TEST(LatencyReservoirTest, ExactStatisticsBelowCapacity) {
  LatencyReservoir reservoir(64);
  for (double v : {5.0, 1.0, 9.0, 3.0}) reservoir.Record(v);
  EXPECT_EQ(reservoir.count(), 4u);
  EXPECT_DOUBLE_EQ(reservoir.min(), 1.0);
  EXPECT_DOUBLE_EQ(reservoir.max(), 9.0);
  EXPECT_DOUBLE_EQ(reservoir.mean(), 4.5);
  // Below capacity the sample is the full stream, so percentiles are
  // the interpolated exact ones: rank 1.5 between 3 and 5.
  EXPECT_DOUBLE_EQ(reservoir.Percentile(50), 4.0);
  EXPECT_DOUBLE_EQ(reservoir.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(reservoir.Percentile(100), 9.0);
}

TEST(LatencyReservoirTest, MaxIsExactEvenWhenSampled) {
  // 100k observations through a 256-slot reservoir: the single max at
  // an arbitrary position must survive, because it is tracked outside
  // the sample.
  LatencyReservoir reservoir(256, 9);
  for (int i = 0; i < 100000; ++i) {
    reservoir.Record(i == 73123 ? 5000.0 : 1.0 + (i % 7) * 0.1);
  }
  EXPECT_EQ(reservoir.count(), 100000u);
  EXPECT_EQ(reservoir.sample_size(), 256u);
  EXPECT_DOUBLE_EQ(reservoir.max(), 5000.0);
  EXPECT_DOUBLE_EQ(reservoir.Percentile(100), 5000.0);
}

TEST(LatencyReservoirTest, SampledPercentilesTrackTheDistribution) {
  // Uniform [0, 1000): a 4096-slot sample of 200k draws puts p50 and
  // p90 within a few percent of truth.
  LatencyReservoir reservoir(4096, 17);
  Rng rng(123);
  for (int i = 0; i < 200000; ++i) {
    reservoir.Record(static_cast<double>(rng.UniformInt(uint64_t{1000})));
  }
  EXPECT_NEAR(reservoir.Percentile(50), 500.0, 30.0);
  EXPECT_NEAR(reservoir.Percentile(90), 900.0, 30.0);
}

TEST(LatencyReservoirTest, RecordAfterPercentileKeepsCounting) {
  LatencyReservoir reservoir(8);
  for (int i = 0; i < 5; ++i) reservoir.Record(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(reservoir.Percentile(100), 4.0);
  reservoir.Record(10.0);  // Sorting for the percentile must not freeze the sample.
  EXPECT_DOUBLE_EQ(reservoir.Percentile(100), 10.0);
  EXPECT_EQ(reservoir.count(), 6u);
}

}  // namespace
}  // namespace mergeable
