#include "mergeable/util/random.h"

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace mergeable {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedStillProducesSpread) {
  // SplitMix64 seeding must not leave a degenerate all-zero state.
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng.Next());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformInt(bound), bound);
  }
}

TEST(RngTest, UniformIntBoundOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.UniformInt(uint64_t{1}), 0u);
}

TEST(RngTest, UniformIntRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-3}, int64_t{3});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[rng.UniformInt(uint64_t{kBuckets})];
  }
  // Each bucket should get ~10000; allow 5 sigma (~474).
  for (int count : histogram) {
    EXPECT_NEAR(count, kDraws / kBuckets, 500);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngDeathTest, UniformIntZeroBoundAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.UniformInt(uint64_t{0}), "bound must be positive");
}

TEST(RngDeathTest, UniformIntInvertedRangeAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.UniformInt(int64_t{5}, int64_t{4}), "lo <= hi");
}

TEST(SplitMix64Test, AdvancesStateAndMixes) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  const uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace mergeable
