#include "mergeable/util/flat_counter_map.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include <gtest/gtest.h>

#include "mergeable/util/random.h"

namespace mergeable {
namespace {

TEST(FlatCounterMapTest, StartsEmpty) {
  FlatCounterMap map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Count(42), 0u);
  EXPECT_FALSE(map.Contains(42));
}

TEST(FlatCounterMapTest, AddWeightInsertsAndAccumulates) {
  FlatCounterMap map;
  EXPECT_EQ(map.AddWeight(7, 3), 3u);
  EXPECT_EQ(map.AddWeight(7, 4), 7u);
  EXPECT_EQ(map.Count(7), 7u);
  EXPECT_TRUE(map.Contains(7));
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatCounterMapTest, DistinctKeysAreIndependent) {
  FlatCounterMap map;
  map.AddWeight(1, 10);
  map.AddWeight(2, 20);
  map.AddWeight(3, 30);
  EXPECT_EQ(map.Count(1), 10u);
  EXPECT_EQ(map.Count(2), 20u);
  EXPECT_EQ(map.Count(3), 30u);
  EXPECT_EQ(map.size(), 3u);
}

TEST(FlatCounterMapTest, HandlesExtremeKeys) {
  FlatCounterMap map;
  map.AddWeight(0, 1);
  map.AddWeight(~uint64_t{0}, 2);
  EXPECT_EQ(map.Count(0), 1u);
  EXPECT_EQ(map.Count(~uint64_t{0}), 2u);
}

TEST(FlatCounterMapTest, GrowsBeyondInitialCapacity) {
  FlatCounterMap map(4);
  for (uint64_t key = 0; key < 1000; ++key) map.AddWeight(key, key + 1);
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t key = 0; key < 1000; ++key) {
    ASSERT_EQ(map.Count(key), key + 1) << "key " << key;
  }
}

TEST(FlatCounterMapTest, ClearKeepsCapacityDropsEntries) {
  FlatCounterMap map;
  for (uint64_t key = 0; key < 100; ++key) map.AddWeight(key, 1);
  map.Clear();
  EXPECT_EQ(map.size(), 0u);
  for (uint64_t key = 0; key < 100; ++key) EXPECT_EQ(map.Count(key), 0u);
  map.AddWeight(5, 9);
  EXPECT_EQ(map.Count(5), 9u);
}

TEST(FlatCounterMapTest, EntriesReturnsAllPairs) {
  FlatCounterMap map;
  map.AddWeight(10, 1);
  map.AddWeight(20, 2);
  auto entries = map.Entries();
  std::sort(entries.begin(), entries.end());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], std::make_pair(uint64_t{10}, uint64_t{1}));
  EXPECT_EQ(entries[1], std::make_pair(uint64_t{20}, uint64_t{2}));
}

TEST(FlatCounterMapTest, ForEachVisitsEveryEntryOnce) {
  FlatCounterMap map;
  for (uint64_t key = 0; key < 50; ++key) map.AddWeight(key * 7919, key + 1);
  uint64_t visits = 0;
  uint64_t total = 0;
  map.ForEach([&](uint64_t /*key*/, uint64_t count) {
    ++visits;
    total += count;
  });
  EXPECT_EQ(visits, 50u);
  EXPECT_EQ(total, 50u * 51u / 2u);
}

TEST(FlatCounterMapTest, MatchesReferenceMapUnderRandomWorkload) {
  FlatCounterMap map;
  std::unordered_map<uint64_t, uint64_t> reference;
  Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.UniformInt(uint64_t{512});
    const uint64_t weight = 1 + rng.UniformInt(uint64_t{5});
    map.AddWeight(key, weight);
    reference[key] += weight;
  }
  EXPECT_EQ(map.size(), reference.size());
  for (const auto& [key, count] : reference) {
    ASSERT_EQ(map.Count(key), count) << "key " << key;
  }
}

TEST(FlatCounterMapTest, CopySemantics) {
  FlatCounterMap map;
  map.AddWeight(1, 5);
  FlatCounterMap copy = map;
  copy.AddWeight(1, 5);
  EXPECT_EQ(map.Count(1), 5u);
  EXPECT_EQ(copy.Count(1), 10u);
}

}  // namespace
}  // namespace mergeable
