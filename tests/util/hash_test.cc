#include "mergeable/util/hash.h"

#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace mergeable {
namespace {

TEST(MixHashTest, Deterministic) {
  EXPECT_EQ(MixHash(12345), MixHash(12345));
  EXPECT_EQ(MixHash(12345, 7), MixHash(12345, 7));
}

TEST(MixHashTest, SeedChangesOutput) {
  EXPECT_NE(MixHash(12345, 1), MixHash(12345, 2));
}

TEST(MixHashTest, NoCollisionsOnSmallRange) {
  // MixHash is a bijection, so distinct inputs cannot collide.
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) seen.insert(MixHash(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(MixHashTest, AvalancheOnSingleBitFlip) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flipped = 0;
  constexpr int kTrials = 64;
  for (int bit = 0; bit < kTrials; ++bit) {
    const uint64_t a = MixHash(0x123456789abcdef0ULL);
    const uint64_t b = MixHash(0x123456789abcdef0ULL ^ (uint64_t{1} << bit));
    total_flipped += std::popcount(a ^ b);
  }
  const double mean_flipped = static_cast<double>(total_flipped) / kTrials;
  EXPECT_GT(mean_flipped, 24.0);
  EXPECT_LT(mean_flipped, 40.0);
}

TEST(PolynomialHashTest, OutputWithinField) {
  PolynomialHash hash(4, /*seed=*/99);
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_LT(hash(x), PolynomialHash::kPrime);
  }
}

TEST(PolynomialHashTest, DeterministicPerSeed) {
  PolynomialHash a(3, 5);
  PolynomialHash b(3, 5);
  PolynomialHash c(3, 6);
  int differs = 0;
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(a(x), b(x));
    if (a(x) != c(x)) ++differs;
  }
  EXPECT_GT(differs, 90);
}

TEST(PolynomialHashTest, BoundedStaysInBound) {
  PolynomialHash hash(2, 123);
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_LT(hash.Bounded(x, 17), 17u);
  }
}

TEST(PolynomialHashTest, BoundedIsRoughlyUniform) {
  PolynomialHash hash(2, 321);
  constexpr uint64_t kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> histogram(kBuckets, 0);
  for (int x = 0; x < kDraws; ++x) {
    ++histogram[hash.Bounded(static_cast<uint64_t>(x), kBuckets)];
  }
  for (int count : histogram) EXPECT_NEAR(count, kDraws / kBuckets, 600);
}

TEST(PolynomialHashTest, SignsAreBalanced) {
  PolynomialHash hash(4, 777);
  int positive = 0;
  constexpr int kDraws = 40000;
  for (int x = 0; x < kDraws; ++x) {
    const int sign = hash.Sign(static_cast<uint64_t>(x));
    ASSERT_TRUE(sign == 1 || sign == -1);
    if (sign == 1) ++positive;
  }
  EXPECT_NEAR(positive, kDraws / 2, 600);
}

TEST(PolynomialHashTest, PairwiseCollisionRateNearUniversal) {
  // For a 2-universal family, Pr[h(x) mod m == h(y) mod m] ~ 1/m.
  constexpr uint64_t kBuckets = 64;
  constexpr int kPairs = 3000;
  int collisions = 0;
  PolynomialHash hash(2, 2024);
  for (int i = 0; i < kPairs; ++i) {
    const auto x = static_cast<uint64_t>(2 * i);
    const auto y = static_cast<uint64_t>(2 * i + 1);
    if (hash.Bounded(x, kBuckets) == hash.Bounded(y, kBuckets)) ++collisions;
  }
  // Expected ~ kPairs / kBuckets = 47; allow generous slack.
  EXPECT_LT(collisions, 110);
}

TEST(PolynomialHashTest, FourWiseSignProductsAverageToZero) {
  // 4-wise independence implies E[s(a)s(b)s(c)s(d)] = 0 for distinct keys.
  double sum = 0.0;
  constexpr int kTrials = 200;
  for (int seed = 0; seed < kTrials; ++seed) {
    PolynomialHash hash(4, static_cast<uint64_t>(seed) * 31 + 1);
    sum += hash.Sign(1) * hash.Sign(2) * hash.Sign(3) * hash.Sign(4);
  }
  EXPECT_NEAR(sum / kTrials, 0.0, 0.25);
}

TEST(PolynomialHashDeathTest, ZeroDegreeAborts) {
  EXPECT_DEATH(PolynomialHash(0, 1), "degree");
}

}  // namespace
}  // namespace mergeable
