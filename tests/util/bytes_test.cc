// Wire-format contract tests for ByteWriter / ByteReader: the encoding
// is little-endian on every host (golden byte sequences, not just round
// trips), and the length-prefixed PutBytes / GetBytes frame helpers
// reject lengths the input cannot back.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/util/bytes.h"

namespace mergeable {
namespace {

TEST(BytesTest, U32IsLittleEndianOnTheWire) {
  ByteWriter writer;
  writer.PutU32(0x01020304u);
  const std::vector<uint8_t> expected = {0x04, 0x03, 0x02, 0x01};
  EXPECT_EQ(writer.bytes(), expected);
}

TEST(BytesTest, U64IsLittleEndianOnTheWire) {
  ByteWriter writer;
  writer.PutU64(0x0102030405060708ULL);
  const std::vector<uint8_t> expected = {0x08, 0x07, 0x06, 0x05,
                                         0x04, 0x03, 0x02, 0x01};
  EXPECT_EQ(writer.bytes(), expected);
}

TEST(BytesTest, I64UsesTwosComplementLittleEndian) {
  ByteWriter writer;
  writer.PutI64(-2);
  const std::vector<uint8_t> expected = {0xfe, 0xff, 0xff, 0xff,
                                         0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(writer.bytes(), expected);
}

TEST(BytesTest, DoubleUsesIeee754LittleEndian) {
  ByteWriter writer;
  writer.PutDouble(1.0);  // IEEE-754: 0x3ff0000000000000.
  const std::vector<uint8_t> expected = {0x00, 0x00, 0x00, 0x00,
                                         0x00, 0x00, 0xf0, 0x3f};
  EXPECT_EQ(writer.bytes(), expected);
}

TEST(BytesTest, PrimitiveRoundTrip) {
  ByteWriter writer;
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefULL);
  writer.PutI64(-42);
  writer.PutDouble(3.25);
  ByteReader reader(writer.bytes());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0.0;
  ASSERT_TRUE(reader.GetU32(&u32));
  ASSERT_TRUE(reader.GetU64(&u64));
  ASSERT_TRUE(reader.GetI64(&i64));
  ASSERT_TRUE(reader.GetDouble(&d));
  EXPECT_EQ(u32, 0xdeadbeef);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(reader.Exhausted());
}

TEST(BytesTest, ByteSwapHelpersAreInvolutions) {
  EXPECT_EQ(internal::ByteSwap32(0x01020304u), 0x04030201u);
  EXPECT_EQ(internal::ByteSwap32(internal::ByteSwap32(0xdeadbeefu)),
            0xdeadbeefu);
  EXPECT_EQ(internal::ByteSwap64(0x0102030405060708ULL),
            0x0807060504030201ULL);
  EXPECT_EQ(internal::ByteSwap64(internal::ByteSwap64(0xfeedfacecafef00dULL)),
            0xfeedfacecafef00dULL);
}

TEST(BytesTest, LengthPrefixedBytesRoundTrip) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ByteWriter writer;
  writer.PutBytes(payload);
  EXPECT_EQ(writer.size(), 4 + payload.size());

  ByteReader reader(writer.bytes());
  std::vector<uint8_t> decoded;
  ASSERT_TRUE(reader.GetBytes(&decoded));
  EXPECT_EQ(decoded, payload);
  EXPECT_TRUE(reader.Exhausted());
}

TEST(BytesTest, EmptyBytesRoundTrip) {
  ByteWriter writer;
  writer.PutBytes(std::vector<uint8_t>{});
  ByteReader reader(writer.bytes());
  std::vector<uint8_t> decoded = {9, 9};
  ASSERT_TRUE(reader.GetBytes(&decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(BytesTest, GetBytesRejectsLengthBeyondInput) {
  ByteWriter writer;
  writer.PutU32(1000);  // Claims 1000 payload bytes...
  writer.PutU32(0);     // ...but only 4 follow.
  ByteReader reader(writer.bytes());
  std::vector<uint8_t> decoded;
  EXPECT_FALSE(reader.GetBytes(&decoded));
}

TEST(BytesTest, GetBytesRejectsTruncatedLengthPrefix) {
  const std::vector<uint8_t> input = {0x01, 0x00};  // Half a u32.
  ByteReader reader(input);
  std::vector<uint8_t> decoded;
  EXPECT_FALSE(reader.GetBytes(&decoded));
}

TEST(BytesTest, GetBytesHugeLengthDoesNotAllocate) {
  // A corrupted length prefix claiming 4 GiB must fail fast instead of
  // allocating; this runs under sanitizers in the fuzz suite.
  ByteWriter writer;
  writer.PutU32(0xffffffffu);
  ByteReader reader(writer.bytes());
  std::vector<uint8_t> decoded;
  EXPECT_FALSE(reader.GetBytes(&decoded));
}

}  // namespace
}  // namespace mergeable
