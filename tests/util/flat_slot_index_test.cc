#include "mergeable/util/flat_slot_index.h"

#include <cstdint>
#include <optional>

#include <gtest/gtest.h>

namespace mergeable {
namespace {

TEST(FlatSlotIndexTest, StartsEmpty) {
  FlatSlotIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.rebuilds(), 0u);
  EXPECT_FALSE(index.Find(42).has_value());
}

TEST(FlatSlotIndexTest, InsertThenFind) {
  FlatSlotIndex index;
  index.Insert(10, 0);
  index.Insert(20, 1);
  index.Insert(30, 2);
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.Find(10), std::optional<uint32_t>{0});
  EXPECT_EQ(index.Find(20), std::optional<uint32_t>{1});
  EXPECT_EQ(index.Find(30), std::optional<uint32_t>{2});
  EXPECT_FALSE(index.Find(40).has_value());
}

TEST(FlatSlotIndexTest, HandlesExtremeKeys) {
  FlatSlotIndex index;
  index.Insert(0, 1);
  index.Insert(~uint64_t{0}, 2);
  EXPECT_EQ(index.Find(0), std::optional<uint32_t>{1});
  EXPECT_EQ(index.Find(~uint64_t{0}), std::optional<uint32_t>{2});
}

TEST(FlatSlotIndexTest, EraseRemovesOnlyTheKey) {
  FlatSlotIndex index;
  for (uint64_t key = 0; key < 16; ++key) {
    index.Insert(key, static_cast<uint32_t>(key));
  }
  index.Erase(7);
  EXPECT_EQ(index.size(), 15u);
  EXPECT_FALSE(index.Find(7).has_value());
  for (uint64_t key = 0; key < 16; ++key) {
    if (key == 7) continue;
    ASSERT_TRUE(index.Find(key).has_value()) << key;
  }
  // Erasing an absent key is a no-op.
  index.Erase(7);
  index.Erase(999);
  EXPECT_EQ(index.size(), 15u);
}

TEST(FlatSlotIndexTest, ReinsertAfterEraseReclaimsTombstone) {
  FlatSlotIndex index;
  index.Insert(1, 5);
  index.Erase(1);
  index.Insert(1, 9);
  EXPECT_EQ(index.Find(1), std::optional<uint32_t>{9});
  EXPECT_EQ(index.size(), 1u);
}

TEST(FlatSlotIndexTest, ProbeChainSurvivesMiddleErase) {
  // Force a collision chain, erase the middle entry and check the tail
  // stays reachable (tombstones must not break linear probing).
  FlatSlotIndex index;
  for (uint64_t key = 0; key < 200; ++key) {
    index.Insert(key, static_cast<uint32_t>(key));
  }
  for (uint64_t key = 0; key < 200; key += 2) index.Erase(key);
  for (uint64_t key = 1; key < 200; key += 2) {
    ASSERT_EQ(index.Find(key), std::optional<uint32_t>{key}) << key;
  }
}

TEST(FlatSlotIndexTest, GrowsBeyondInitialCapacityAndCountsRebuilds) {
  FlatSlotIndex index(/*expected_entries=*/4);
  for (uint64_t key = 0; key < 10000; ++key) {
    index.Insert(key, static_cast<uint32_t>(key));
  }
  EXPECT_EQ(index.size(), 10000u);
  EXPECT_GT(index.rebuilds(), 0u);
  for (uint64_t key = 0; key < 10000; ++key) {
    ASSERT_EQ(index.Find(key), std::optional<uint32_t>{key}) << key;
  }
}

TEST(FlatSlotIndexTest, ReserveAvoidsRebuilds) {
  FlatSlotIndex index;
  index.Reserve(10000);
  const uint64_t after_reserve = index.rebuilds();
  for (uint64_t key = 0; key < 10000; ++key) {
    index.Insert(key, static_cast<uint32_t>(key));
  }
  EXPECT_EQ(index.rebuilds(), after_reserve);
}

TEST(FlatSlotIndexTest, TombstonePurgeKeepsAmortizedProbesShort) {
  // Churn: repeated erase+insert at bounded live size must trigger
  // same-size purge rebuilds rather than growing without bound, and the
  // index must stay correct throughout.
  FlatSlotIndex index(/*expected_entries=*/64);
  for (uint64_t key = 0; key < 64; ++key) {
    index.Insert(key, static_cast<uint32_t>(key));
  }
  for (uint64_t round = 0; round < 10000; ++round) {
    const uint64_t old_key = round % 64;
    const uint64_t new_key = 64 + round;
    index.Erase(old_key == 0 ? 64 + round - 64 : old_key);
    index.Insert(new_key, static_cast<uint32_t>(new_key % 64));
  }
  EXPECT_GT(index.rebuilds(), 0u);
}

TEST(FlatSlotIndexTest, ClearDropsEntriesWithoutCountingARebuild) {
  FlatSlotIndex index;
  for (uint64_t key = 0; key < 50; ++key) {
    index.Insert(key, static_cast<uint32_t>(key));
  }
  const uint64_t rebuilds = index.rebuilds();
  index.Clear();
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.rebuilds(), rebuilds);
  EXPECT_FALSE(index.Find(3).has_value());
  index.Insert(3, 30);
  EXPECT_EQ(index.Find(3), std::optional<uint32_t>{30});
}

}  // namespace
}  // namespace mergeable
