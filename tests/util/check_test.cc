#include "mergeable/util/check.h"

#include <gtest/gtest.h>

namespace mergeable {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  MERGEABLE_CHECK(1 + 1 == 2);
  MERGEABLE_CHECK_MSG(true, "never shown");
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(MERGEABLE_CHECK(1 == 2), "MERGEABLE_CHECK failed");
}

TEST(CheckDeathTest, FailingCheckPrintsMessage) {
  EXPECT_DEATH(MERGEABLE_CHECK_MSG(false, "custom context"),
               "custom context");
}

TEST(CheckDeathTest, FailingCheckPrintsCondition) {
  const int x = 3;
  EXPECT_DEATH(MERGEABLE_CHECK(x == 4), "x == 4");
}

TEST(CheckTest, DcheckPassesWhenTrue) {
  MERGEABLE_DCHECK(true);
  SUCCEED();
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckAbortsInDebugBuilds) {
  EXPECT_DEATH(MERGEABLE_DCHECK(false), "MERGEABLE_CHECK failed");
}
#else
TEST(CheckTest, DcheckCompilesAwayInReleaseBuilds) {
  MERGEABLE_DCHECK(false);  // Must not abort.
  SUCCEED();
}
#endif

}  // namespace
}  // namespace mergeable
