// Snapshot codec hardening and newest-valid-wins selection. The
// storage-scanning tests run over both backends.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/snapshot.h"
#include "mergeable/aggregate/storage.h"
#include "storage_backends.h"

namespace mergeable {
namespace {

Snapshot MakeSnapshot(uint64_t epoch) {
  Snapshot snapshot;
  snapshot.epoch = epoch;
  snapshot.n_shards = 8;
  snapshot.wal_records = 5;
  snapshot.received_shards = {0, 2, 5};
  snapshot.lost_shards = {3};
  snapshot.summary_payload = {10, 20, 30};
  return snapshot;
}

TEST(SnapshotTest, RoundTrips) {
  const Snapshot original = MakeSnapshot(7);
  const auto bytes = EncodeSnapshot(original);
  const auto decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->epoch, 7u);
  EXPECT_EQ(decoded->n_shards, 8u);
  EXPECT_EQ(decoded->wal_records, 5u);
  EXPECT_EQ(decoded->received_shards, original.received_shards);
  EXPECT_EQ(decoded->lost_shards, original.lost_shards);
  EXPECT_EQ(decoded->summary_payload, original.summary_payload);
}

TEST(SnapshotTest, RejectsEveryTruncation) {
  const auto bytes = EncodeSnapshot(MakeSnapshot(1));
  for (size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DecodeSnapshot(prefix).has_value()) << "len=" << len;
  }
}

TEST(SnapshotTest, RejectsEveryBitFlip) {
  const auto bytes = EncodeSnapshot(MakeSnapshot(1));
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = bytes;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(DecodeSnapshot(flipped).has_value())
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(SnapshotTest, RejectsTrailingBytes) {
  auto bytes = EncodeSnapshot(MakeSnapshot(1));
  bytes.push_back(0);
  EXPECT_FALSE(DecodeSnapshot(bytes).has_value());
}

TEST(SnapshotTest, RejectsUnsortedShardSets) {
  Snapshot snapshot = MakeSnapshot(1);
  snapshot.received_shards = {5, 2};  // Not ascending.
  const auto bytes = EncodeSnapshot(snapshot);
  EXPECT_FALSE(DecodeSnapshot(bytes).has_value());
}

class SnapshotBackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  SnapshotBackendTest() : factory_(GetParam()) {}
  BackendFactory factory_;
};

TEST_P(SnapshotBackendTest, EmptyStorageScanFindsNothing) {
  auto storage = factory_.Make();
  const SnapshotScan scan = LoadLatestSnapshot(*storage);
  EXPECT_FALSE(scan.found);
  EXPECT_EQ(scan.max_seq_seen, 0u);
}

TEST_P(SnapshotBackendTest, NewestValidSnapshotWins) {
  auto storage = factory_.Make();
  ASSERT_TRUE(WriteSnapshotFile(storage.get(), 1, MakeSnapshot(1)));
  ASSERT_TRUE(WriteSnapshotFile(storage.get(), 2, MakeSnapshot(2)));
  const SnapshotScan scan = LoadLatestSnapshot(*storage);
  ASSERT_TRUE(scan.found);
  EXPECT_EQ(scan.seq, 2u);
  EXPECT_EQ(scan.snapshot.epoch, 2u);
  EXPECT_EQ(scan.max_seq_seen, 2u);
}

TEST_P(SnapshotBackendTest, FallsBackPastTornNewestFile) {
  auto storage = factory_.Make();
  ASSERT_TRUE(WriteSnapshotFile(storage.get(), 1, MakeSnapshot(1)));
  // Sequence 2 is torn: only half its bytes reached storage.
  const auto full = EncodeSnapshot(MakeSnapshot(2));
  ASSERT_TRUE(storage->Rewrite(
      SnapshotFileName(2),
      std::vector<uint8_t>(full.begin(), full.begin() + full.size() / 2)));
  const SnapshotScan scan = LoadLatestSnapshot(*storage);
  ASSERT_TRUE(scan.found);
  EXPECT_EQ(scan.seq, 1u);
  EXPECT_EQ(scan.snapshot.epoch, 1u);
  // The torn file still raises the watermark so the next checkpoint
  // cannot collide with it.
  EXPECT_EQ(scan.max_seq_seen, 2u);
}

TEST_P(SnapshotBackendTest, IgnoresUnrelatedFiles) {
  auto storage = factory_.Make();
  ASSERT_TRUE(storage->Append("wal", {1, 2, 3}));
  ASSERT_TRUE(WriteSnapshotFile(storage.get(), 3, MakeSnapshot(3)));
  const SnapshotScan scan = LoadLatestSnapshot(*storage);
  ASSERT_TRUE(scan.found);
  EXPECT_EQ(scan.seq, 3u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SnapshotBackendTest,
                         ::testing::Values(BackendKind::kMem,
                                           BackendKind::kFile),
                         [](const auto& info) {
                           return BackendName(info.param);
                         });

}  // namespace
}  // namespace mergeable
