// DedupWindow: bounded retry memory for ingest coordinators.
//
// The regression this file guards (ISSUE satellite): a duplicate storm
// — one report resent forever — must not grow coordinator dedup state
// past its cap. Before the window existed, every admitted key lived
// forever; the storm test asserts the bound directly.

#include <cstdint>

#include <gtest/gtest.h>

#include "mergeable/aggregate/dedup.h"

namespace mergeable {
namespace {

TEST(DedupTest, AdmitsNewKeysAndRefusesDuplicates) {
  DedupWindow window(8);
  EXPECT_TRUE(window.Admit(1, 1));
  EXPECT_TRUE(window.Admit(2, 1));
  EXPECT_FALSE(window.Admit(1, 1));
  EXPECT_TRUE(window.Admit(1, 2));  // Same shard, new epoch: distinct.
  EXPECT_EQ(window.size(), 3u);
  EXPECT_TRUE(window.Contains(1, 1));
  EXPECT_FALSE(window.Contains(9, 9));
}

TEST(DedupTest, SizeNeverExceedsCapacity) {
  DedupWindow window(16);
  for (uint64_t shard = 0; shard < 100; ++shard) {
    for (uint64_t epoch = 0; epoch < 10; ++epoch) {
      window.Admit(shard, epoch);
      EXPECT_LE(window.size(), 16u);
    }
  }
  EXPECT_EQ(window.size(), 16u);
  EXPECT_EQ(window.evictions(), 1000u - 16u);
}

TEST(DedupTest, EvictionIsFifo) {
  DedupWindow window(3);
  window.Admit(0, 0);
  window.Admit(1, 0);
  window.Admit(2, 0);
  window.Admit(3, 0);  // Evicts (0, 0), the oldest admission.
  EXPECT_FALSE(window.Contains(0, 0));
  EXPECT_TRUE(window.Contains(1, 0));
  EXPECT_TRUE(window.Contains(2, 0));
  EXPECT_TRUE(window.Contains(3, 0));
  // A forgotten key is admissible again (the epoch check upstream is
  // what keeps that from double-counting in practice).
  EXPECT_TRUE(window.Admit(0, 0));
  EXPECT_FALSE(window.Contains(1, 0));
}

TEST(DedupTest, DuplicateStormCannotGrowTheWindow) {
  // The regression: thousands of resends of one already-admitted report
  // perform zero insertions — size, order and eviction count are all
  // byte-for-byte unchanged.
  DedupWindow window(32);
  for (uint64_t shard = 0; shard < 32; ++shard) window.Admit(shard, 7);
  const size_t size_before = window.size();
  const uint64_t evictions_before = window.evictions();
  for (int resend = 0; resend < 10000; ++resend) {
    EXPECT_FALSE(window.Admit(5, 7));
  }
  EXPECT_EQ(window.size(), size_before);
  EXPECT_EQ(window.evictions(), evictions_before);
  // And the storm did not evict anyone else's key.
  for (uint64_t shard = 0; shard < 32; ++shard) {
    EXPECT_TRUE(window.Contains(shard, 7));
  }
}

TEST(DedupTest, CapacityOneStillDedupsConsecutiveRetries) {
  DedupWindow window(1);
  EXPECT_TRUE(window.Admit(4, 4));
  EXPECT_FALSE(window.Admit(4, 4));
  EXPECT_TRUE(window.Admit(5, 5));
  EXPECT_FALSE(window.Contains(4, 4));
  EXPECT_EQ(window.size(), 1u);
}

}  // namespace
}  // namespace mergeable
