// Structure-aware decode fuzzing over every summary wire format.
//
// Each summary type gets >= 10k mutated inputs drawn from a small corpus
// of real encodings (empty, lightly filled, heavily filled and merged
// instances, so every structural variant is represented). The harness
// (aggregate/fuzz.h) asserts each decode either rejects cleanly or
// yields a self-consistent summary whose re-encoding is a byte-for-byte
// round-trip fixed point. Labeled `fuzz`: run via `ctest -L fuzz`,
// ideally configured with -DMERGEABLE_SANITIZE=ON.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/fuzz.h"
#include "mergeable/approx/eps_approximation.h"
#include "mergeable/approx/eps_kernel.h"
#include "mergeable/frequency/misra_gries.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/quantiles/gk.h"
#include "mergeable/quantiles/mergeable_quantiles.h"
#include "mergeable/quantiles/qdigest.h"
#include "mergeable/quantiles/reservoir.h"
#include "mergeable/sketch/ams.h"
#include "mergeable/sketch/bloom.h"
#include "mergeable/sketch/count_min.h"
#include "mergeable/sketch/count_sketch.h"
#include "mergeable/sketch/dyadic_count_min.h"
#include "mergeable/sketch/kmv.h"
#include "mergeable/stream/generators.h"
#include "mergeable/util/bytes.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

constexpr uint64_t kIterations = 10000;

std::vector<uint64_t> FuzzStream(uint64_t seed, uint32_t n = 4000) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = n;
  spec.universe = 512;
  return GenerateStream(spec, seed);
}

template <typename T>
std::vector<uint8_t> Encode(const T& summary) {
  ByteWriter writer;
  summary.EncodeTo(writer);
  return writer.TakeBytes();
}

// Runs the harness and asserts the contract: no crash (implicit), no
// accepted-but-inconsistent decode, and the corpus itself decodes (the
// mutator occasionally produces valid bytes, so accepted > 0 overall is
// not guaranteed per type — rejected + accepted must cover everything).
template <typename T>
void RunFuzz(const std::vector<std::vector<uint8_t>>& corpus,
             uint64_t seed) {
  const FuzzStats stats = FuzzDecode<T>(corpus, kIterations, seed);
  EXPECT_EQ(stats.iterations, kIterations);
  EXPECT_EQ(stats.rejected + stats.accepted, kIterations);
  EXPECT_EQ(stats.reencode_failures, 0u);
  EXPECT_EQ(stats.index_rebuild_violations, 0u);
}

TEST(DecodeFuzzTest, MisraGries) {
  MisraGries empty(16);
  MisraGries small(16);
  for (uint64_t item : FuzzStream(1, 200)) small.Update(item);
  MisraGries merged(16);
  for (uint64_t item : FuzzStream(2)) merged.Update(item);
  merged.Merge(small);
  RunFuzz<MisraGries>({Encode(empty), Encode(small), Encode(merged)}, 101);
}

TEST(DecodeFuzzTest, SpaceSaving) {
  SpaceSaving empty(16);
  SpaceSaving streamed(16);
  for (uint64_t item : FuzzStream(3)) streamed.Update(item);
  SpaceSaving merged(16);
  for (uint64_t item : FuzzStream(4)) merged.Update(item);
  merged.MergeCafaro(streamed);  // Populates under-slack and overs.
  RunFuzz<SpaceSaving>({Encode(empty), Encode(streamed), Encode(merged)},
                       102);
}

TEST(DecodeFuzzTest, GkSummary) {
  GkSummary empty(0.05);
  GkSummary filled(0.05);
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) filled.Update(rng.UniformDouble());
  RunFuzz<GkSummary>({Encode(empty), Encode(filled)}, 103);
}

TEST(DecodeFuzzTest, MergeableQuantiles) {
  MergeableQuantiles empty(32, 6);
  MergeableQuantiles filled(32, 7);
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) filled.Update(rng.UniformDouble());
  MergeableQuantiles merged(32, 9);
  for (int i = 0; i < 2000; ++i) merged.Update(rng.UniformDouble());
  merged.Merge(filled);
  RunFuzz<MergeableQuantiles>(
      {Encode(empty), Encode(filled), Encode(merged)}, 104);
}

TEST(DecodeFuzzTest, QDigest) {
  QDigest empty(10, 32);
  QDigest filled(10, 32);
  Rng rng(10);
  for (int i = 0; i < 4000; ++i) {
    filled.Update(rng.UniformInt(uint64_t{1} << 10));
  }
  RunFuzz<QDigest>({Encode(empty), Encode(filled)}, 105);
}

TEST(DecodeFuzzTest, Reservoir) {
  ReservoirSample empty(32, 11);
  ReservoirSample partial(32, 12);
  for (int i = 0; i < 10; ++i) partial.Update(i);
  ReservoirSample full(32, 13);
  for (int i = 0; i < 5000; ++i) full.Update(i * 0.25);
  RunFuzz<ReservoirSample>(
      {Encode(empty), Encode(partial), Encode(full)}, 106);
}

TEST(DecodeFuzzTest, CountMin) {
  CountMinSketch empty(4, 64, 14);
  CountMinSketch filled(4, 64, 14);
  for (uint64_t item : FuzzStream(15)) filled.Update(item);
  RunFuzz<CountMinSketch>({Encode(empty), Encode(filled)}, 107);
}

TEST(DecodeFuzzTest, CountSketch) {
  CountSketch empty(4, 64, 16);
  CountSketch filled(4, 64, 16);
  for (uint64_t item : FuzzStream(17)) filled.Update(item);
  RunFuzz<CountSketch>({Encode(empty), Encode(filled)}, 108);
}

TEST(DecodeFuzzTest, Ams) {
  AmsSketch empty(5, 32, 18);
  AmsSketch filled(5, 32, 18);
  for (uint64_t item : FuzzStream(19)) filled.Update(item);
  RunFuzz<AmsSketch>({Encode(empty), Encode(filled)}, 109);
}

TEST(DecodeFuzzTest, Bloom) {
  BloomFilter empty(256, 3, 20);
  BloomFilter filled(256, 3, 20);
  for (uint64_t item = 0; item < 200; ++item) filled.Add(item);
  RunFuzz<BloomFilter>({Encode(empty), Encode(filled)}, 110);
}

TEST(DecodeFuzzTest, Kmv) {
  KmvSketch empty(64, 21);
  KmvSketch partial(64, 22);
  for (uint64_t item = 0; item < 20; ++item) partial.Add(item);
  KmvSketch full(64, 23);
  for (uint64_t item = 0; item < 5000; ++item) full.Add(item);
  RunFuzz<KmvSketch>({Encode(empty), Encode(partial), Encode(full)}, 111);
}

TEST(DecodeFuzzTest, DyadicCountMin) {
  DyadicCountMin empty(10, 3, 32, 24);
  DyadicCountMin filled(10, 3, 32, 24);
  Rng rng(25);
  for (int i = 0; i < 3000; ++i) {
    filled.Update(rng.UniformInt(uint64_t{1} << 10));
  }
  RunFuzz<DyadicCountMin>({Encode(empty), Encode(filled)}, 112);
}

TEST(DecodeFuzzTest, EpsApproximation) {
  EpsApproximation empty(32, 26, HalvingPolicy::kMorton);
  EpsApproximation filled(32, 27, HalvingPolicy::kMorton);
  Rng rng(28);
  for (int i = 0; i < 4000; ++i) {
    filled.Update(Point2{rng.UniformDouble(), rng.UniformDouble()});
  }
  RunFuzz<EpsApproximation>({Encode(empty), Encode(filled)}, 113);
}

TEST(DecodeFuzzTest, EpsKernel) {
  EpsKernel empty(16);
  EpsKernel filled(16);
  Rng rng(29);
  for (int i = 0; i < 2000; ++i) {
    filled.Update(Point2{rng.UniformDouble(), rng.UniformDouble()});
  }
  RunFuzz<EpsKernel>({Encode(empty), Encode(filled)}, 114);
}

// The mutation engine itself: deterministic for a fixed seed, and the
// donor-splice path actually mixes corpus material.
TEST(DecodeFuzzTest, MutatorIsDeterministic) {
  const std::vector<uint8_t> base(64, 0xaa);
  const std::vector<uint8_t> donor(32, 0x55);
  ByteMutator a(7);
  ByteMutator b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Mutate(base, &donor), b.Mutate(base, &donor));
  }
}

TEST(DecodeFuzzTest, MutatorChangesInput) {
  const std::vector<uint8_t> base(64, 0xaa);
  ByteMutator mutator(8);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (mutator.Mutate(base, nullptr) != base) ++changed;
  }
  EXPECT_GT(changed, 45);  // Identity mutations are possible but rare.
}

}  // namespace
}  // namespace mergeable
