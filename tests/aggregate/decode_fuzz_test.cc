// Structure-aware decode fuzzing over every summary wire format.
//
// The registry (aggregate/summary_registry.h) supplies, per codec, a
// deterministic corpus of real encodings (empty, lightly filled,
// heavily filled and merged instances, so every structural variant is
// represented) and a type-erased fuzz entry point wrapping
// FuzzDecode<T>. Each codec gets >= 10k mutated inputs; the harness
// asserts each decode either rejects cleanly or yields a
// self-consistent summary whose re-encoding is a byte-for-byte
// round-trip fixed point. Labeled `fuzz`: run via `ctest -L fuzz`,
// ideally configured with -DMERGEABLE_SANITIZE=ON.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/fuzz.h"
#include "mergeable/aggregate/summary_registry.h"
#include "mergeable/aggregate/wire.h"

namespace mergeable {
namespace {

constexpr uint64_t kIterations = 10000;

// Runs the harness for every registered codec and asserts the contract:
// no crash (implicit), no accepted-but-inconsistent decode, and every
// iteration accounted for (the mutator occasionally produces valid
// bytes, so accepted > 0 is not guaranteed per type — rejected +
// accepted must cover everything).
TEST(DecodeFuzzTest, EveryRegisteredCodecSurvivesMutatedInputs) {
  uint64_t seed = 101;
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    SCOPED_TRACE(info.name);
    const FuzzStats stats = info.fuzz(info.corpus(seed), kIterations, seed);
    EXPECT_EQ(stats.iterations, kIterations);
    EXPECT_EQ(stats.rejected + stats.accepted, kIterations);
    EXPECT_EQ(stats.reencode_failures, 0u);
    EXPECT_EQ(stats.index_rebuild_violations, 0u);
    ++seed;
  }
}

// The aggregate entry point used by CI smoke runs: same harness, one
// call, stats reported per codec name.
TEST(DecodeFuzzTest, FuzzAllRegisteredCodecsCoversTheRegistry) {
  const std::vector<NamedFuzzStats> results =
      FuzzAllRegisteredCodecs(/*iterations_per_codec=*/500, /*seed=*/77);
  ASSERT_EQ(results.size(), SummaryRegistry().size());
  for (const NamedFuzzStats& result : results) {
    EXPECT_EQ(result.stats.iterations, 500u) << result.name;
    EXPECT_EQ(result.stats.reencode_failures, 0u) << result.name;
    EXPECT_EQ(result.stats.index_rebuild_violations, 0u) << result.name;
  }
}

// Frame codecs (wire.h FrameRegistry) get the same treatment: every
// frame type's corpus is mutated >= 10k times; the probe must never
// crash, and whenever a mutant decodes the probe internally asserts the
// re-encode fixed point (an abort here is a codec bug). Corpus entries
// themselves must always probe true.
TEST(DecodeFuzzTest, EveryFrameCodecSurvivesMutatedInputs) {
  uint64_t seed = 211;
  for (const FrameCodecInfo& info : FrameRegistry()) {
    SCOPED_TRACE(info.name);
    const std::vector<std::vector<uint8_t>> corpus = info.corpus(seed);
    ASSERT_FALSE(corpus.empty());
    for (const auto& frame : corpus) {
      EXPECT_TRUE(info.probe(frame)) << "pristine corpus entry rejected";
    }
    ByteMutator mutator(seed);
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    for (uint64_t i = 0; i < kIterations; ++i) {
      const std::vector<uint8_t>& base = corpus[i % corpus.size()];
      const std::vector<uint8_t>& donor =
          corpus[(i / corpus.size() + 1) % corpus.size()];
      const std::vector<uint8_t> mutant = mutator.Mutate(base, &donor);
      if (info.probe(mutant)) {
        ++accepted;
      } else {
        ++rejected;
      }
    }
    EXPECT_EQ(accepted + rejected, kIterations);
    ++seed;
  }
}

// The mutation engine itself: deterministic for a fixed seed, and the
// donor-splice path actually mixes corpus material.
TEST(DecodeFuzzTest, MutatorIsDeterministic) {
  const std::vector<uint8_t> base(64, 0xaa);
  const std::vector<uint8_t> donor(32, 0x55);
  ByteMutator a(7);
  ByteMutator b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Mutate(base, &donor), b.Mutate(base, &donor));
  }
}

TEST(DecodeFuzzTest, MutatorChangesInput) {
  const std::vector<uint8_t> base(64, 0xaa);
  ByteMutator mutator(8);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (mutator.Mutate(base, nullptr) != base) ++changed;
  }
  EXPECT_GT(changed, 45);  // Identity mutations are possible but rare.
}

}  // namespace
}  // namespace mergeable
