// Backend parameterization for the crash-matrix test suites: every
// storage-semantics test runs twice, once over MemStorage (the model)
// and once over FileStorage on a fresh temp directory (the real POSIX
// implementation). The two must expose the *same* crash surface — same
// write indices, same torn/corrupt/after semantics, same transient
// fault behavior — or the recovery proofs only hold for the model.

#ifndef MERGEABLE_TESTS_AGGREGATE_STORAGE_BACKENDS_H_
#define MERGEABLE_TESTS_AGGREGATE_STORAGE_BACKENDS_H_

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "mergeable/aggregate/fault.h"
#include "mergeable/aggregate/file_storage.h"
#include "mergeable/aggregate/storage.h"

namespace mergeable {

enum class BackendKind { kMem, kFile };

inline const char* BackendName(BackendKind kind) {
  return kind == BackendKind::kMem ? "Mem" : "File";
}

// Makes fresh CrashableStorage instances of one backend kind. File
// instances each get their own subdirectory of a mkdtemp root (removed
// on destruction), so a crash-matrix loop that makes a new storage per
// crash point always starts from clean media.
class BackendFactory {
 public:
  explicit BackendFactory(BackendKind kind) : kind_(kind) {
    if (kind_ == BackendKind::kFile) {
      std::string tmpl =
          (std::filesystem::temp_directory_path() / "mergeable_bk_XXXXXX")
              .string();
      root_ = ::mkdtemp(tmpl.data());
    }
  }
  ~BackendFactory() {
    if (!root_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(root_, ec);
    }
  }
  BackendFactory(const BackendFactory&) = delete;
  BackendFactory& operator=(const BackendFactory&) = delete;

  std::unique_ptr<CrashableStorage> Make(CrashPoint crash = {},
                                         FaultFd* faults = nullptr) {
    if (kind_ == BackendKind::kMem) {
      // MemStorage has no syscall layer; FaultFd windows apply to the
      // file backend only (MemStorage::FailNextWrites is its analogue).
      return std::make_unique<MemStorage>(crash);
    }
    return std::make_unique<FileStorage>(
        root_ + "/i" + std::to_string(next_++), crash, faults);
  }

  BackendKind kind() const { return kind_; }

 private:
  BackendKind kind_;
  std::string root_;
  uint64_t next_ = 0;
};

}  // namespace mergeable

#endif  // MERGEABLE_TESTS_AGGREGATE_STORAGE_BACKENDS_H_
