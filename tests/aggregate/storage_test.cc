// Storage semantics: append/rewrite/truncate/read/list, plus every
// crash mode of the CrashPoint schedule — the foundation the recovery
// tests stand on, so the failure injection itself must be exact. Every
// semantic test runs over both backends (MemStorage model, FileStorage
// on real files); the two must expose an identical crash surface.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/fault.h"
#include "mergeable/aggregate/file_storage.h"
#include "mergeable/aggregate/storage.h"
#include "storage_backends.h"

namespace mergeable {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> list) {
  return std::vector<uint8_t>(list);
}

class StorageBackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  StorageBackendTest() : factory_(GetParam()) {}
  BackendFactory factory_;
};

TEST_P(StorageBackendTest, AppendAccumulatesAndReadReturnsAll) {
  auto storage = factory_.Make();
  EXPECT_TRUE(storage->Append("log", Bytes({1, 2})));
  EXPECT_TRUE(storage->Append("log", Bytes({3})));
  const auto contents = storage->Read("log");
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(*contents, Bytes({1, 2, 3}));
  EXPECT_EQ(storage->stats().appends, 2u);
  EXPECT_EQ(storage->stats().bytes_appended, 3u);
}

TEST_P(StorageBackendTest, RewriteReplacesContents) {
  auto storage = factory_.Make();
  EXPECT_TRUE(storage->Rewrite("snap", Bytes({1, 2, 3})));
  EXPECT_TRUE(storage->Rewrite("snap", Bytes({9})));
  const auto contents = storage->Read("snap");
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(*contents, Bytes({9}));
}

TEST_P(StorageBackendTest, TruncateDropsTail) {
  auto storage = factory_.Make();
  EXPECT_TRUE(storage->Append("log", Bytes({1, 2, 3, 4})));
  EXPECT_TRUE(storage->Truncate("log", 2));
  EXPECT_EQ(*storage->Read("log"), Bytes({1, 2}));
  // Truncating past the end is a no-op, not an extension.
  EXPECT_TRUE(storage->Truncate("log", 100));
  EXPECT_EQ(storage->Read("log")->size(), 2u);
}

TEST_P(StorageBackendTest, MissingFileReadsAsNullopt) {
  auto storage = factory_.Make();
  EXPECT_FALSE(storage->Read("nope").has_value());
  EXPECT_TRUE(storage->List().empty());
}

TEST_P(StorageBackendTest, ListIsSortedAndHandlesSubdirectories) {
  auto storage = factory_.Make();
  EXPECT_TRUE(storage->Append("b", Bytes({1})));
  EXPECT_TRUE(storage->Append("a", Bytes({1})));
  EXPECT_TRUE(storage->Append("dir/c", Bytes({1})));
  const auto names = storage->List();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "dir/c");
  EXPECT_EQ(*storage->Read("dir/c"), Bytes({1}));
}

TEST_P(StorageBackendTest, CrashBeforeWritePersistsNothing) {
  CrashPoint point;
  point.mode = CrashMode::kBeforeWrite;
  point.write_index = 1;
  auto storage = factory_.Make(point);
  EXPECT_TRUE(storage->Append("log", Bytes({1, 2})));
  EXPECT_FALSE(storage->Append("log", Bytes({3, 4})));
  EXPECT_TRUE(storage->crashed());
  // Only the first write is durable; later writes all fail.
  EXPECT_EQ(*storage->Read("log"), Bytes({1, 2}));
  EXPECT_FALSE(storage->Append("log", Bytes({5})));
  EXPECT_EQ(*storage->Read("log"), Bytes({1, 2}));
}

TEST_P(StorageBackendTest, CrashTornWritePersistsStrictPrefix) {
  CrashPoint point;
  point.mode = CrashMode::kTornWrite;
  point.write_index = 0;
  point.mutation_seed = 7;
  auto storage = factory_.Make(point);
  EXPECT_FALSE(storage->Append("log", Bytes({1, 2, 3, 4, 5, 6, 7, 8})));
  EXPECT_TRUE(storage->crashed());
  const auto contents = storage->Read("log");
  // A strict prefix (possibly empty) reached the medium.
  if (contents.has_value()) {
    EXPECT_LT(contents->size(), 8u);
  }
}

TEST_P(StorageBackendTest, CrashCorruptWritePersistsFlippedBits) {
  CrashPoint point;
  point.mode = CrashMode::kCorruptWrite;
  point.write_index = 0;
  point.mutation_seed = 11;
  auto storage = factory_.Make(point);
  const auto original = Bytes({1, 2, 3, 4});
  EXPECT_FALSE(storage->Append("log", original));
  EXPECT_TRUE(storage->crashed());
  const auto contents = storage->Read("log");
  ASSERT_TRUE(contents.has_value());
  ASSERT_EQ(contents->size(), original.size());
  EXPECT_NE(*contents, original);  // Exactly one bit differs.
}

TEST_P(StorageBackendTest, CrashAfterWritePersistsEverything) {
  CrashPoint point;
  point.mode = CrashMode::kAfterWrite;
  point.write_index = 0;
  auto storage = factory_.Make(point);
  // The writer sees failure, but the bytes are durable — the classic
  // lost-acknowledgement case dedup must handle.
  EXPECT_FALSE(storage->Append("log", Bytes({1, 2})));
  EXPECT_TRUE(storage->crashed());
  EXPECT_EQ(*storage->Read("log"), Bytes({1, 2}));
}

TEST_P(StorageBackendTest, TornRewriteKeepsOldContents) {
  // Rewrite is atomic-rename on both backends: a crash while writing
  // the replacement leaves the OLD file fully intact — never a torn
  // mixture of the two.
  CrashPoint point;
  point.mode = CrashMode::kTornWrite;
  point.write_index = 1;
  point.mutation_seed = 3;
  auto storage = factory_.Make(point);
  EXPECT_TRUE(storage->Rewrite("snap", Bytes({1, 2, 3, 4})));
  EXPECT_FALSE(storage->Rewrite("snap", Bytes({5, 6, 7, 8})));
  EXPECT_TRUE(storage->crashed());
  EXPECT_EQ(*storage->Read("snap"), Bytes({1, 2, 3, 4}));
  // After restart the old contents are still what is served.
  storage->Restart();
  EXPECT_EQ(*storage->Read("snap"), Bytes({1, 2, 3, 4}));
}

TEST_P(StorageBackendTest, CorruptRewriteLandsNewContentsRotted) {
  // A corrupt rewrite models media rot just after the rename: the new
  // contents are in place, one bit flipped.
  CrashPoint point;
  point.mode = CrashMode::kCorruptWrite;
  point.write_index = 1;
  point.mutation_seed = 5;
  auto storage = factory_.Make(point);
  EXPECT_TRUE(storage->Rewrite("snap", Bytes({1, 2, 3, 4})));
  const auto next = Bytes({5, 6, 7, 8});
  EXPECT_FALSE(storage->Rewrite("snap", next));
  const auto contents = storage->Read("snap");
  ASSERT_TRUE(contents.has_value());
  ASSERT_EQ(contents->size(), next.size());
  EXPECT_NE(*contents, next);
}

TEST_P(StorageBackendTest, RestartClearsCrashAndKeepsDurableBytes) {
  CrashPoint point;
  point.mode = CrashMode::kAfterWrite;
  point.write_index = 0;
  auto storage = factory_.Make(point);
  EXPECT_FALSE(storage->Append("log", Bytes({1})));
  storage->Restart();
  EXPECT_FALSE(storage->crashed());
  EXPECT_EQ(*storage->Read("log"), Bytes({1}));
  // The consumed schedule does not fire again.
  EXPECT_TRUE(storage->Append("log", Bytes({2})));
  EXPECT_EQ(*storage->Read("log"), Bytes({1, 2}));
}

TEST_P(StorageBackendTest, WriteIndicesCountAppendsRewritesTruncates) {
  // The crash matrix enumerates boundaries from writes_attempted();
  // both backends must count the same operations.
  auto storage = factory_.Make();
  EXPECT_EQ(storage->writes_attempted(), 0u);
  storage->Append("log", Bytes({1}));
  storage->Rewrite("snap", Bytes({2}));
  storage->Truncate("log", 0);
  EXPECT_EQ(storage->writes_attempted(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageBackendTest,
                         ::testing::Values(BackendKind::kMem,
                                           BackendKind::kFile),
                         [](const auto& info) {
                           return BackendName(info.param);
                         });

TEST(MemStorageTest, CrashMatrixCoversEveryWriteAndMode) {
  const auto matrix = CrashMatrix(3, /*seed=*/1);
  ASSERT_EQ(matrix.size(), 12u);  // 3 writes x 4 fatal modes.
  for (const CrashPoint& point : matrix) {
    EXPECT_NE(point.mode, CrashMode::kNone);
    EXPECT_LT(point.write_index, 3u);
  }
}

TEST(MemStorageTest, TransientFailuresConsumeNoWriteIndex) {
  MemStorage storage;
  storage.FailNextWrites(2);
  EXPECT_FALSE(storage.Append("log", Bytes({1})));
  EXPECT_FALSE(storage.Append("log", Bytes({2})));
  EXPECT_EQ(storage.writes_attempted(), 0u);
  EXPECT_EQ(storage.stats().transient_failures, 2u);
  EXPECT_FALSE(storage.Read("log").has_value());
  // The window exhausted; the retry lands and gets index 0.
  EXPECT_TRUE(storage.Append("log", Bytes({3})));
  EXPECT_EQ(storage.writes_attempted(), 1u);
  EXPECT_EQ(*storage.Read("log"), Bytes({3}));
}

TEST(FileStorageTest, PersistsAcrossInstances) {
  BackendFactory factory(BackendKind::kFile);
  auto a = factory.Make();
  auto* file_a = static_cast<FileStorage*>(a.get());
  EXPECT_TRUE(a->Append("wal/log", Bytes({1, 2, 3})));
  EXPECT_TRUE(a->Rewrite("snap/0", Bytes({4, 5})));
  // A second instance over the same directory sees the same bytes —
  // the property MemStorage cannot provide.
  FileStorage b(file_a->root());
  EXPECT_EQ(*b.Read("wal/log"), Bytes({1, 2, 3}));
  EXPECT_EQ(*b.Read("snap/0"), Bytes({4, 5}));
  const auto names = b.List();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "snap/0");
  EXPECT_EQ(names[1], "wal/log");
}

TEST(FileStorageTest, RejectsPathEscapes) {
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make();
  EXPECT_FALSE(storage->Append("../escape", Bytes({1})));
  EXPECT_FALSE(storage->Append("/absolute", Bytes({1})));
  EXPECT_FALSE(storage->Append("a/../b", Bytes({1})));
  EXPECT_FALSE(storage->Append("", Bytes({1})));
  EXPECT_FALSE(storage->Read("../escape").has_value());
  EXPECT_TRUE(storage->List().empty());
}

TEST(FileStorageTest, FaultFdInjectsCleanTransientFailures) {
  FaultFd faults;
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make({}, &faults);
  EXPECT_TRUE(storage->Append("log", Bytes({1, 2})));

  faults.FailNextWrites(FaultFd::Kind::kENOSPC, 1);
  EXPECT_FALSE(storage->Append("log", Bytes({3, 4})));
  faults.FailNextWrites(FaultFd::Kind::kEIO, 1);
  EXPECT_FALSE(storage->Append("log", Bytes({3, 4})));
  // Neither failed call consumed a write index or left bytes behind.
  EXPECT_EQ(storage->writes_attempted(), 1u);
  EXPECT_EQ(*storage->Read("log"), Bytes({1, 2}));
  EXPECT_EQ(storage->stats().transient_failures, 2u);
  EXPECT_EQ(faults.faults_injected(), 2u);

  // The retry after the window closes appends at a clean offset.
  EXPECT_TRUE(storage->Append("log", Bytes({3, 4})));
  EXPECT_EQ(*storage->Read("log"), Bytes({1, 2, 3, 4}));
}

TEST(FileStorageTest, ShortWriteRollsBackToPreAppendLength) {
  FaultFd faults;
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make({}, &faults);
  EXPECT_TRUE(storage->Append("log", Bytes({1, 2})));
  faults.FailNextWrites(FaultFd::Kind::kShortWrite, 1);
  EXPECT_FALSE(storage->Append("log", Bytes({3, 4, 5, 6})));
  // The half-written bytes were truncated away: the log is not
  // poisoned and the retry produces the same contents as no fault.
  EXPECT_EQ(*storage->Read("log"), Bytes({1, 2}));
  EXPECT_TRUE(storage->Append("log", Bytes({3, 4, 5, 6})));
  EXPECT_EQ(*storage->Read("log"), Bytes({1, 2, 3, 4, 5, 6}));
}

TEST(FileStorageTest, StickyEnospcFailsEverythingUntilCleared) {
  FaultFd faults;
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make({}, &faults);
  faults.SetSticky(FaultFd::Kind::kENOSPC);
  EXPECT_FALSE(storage->Append("log", Bytes({1})));
  EXPECT_FALSE(storage->Rewrite("snap", Bytes({2})));
  EXPECT_FALSE(storage->Append("log", Bytes({3})));
  faults.Clear();
  EXPECT_TRUE(storage->Append("log", Bytes({4})));
  EXPECT_EQ(*storage->Read("log"), Bytes({4}));
}

TEST(FileStorageTest, RestartSweepsStaleTempFiles) {
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make();
  auto* file = static_cast<FileStorage*>(storage.get());
  // A torn rewrite dies mid-temp-write; reopening the directory (a new
  // instance, like a process restart) must sweep the stale temp.
  CrashPoint point;
  point.mode = CrashMode::kTornWrite;
  point.write_index = 0;
  point.mutation_seed = 9;
  FileStorage crasher(file->root(), point);
  EXPECT_FALSE(crasher.Rewrite("snap", Bytes({1, 2, 3, 4})));
  EXPECT_TRUE(crasher.crashed());
  FileStorage reopened(file->root());
  EXPECT_TRUE(reopened.List().empty());
  EXPECT_FALSE(reopened.Read("snap").has_value());
  // And the swept temp does not resurrect as the destination later.
  EXPECT_TRUE(reopened.Rewrite("snap", Bytes({9})));
  EXPECT_EQ(*reopened.Read("snap"), Bytes({9}));
}

TEST(FileStorageTest, TornAppendIsSectorAligned) {
  // Large torn appends persist a sector-multiple prefix — the shape a
  // real power cut leaves behind.
  CrashPoint point;
  point.mode = CrashMode::kTornWrite;
  point.write_index = 0;
  point.mutation_seed = 1234;
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make(point);
  std::vector<uint8_t> big(4096, 0xAB);
  EXPECT_FALSE(storage->Append("log", big));
  const auto contents = storage->Read("log");
  const size_t persisted = contents.has_value() ? contents->size() : 0;
  EXPECT_LT(persisted, big.size());
  EXPECT_EQ(persisted % 512, 0u);
}

}  // namespace
}  // namespace mergeable
