// MemStorage semantics: append/rewrite/truncate/read/list, plus every
// crash mode of the CrashPoint schedule — the foundation the recovery
// tests stand on, so the failure injection itself must be exact.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/fault.h"
#include "mergeable/aggregate/storage.h"

namespace mergeable {
namespace {

std::vector<uint8_t> Bytes(std::initializer_list<uint8_t> list) {
  return std::vector<uint8_t>(list);
}

TEST(MemStorageTest, AppendAccumulatesAndReadReturnsAll) {
  MemStorage storage;
  EXPECT_TRUE(storage.Append("log", Bytes({1, 2})));
  EXPECT_TRUE(storage.Append("log", Bytes({3})));
  const auto contents = storage.Read("log");
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(*contents, Bytes({1, 2, 3}));
  EXPECT_EQ(storage.stats().appends, 2u);
  EXPECT_EQ(storage.stats().bytes_appended, 3u);
}

TEST(MemStorageTest, RewriteReplacesContents) {
  MemStorage storage;
  EXPECT_TRUE(storage.Rewrite("snap", Bytes({1, 2, 3})));
  EXPECT_TRUE(storage.Rewrite("snap", Bytes({9})));
  const auto contents = storage.Read("snap");
  ASSERT_TRUE(contents.has_value());
  EXPECT_EQ(*contents, Bytes({9}));
}

TEST(MemStorageTest, TruncateDropsTail) {
  MemStorage storage;
  EXPECT_TRUE(storage.Append("log", Bytes({1, 2, 3, 4})));
  EXPECT_TRUE(storage.Truncate("log", 2));
  EXPECT_EQ(*storage.Read("log"), Bytes({1, 2}));
  // Truncating past the end is a no-op, not an extension.
  EXPECT_TRUE(storage.Truncate("log", 100));
  EXPECT_EQ(storage.Read("log")->size(), 2u);
}

TEST(MemStorageTest, MissingFileReadsAsNullopt) {
  MemStorage storage;
  EXPECT_FALSE(storage.Read("nope").has_value());
  EXPECT_TRUE(storage.List().empty());
}

TEST(MemStorageTest, ListIsSorted) {
  MemStorage storage;
  EXPECT_TRUE(storage.Append("b", Bytes({1})));
  EXPECT_TRUE(storage.Append("a", Bytes({1})));
  const auto names = storage.List();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(MemStorageTest, CrashBeforeWritePersistsNothing) {
  CrashPoint point;
  point.mode = CrashMode::kBeforeWrite;
  point.write_index = 1;
  MemStorage storage(point);
  EXPECT_TRUE(storage.Append("log", Bytes({1, 2})));
  EXPECT_FALSE(storage.Append("log", Bytes({3, 4})));
  EXPECT_TRUE(storage.crashed());
  // Only the first write is durable; later writes all fail.
  EXPECT_EQ(*storage.Read("log"), Bytes({1, 2}));
  EXPECT_FALSE(storage.Append("log", Bytes({5})));
  EXPECT_EQ(*storage.Read("log"), Bytes({1, 2}));
}

TEST(MemStorageTest, CrashTornWritePersistsStrictPrefix) {
  CrashPoint point;
  point.mode = CrashMode::kTornWrite;
  point.write_index = 0;
  point.mutation_seed = 7;
  MemStorage storage(point);
  EXPECT_FALSE(storage.Append("log", Bytes({1, 2, 3, 4, 5, 6, 7, 8})));
  EXPECT_TRUE(storage.crashed());
  const auto contents = storage.Read("log");
  // A strict prefix (possibly empty) reached the medium.
  if (contents.has_value()) {
    EXPECT_LT(contents->size(), 8u);
  }
}

TEST(MemStorageTest, CrashCorruptWritePersistsFlippedBits) {
  CrashPoint point;
  point.mode = CrashMode::kCorruptWrite;
  point.write_index = 0;
  point.mutation_seed = 11;
  MemStorage storage(point);
  const auto original = Bytes({1, 2, 3, 4});
  EXPECT_FALSE(storage.Append("log", original));
  EXPECT_TRUE(storage.crashed());
  const auto contents = storage.Read("log");
  ASSERT_TRUE(contents.has_value());
  ASSERT_EQ(contents->size(), original.size());
  EXPECT_NE(*contents, original);  // Exactly one bit differs.
}

TEST(MemStorageTest, CrashAfterWritePersistsEverything) {
  CrashPoint point;
  point.mode = CrashMode::kAfterWrite;
  point.write_index = 0;
  MemStorage storage(point);
  // The writer sees failure, but the bytes are durable — the classic
  // lost-acknowledgement case dedup must handle.
  EXPECT_FALSE(storage.Append("log", Bytes({1, 2})));
  EXPECT_TRUE(storage.crashed());
  EXPECT_EQ(*storage.Read("log"), Bytes({1, 2}));
}

TEST(MemStorageTest, RestartClearsCrashAndKeepsDurableBytes) {
  CrashPoint point;
  point.mode = CrashMode::kAfterWrite;
  point.write_index = 0;
  MemStorage storage(point);
  EXPECT_FALSE(storage.Append("log", Bytes({1})));
  storage.Restart();
  EXPECT_FALSE(storage.crashed());
  EXPECT_EQ(*storage.Read("log"), Bytes({1}));
  // The consumed schedule does not fire again.
  EXPECT_TRUE(storage.Append("log", Bytes({2})));
  EXPECT_EQ(*storage.Read("log"), Bytes({1, 2}));
}

TEST(MemStorageTest, CrashMatrixCoversEveryWriteAndMode) {
  const auto matrix = CrashMatrix(3, /*seed=*/1);
  ASSERT_EQ(matrix.size(), 12u);  // 3 writes x 4 fatal modes.
  for (const CrashPoint& point : matrix) {
    EXPECT_NE(point.mode, CrashMode::kNone);
    EXPECT_LT(point.write_index, 3u);
  }
}

}  // namespace
}  // namespace mergeable
