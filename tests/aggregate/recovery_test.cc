// Crash-recovery tests for the durable coordinator — the acceptance
// matrix: a crash is injected at EVERY WAL/snapshot write boundary, in
// every crash mode (process dies before the write, mid-write leaving a
// torn record, after a bit-flipped "bad sector" write, and just after a
// fully durable write whose acknowledgement is lost), across three
// summary types. In every single case the recovered epoch must produce
// a summary byte-identical to an uninterrupted durable run, with zero
// shards double-counted — the mergeability guarantee plus (shard,
// epoch) dedup is exactly what makes replay-from-checkpoint exact.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/coordinator.h"
#include "mergeable/aggregate/fault.h"
#include "mergeable/aggregate/snapshot.h"
#include "mergeable/aggregate/storage.h"
#include "mergeable/aggregate/wal.h"
#include "mergeable/core/merge_driver.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/quantiles/mergeable_quantiles.h"
#include "mergeable/sketch/count_min.h"
#include "mergeable/stream/generators.h"
#include "mergeable/stream/partition.h"
#include "mergeable/util/bytes.h"
#include "storage_backends.h"

namespace mergeable {
namespace {

constexpr uint64_t kEpoch = 7;
constexpr size_t kShards = 6;
constexpr uint64_t kDeadShard = 3;

std::vector<std::vector<uint64_t>> MatrixShards() {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 1 << 13;
  spec.universe = 1024;
  spec.alpha = 1.1;
  const auto stream = GenerateStream(spec, 19);
  return PartitionStream(stream, kShards, PartitionPolicy::kRandom, 5);
}

BackoffPolicy MatrixPolicy() {
  BackoffPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 5;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 20;
  policy.attempt_timeout_ms = 50;
  policy.deadline_ms = 500;
  return policy;
}

template <typename S>
std::vector<uint8_t> EncodedBytes(const S& summary) {
  ByteWriter writer;
  summary.EncodeTo(writer);
  return writer.TakeBytes();
}

// Builds one report frame per shard with `worker` (shard -> summary) and
// plays the whole crash matrix for summary type S over `factory`'s
// backend. `kDeadShard` never answers, so the matrix also crosses
// kShardLost records.
template <typename S, typename WorkerFn>
void RunCrashMatrix(const char* type_name, BackendFactory& factory,
                    WorkerFn worker) {
  const auto shards = MatrixShards();
  std::vector<std::vector<uint8_t>> frames;
  frames.reserve(kShards);
  uint64_t live_mass = 0;
  for (size_t shard = 0; shard < kShards; ++shard) {
    frames.push_back(
        MakeReportFrame(worker(shard, shards[shard]), shard, kEpoch));
    if (shard != kDeadShard) live_mass += shards[shard].size();
  }
  const auto make_transport = [&frames]() {
    FaultPlan plan;
    plan.KillShard(kDeadShard);
    SimulatedTransport transport{plan};
    for (size_t shard = 0; shard < kShards; ++shard) {
      transport.Submit(shard, frames[shard]);
    }
    return transport;
  };
  DurableOptions options;
  options.checkpoint_every = 2;

  // Reference: an uninterrupted durable run.
  auto reference_storage = factory.Make();
  Coordinator<S> reference(kEpoch, MatrixPolicy(),
                           MergeTopology::kLeftDeepChain);
  SimulatedTransport reference_transport = make_transport();
  const auto reference_result = reference.RunDurable(
      reference_transport, kShards, reference_storage.get(), options);
  ASSERT_FALSE(reference_result.crashed);
  ASSERT_TRUE(reference_result.summary.has_value());
  ASSERT_EQ(reference_result.shards_received, kShards - 1);
  ASSERT_EQ(reference_result.summary->n(), live_mass);
  const std::vector<uint8_t> reference_bytes =
      EncodedBytes(*reference_result.summary);
  const uint64_t total_writes = reference_storage->writes_attempted();
  // Epoch begin + a record per shard + one snapshot per two received.
  ASSERT_GE(total_writes, 1 + kShards);

  for (const CrashPoint& point : CrashMatrix(total_writes, /*seed=*/99)) {
    SCOPED_TRACE(std::string(type_name) + ": crash " + ToString(point.mode) +
                 " at write " + std::to_string(point.write_index));

    auto storage = factory.Make(point);
    Coordinator<S> first(kEpoch, MatrixPolicy(),
                         MergeTopology::kLeftDeepChain);
    SimulatedTransport crash_transport = make_transport();
    const auto crashed =
        first.RunDurable(crash_transport, kShards, storage.get(), options);
    ASSERT_TRUE(crashed.crashed);
    ASSERT_TRUE(storage->crashed());

    storage->Restart();
    Coordinator<S> second(kEpoch, MatrixPolicy(),
                          MergeTopology::kLeftDeepChain);
    const RecoveryInfo info = second.Recover(storage.get(), options);
    // Dedup by (shard, epoch) makes replay exactly-once: nothing in the
    // durable state may ever merge twice.
    EXPECT_EQ(info.duplicates_ignored, 0u);
    EXPECT_EQ(info.invalid_payloads, 0u);

    SimulatedTransport resume_transport = make_transport();
    const auto result = second.ResumeDurable(resume_transport, kShards);
    ASSERT_FALSE(result.crashed);
    ASSERT_TRUE(result.summary.has_value());
    EXPECT_EQ(result.shards_total, kShards);
    EXPECT_EQ(result.shards_received, kShards - 1);
    // Zero duplicate-counted shards: replaying a shard twice would
    // inflate n past the live mass.
    EXPECT_EQ(result.summary->n(), live_mass);
    // The headline property: byte-identical to the uninterrupted run.
    EXPECT_EQ(EncodedBytes(*result.summary), reference_bytes);
  }
}

class CrashMatrixBackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  CrashMatrixBackendTest() : factory_(GetParam()) {}
  BackendFactory factory_;
};

TEST_P(CrashMatrixBackendTest, SpaceSavingSurvivesEveryCrashPoint) {
  RunCrashMatrix<SpaceSaving>(
      "SpaceSaving", factory_,
      [](size_t, const std::vector<uint64_t>& items) {
        SpaceSaving summary = SpaceSaving::ForEpsilon(0.02);
        for (uint64_t item : items) summary.Update(item);
        return summary;
      });
}

TEST_P(CrashMatrixBackendTest, MergeableQuantilesSurvivesEveryCrashPoint) {
  RunCrashMatrix<MergeableQuantiles>(
      "MergeableQuantiles", factory_,
      [](size_t shard, const std::vector<uint64_t>& items) {
        MergeableQuantiles summary =
            MergeableQuantiles::ForEpsilon(0.05, 100 + shard);
        for (uint64_t item : items) {
          summary.Update(static_cast<double>(item));
        }
        return summary;
      });
}

TEST_P(CrashMatrixBackendTest, CountMinSurvivesEveryCrashPoint) {
  RunCrashMatrix<CountMinSketch>(
      "CountMin", factory_, [](size_t, const std::vector<uint64_t>& items) {
        CountMinSketch summary =
            CountMinSketch::ForEpsilonDelta(0.01, 0.01, /*seed=*/42);
        for (uint64_t item : items) summary.Update(item);
        return summary;
      });
}

INSTANTIATE_TEST_SUITE_P(Backends, CrashMatrixBackendTest,
                         ::testing::Values(BackendKind::kMem,
                                           BackendKind::kFile),
                         [](const auto& info) {
                           return BackendName(info.param);
                         });

// Transient storage faults (EIO/ENOSPC windows) must ride out on the
// coordinator's bounded append retry without perturbing the durable
// byte stream: the result is byte-identical to a fault-free run, and
// the retry counters record exactly what happened.
TEST(RecoveryTest, TransientAppendFaultsRideOutOnRetry) {
  const auto shards = MatrixShards();
  const auto make_transport = [&shards]() {
    SimulatedTransport transport{FaultPlan()};
    for (size_t shard = 0; shard < kShards; ++shard) {
      SpaceSaving summary = SpaceSaving::ForEpsilon(0.02);
      for (uint64_t item : shards[shard]) summary.Update(item);
      transport.Submit(shard, MakeReportFrame(summary, shard, kEpoch));
    }
    return transport;
  };

  MemStorage reference_storage;
  Coordinator<SpaceSaving> reference(kEpoch, MatrixPolicy(),
                                     MergeTopology::kLeftDeepChain);
  SimulatedTransport reference_transport = make_transport();
  const auto reference_result = reference.RunDurable(
      reference_transport, kShards, &reference_storage, DurableOptions{});
  ASSERT_FALSE(reference_result.crashed);
  EXPECT_EQ(reference.wal_append_retries(), 0u);

  MemStorage storage;
  storage.FailNextWrites(2);  // First append fails twice, then lands.
  DurableOptions options;
  options.append_retry.max_attempts = 3;
  options.append_retry.initial_backoff_ms = 0;
  Coordinator<SpaceSaving> faulted(kEpoch, MatrixPolicy(),
                                   MergeTopology::kLeftDeepChain);
  SimulatedTransport transport = make_transport();
  const auto result =
      faulted.RunDurable(transport, kShards, &storage, options);
  ASSERT_FALSE(result.crashed);
  ASSERT_TRUE(result.summary.has_value());
  EXPECT_EQ(faulted.wal_append_retries(), 2u);
  EXPECT_EQ(storage.stats().transient_failures, 2u);
  // Identical durable bytes and identical answer: retries are invisible
  // to the crash matrix and to every reader.
  EXPECT_EQ(EncodedBytes(*result.summary),
            EncodedBytes(*reference_result.summary));
  EXPECT_EQ(*storage.Read("wal"), *reference_storage.Read("wal"));
  EXPECT_EQ(storage.writes_attempted(),
            reference_storage.writes_attempted());
}

// When the fault window outlasts the retry budget, the run reports a
// crash (the caller's recovery machinery takes over) instead of
// silently losing the record.
TEST(RecoveryTest, ExhaustedAppendRetriesFailTheRun) {
  const auto shards = MatrixShards();
  MemStorage storage;
  storage.FailNextWrites(100);  // Outlasts any bounded retry.
  DurableOptions options;
  options.append_retry.max_attempts = 3;
  options.append_retry.initial_backoff_ms = 0;
  Coordinator<SpaceSaving> coordinator(kEpoch, MatrixPolicy(),
                                       MergeTopology::kLeftDeepChain);
  SimulatedTransport transport{FaultPlan()};
  for (size_t shard = 0; shard < kShards; ++shard) {
    SpaceSaving summary = SpaceSaving::ForEpsilon(0.02);
    for (uint64_t item : shards[shard]) summary.Update(item);
    transport.Submit(shard, MakeReportFrame(summary, shard, kEpoch));
  }
  const auto result =
      coordinator.RunDurable(transport, kShards, &storage, options);
  EXPECT_TRUE(result.crashed);
  EXPECT_EQ(coordinator.wal_append_retries(), 2u);
  EXPECT_EQ(storage.writes_attempted(), 0u);  // Nothing ever landed.
}

// A crash that predates the first durable write leaves nothing behind;
// recovery must report that and the resumed run is simply a fresh one.
TEST(RecoveryTest, EmptyStorageRecoversToFreshEpoch) {
  MemStorage storage;
  Coordinator<SpaceSaving> coordinator(kEpoch, MatrixPolicy(),
                                       MergeTopology::kLeftDeepChain);
  const RecoveryInfo info = coordinator.Recover(&storage);
  EXPECT_FALSE(info.recovered);
  EXPECT_TRUE(info.pending_shards.empty());

  SpaceSaving summary = SpaceSaving::ForEpsilon(0.02);
  summary.Update(1);
  SimulatedTransport transport{FaultPlan()};
  transport.Submit(0, MakeReportFrame(summary, 0, kEpoch));
  const auto result = coordinator.ResumeDurable(transport, 1);
  ASSERT_FALSE(result.crashed);
  EXPECT_EQ(result.shards_received, 1u);
  ASSERT_TRUE(result.summary.has_value());
  EXPECT_EQ(result.summary->n(), 1u);
}

// checkpoint_every = 0 disables snapshots entirely: recovery replays
// the whole log and must land in the identical state.
TEST(RecoveryTest, LogOnlyModeRecoversWithoutSnapshots) {
  const auto shards = MatrixShards();
  DurableOptions options;
  options.checkpoint_every = 0;

  const auto make_transport = [&shards]() {
    SimulatedTransport transport{FaultPlan()};
    for (size_t shard = 0; shard < kShards; ++shard) {
      SpaceSaving summary = SpaceSaving::ForEpsilon(0.02);
      for (uint64_t item : shards[shard]) summary.Update(item);
      transport.Submit(shard, MakeReportFrame(summary, shard, kEpoch));
    }
    return transport;
  };

  MemStorage reference_storage;
  Coordinator<SpaceSaving> reference(kEpoch, MatrixPolicy(),
                                     MergeTopology::kLeftDeepChain);
  SimulatedTransport reference_transport = make_transport();
  const auto reference_result = reference.RunDurable(
      reference_transport, kShards, &reference_storage, options);
  ASSERT_FALSE(reference_result.crashed);
  EXPECT_EQ(reference_storage.stats().rewrites, 0u);  // No snapshots.

  // Crash at the very last write; everything must come back from the log.
  CrashPoint point;
  point.mode = CrashMode::kAfterWrite;
  point.write_index = reference_storage.writes_attempted() - 1;
  MemStorage storage(point);
  Coordinator<SpaceSaving> first(kEpoch, MatrixPolicy(),
                                 MergeTopology::kLeftDeepChain);
  SimulatedTransport crash_transport = make_transport();
  ASSERT_TRUE(
      first.RunDurable(crash_transport, kShards, &storage, options).crashed);

  storage.Restart();
  Coordinator<SpaceSaving> second(kEpoch, MatrixPolicy(),
                                  MergeTopology::kLeftDeepChain);
  const RecoveryInfo info = second.Recover(&storage, options);
  EXPECT_TRUE(info.recovered);
  EXPECT_FALSE(info.used_snapshot);
  EXPECT_EQ(info.n_shards, kShards);
  SimulatedTransport resume_transport = make_transport();
  const auto result = second.ResumeDurable(resume_transport, kShards);
  ASSERT_TRUE(result.summary.has_value());
  EXPECT_EQ(EncodedBytes(*result.summary),
            EncodedBytes(*reference_result.summary));
}

// A record appended twice (an ack lost in a crash, then a defensive
// re-append by some future writer) must merge exactly once on replay.
TEST(RecoveryTest, ReplayDeduplicatesDoubleDurableRecords) {
  MemStorage storage;
  WalWriter wal(&storage, "wal");

  SpaceSaving summary = SpaceSaving::ForEpsilon(0.02);
  summary.Update(1);
  summary.Update(1);
  summary.Update(2);

  WalRecord begin;
  begin.type = WalRecordType::kEpochBegin;
  begin.shard_id = 1;  // n_shards.
  begin.epoch = kEpoch;
  ASSERT_TRUE(wal.Append(begin));
  WalRecord report;
  report.type = WalRecordType::kReport;
  report.shard_id = 0;
  report.epoch = kEpoch;
  report.payload = EncodedBytes(summary);
  ASSERT_TRUE(wal.Append(report));
  ASSERT_TRUE(wal.Append(report));  // The duplicate.

  Coordinator<SpaceSaving> coordinator(kEpoch, MatrixPolicy(),
                                       MergeTopology::kLeftDeepChain);
  const RecoveryInfo info = coordinator.Recover(&storage);
  EXPECT_TRUE(info.recovered);
  EXPECT_EQ(info.duplicates_ignored, 1u);
  EXPECT_TRUE(info.pending_shards.empty());

  SimulatedTransport transport{FaultPlan()};
  const auto result = coordinator.ResumeDurable(transport, 1);
  ASSERT_TRUE(result.summary.has_value());
  EXPECT_EQ(result.summary->n(), 3u);  // Not 6: merged exactly once.
}

// Records from another epoch sharing the storage must not leak into
// this epoch's recovery (the dedup key is (shard, epoch), not shard).
TEST(RecoveryTest, ReplayIgnoresOtherEpochs) {
  MemStorage storage;
  WalWriter wal(&storage, "wal");

  SpaceSaving stale = SpaceSaving::ForEpsilon(0.02);
  stale.Update(9);
  WalRecord old_begin;
  old_begin.type = WalRecordType::kEpochBegin;
  old_begin.shard_id = 1;
  old_begin.epoch = kEpoch - 1;
  ASSERT_TRUE(wal.Append(old_begin));
  WalRecord old_report;
  old_report.type = WalRecordType::kReport;
  old_report.shard_id = 0;
  old_report.epoch = kEpoch - 1;
  old_report.payload = EncodedBytes(stale);
  ASSERT_TRUE(wal.Append(old_report));

  Coordinator<SpaceSaving> coordinator(kEpoch, MatrixPolicy(),
                                       MergeTopology::kLeftDeepChain);
  const RecoveryInfo info = coordinator.Recover(&storage);
  EXPECT_FALSE(info.recovered);
  EXPECT_EQ(info.wal_records_applied, 0u);
}

// Stale snapshot + newer log: the snapshot covers a prefix and the log
// tail past it still replays — state must equal log-only recovery.
TEST(RecoveryTest, StaleSnapshotReplaysNewerLogTail) {
  const auto shards = MatrixShards();
  DurableOptions options;
  options.checkpoint_every = 4;  // One snapshot at 4 received reports.

  const auto make_transport = [&shards]() {
    SimulatedTransport transport{FaultPlan()};
    for (size_t shard = 0; shard < kShards; ++shard) {
      SpaceSaving summary = SpaceSaving::ForEpsilon(0.02);
      for (uint64_t item : shards[shard]) summary.Update(item);
      transport.Submit(shard, MakeReportFrame(summary, shard, kEpoch));
    }
    return transport;
  };

  MemStorage storage;
  Coordinator<SpaceSaving> first(kEpoch, MatrixPolicy(),
                                 MergeTopology::kLeftDeepChain);
  SimulatedTransport transport = make_transport();
  const auto uninterrupted =
      first.RunDurable(transport, kShards, &storage, options);
  ASSERT_FALSE(uninterrupted.crashed);
  ASSERT_EQ(storage.stats().rewrites, 1u);  // Snapshot at 4 of 6 reports.

  // Recover with the full log + the mid-epoch snapshot: the snapshot is
  // stale relative to the log and the tail replay must close the gap.
  Coordinator<SpaceSaving> second(kEpoch, MatrixPolicy(),
                                  MergeTopology::kLeftDeepChain);
  const RecoveryInfo info = second.Recover(&storage, options);
  EXPECT_TRUE(info.recovered);
  EXPECT_TRUE(info.used_snapshot);
  EXPECT_GT(info.wal_records_applied, 0u);
  EXPECT_TRUE(info.pending_shards.empty());

  SimulatedTransport resume_transport = make_transport();
  const auto result = second.ResumeDurable(resume_transport, kShards);
  ASSERT_TRUE(result.summary.has_value());
  EXPECT_EQ(EncodedBytes(*result.summary),
            EncodedBytes(*uninterrupted.summary));
}

// Recovery under a faulty network too: the refetched shards go through
// the usual retry/dedup machinery and the mass still adds up exactly.
TEST(RecoveryTest, ResumeSurvivesTransientTransportFaults) {
  const auto shards = MatrixShards();
  uint64_t total_mass = 0;
  for (const auto& shard : shards) total_mass += shard.size();

  FaultSpec spec;
  spec.drop_probability = 0.3;
  spec.bit_flip_probability = 0.2;
  spec.duplicate_probability = 0.2;
  const auto make_transport = [&shards, &spec](uint64_t seed) {
    SimulatedTransport transport{FaultPlan(spec, seed)};
    for (size_t shard = 0; shard < kShards; ++shard) {
      SpaceSaving summary = SpaceSaving::ForEpsilon(0.02);
      for (uint64_t item : shards[shard]) summary.Update(item);
      transport.Submit(shard, MakeReportFrame(summary, shard, kEpoch));
    }
    return transport;
  };
  BackoffPolicy policy = MatrixPolicy();
  policy.max_attempts = 8;  // Enough retries to beat 50% fault odds.

  CrashPoint point;
  point.mode = CrashMode::kTornWrite;
  point.write_index = 4;
  point.mutation_seed = 123;
  MemStorage storage(point);
  Coordinator<SpaceSaving> first(kEpoch, policy,
                                 MergeTopology::kLeftDeepChain);
  SimulatedTransport crash_transport = make_transport(31);
  ASSERT_TRUE(first.RunDurable(crash_transport, kShards, &storage).crashed);

  storage.Restart();
  Coordinator<SpaceSaving> second(kEpoch, policy,
                                  MergeTopology::kLeftDeepChain);
  const RecoveryInfo info = second.Recover(&storage);
  EXPECT_TRUE(info.recovered);
  SimulatedTransport resume_transport = make_transport(32);
  const auto result = second.ResumeDurable(resume_transport, kShards);
  ASSERT_FALSE(result.crashed);
  EXPECT_EQ(result.shards_received, kShards);
  ASSERT_TRUE(result.summary.has_value());
  // Dedup across replayed and refetched shards: exact mass, no double
  // counting even with duplicated frames on the wire.
  EXPECT_EQ(result.summary->n(), total_mass);
}

}  // namespace
}  // namespace mergeable
