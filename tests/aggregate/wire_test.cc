// Report frame tests: round trip, checksum rejection of every
// single-bit corruption, and framing-level malformations.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/wire.h"

namespace mergeable {
namespace {

WireReport TestReport() {
  WireReport report;
  report.shard_id = 42;
  report.epoch = 7;
  report.payload = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03,
                    0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  return report;
}

TEST(WireTest, FrameRoundTrip) {
  const WireReport report = TestReport();
  const auto frame = EncodeReportFrame(report);
  const auto decoded = DecodeReportFrame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->shard_id, report.shard_id);
  EXPECT_EQ(decoded->epoch, report.epoch);
  EXPECT_EQ(decoded->payload, report.payload);
}

TEST(WireTest, EmptyPayloadRoundTrip) {
  WireReport report;
  report.shard_id = 1;
  report.epoch = 2;
  const auto decoded = DecodeReportFrame(EncodeReportFrame(report));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(WireTest, EveryBitFlipIsRejected) {
  const auto frame = EncodeReportFrame(TestReport());
  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::vector<uint8_t> corrupted = frame;
    corrupted[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(DecodeReportFrame(corrupted).has_value())
        << "bit " << bit << " flip was accepted";
  }
}

TEST(WireTest, EveryTruncationIsRejected) {
  const auto frame = EncodeReportFrame(TestReport());
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::vector<uint8_t> truncated(frame.begin(),
                                   frame.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeReportFrame(truncated).has_value())
        << "truncation at " << cut << " was accepted";
  }
}

TEST(WireTest, TrailingBytesAreRejected) {
  auto frame = EncodeReportFrame(TestReport());
  frame.push_back(0);
  EXPECT_FALSE(DecodeReportFrame(frame).has_value());
}

TEST(WireTest, EmptyInputIsRejected) {
  EXPECT_FALSE(DecodeReportFrame({}).has_value());
}

TEST(WireTest, ChecksumCoversHeaderFields) {
  // Two frames differing only in shard id / epoch must have different
  // checksums (the dedup key is integrity-protected).
  WireReport a = TestReport();
  WireReport b = TestReport();
  b.shard_id = 43;
  WireReport c = TestReport();
  c.epoch = 8;
  EXPECT_NE(FrameChecksum(a.shard_id, a.epoch, a.payload),
            FrameChecksum(b.shard_id, b.epoch, b.payload));
  EXPECT_NE(FrameChecksum(a.shard_id, a.epoch, a.payload),
            FrameChecksum(c.shard_id, c.epoch, c.payload));
}

TEST(WireTest, ChecksumDependsOnPayloadTail) {
  // The tail bytes (beyond the last full 8-byte word) must be covered.
  WireReport a = TestReport();
  WireReport b = TestReport();
  b.payload.back() ^= 1;
  EXPECT_NE(FrameChecksum(a.shard_id, a.epoch, a.payload),
            FrameChecksum(b.shard_id, b.epoch, b.payload));
}


// ---- Server control / query / answer frames ----

WireControl TestControl() {
  WireControl control;
  control.code = ControlCode::kRetryAfter;
  control.shard_id = 9;
  control.epoch = 3;
  control.retry_after_ms = 25;
  return control;
}

WireQuery TestQuery() {
  WireQuery query;
  query.stream = 5;
  query.t1 = 100;
  query.t2 = 163;
  query.deadline_ms = 40;
  return query;
}

WireAnswer TestAnswer() {
  WireAnswer answer;
  answer.stream = 5;
  answer.t1 = 100;
  answer.t2 = 163;
  answer.status = AnswerStatus::kOk;
  answer.partial = true;
  answer.epochs_covered = 32;
  answer.epsilon = 0.01;
  answer.epochs = 64;
  answer.degraded_epochs = 32;
  answer.coverage = 0.5;
  answer.n_received = 4096;
  answer.lost_mass = 512;
  answer.lost_mass_estimated = true;
  answer.received_bound = 40.96;
  answer.full_stream_bound = 552.96;
  answer.payload = {0x01, 0x02, 0x03};
  return answer;
}

TEST(WireTest, ControlFrameRoundTrip) {
  const auto decoded = DecodeControlFrame(EncodeControlFrame(TestControl()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->code, ControlCode::kRetryAfter);
  EXPECT_EQ(decoded->shard_id, 9u);
  EXPECT_EQ(decoded->epoch, 3u);
  EXPECT_EQ(decoded->retry_after_ms, 25u);
}

TEST(WireTest, ControlFrameRejectsUnknownCode) {
  // Re-encode with an out-of-range code by patching the body byte: the
  // code is the first body field, 8 bytes into the frame.
  auto frame = EncodeControlFrame(TestControl());
  frame[8] = 0x77;
  EXPECT_FALSE(DecodeControlFrame(frame).has_value());
}

TEST(WireTest, QueryFrameRoundTrip) {
  const auto decoded = DecodeQueryFrame(EncodeQueryFrame(TestQuery()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->stream, 5u);
  EXPECT_EQ(decoded->t1, 100u);
  EXPECT_EQ(decoded->t2, 163u);
  EXPECT_EQ(decoded->deadline_ms, 40u);
}

TEST(WireTest, QueryFrameRejectsInvertedRange) {
  WireQuery query = TestQuery();
  query.t1 = 200;  // t1 > t2: structurally invalid, refused at decode.
  EXPECT_FALSE(DecodeQueryFrame(EncodeQueryFrame(query)).has_value());
}

TEST(WireTest, QueryFrameCarriesWindow) {
  WireQuery query = TestQuery();
  query.window = 3600;
  const auto decoded = DecodeQueryFrame(EncodeQueryFrame(query));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->window, 3600u);
  EXPECT_EQ(decoded->deadline_ms, 40u);
}

TEST(WireTest, WindowQueryIgnoresRangeValidation) {
  // A window query derives its range server-side; a garbage t1/t2 pair
  // must not get it refused at decode.
  WireQuery query;
  query.stream = 5;
  query.t1 = 200;
  query.t2 = 100;
  query.window = 16;
  const auto decoded = DecodeQueryFrame(EncodeQueryFrame(query));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->window, 16u);
}

TEST(WireTest, QueryFrameRejectsLegacyShortBody) {
  // The pre-window 32-byte body must not decode: a peer that drops the
  // window field silently would default it, changing query semantics.
  std::vector<uint8_t> frame = EncodeQueryFrame(TestQuery());
  // Rebuild the frame with the last body field (window) removed is not
  // expressible through the codec, so corrupt structurally instead:
  // truncating any suffix must be refused (checksum and length both
  // break).
  for (size_t cut = 1; cut <= 9; ++cut) {
    std::vector<uint8_t> shorter(frame.begin(), frame.end() - cut);
    EXPECT_FALSE(DecodeQueryFrame(shorter).has_value()) << cut;
  }
}

TEST(WireTest, AnswerFrameRoundTrip) {
  const WireAnswer answer = TestAnswer();
  const auto decoded = DecodeAnswerFrame(EncodeAnswerFrame(answer));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->stream, answer.stream);
  EXPECT_EQ(decoded->status, AnswerStatus::kOk);
  EXPECT_TRUE(decoded->partial);
  EXPECT_EQ(decoded->epochs_covered, 32u);
  EXPECT_DOUBLE_EQ(decoded->epsilon, 0.01);
  EXPECT_EQ(decoded->epochs, 64u);
  EXPECT_EQ(decoded->degraded_epochs, 32u);
  EXPECT_DOUBLE_EQ(decoded->coverage, 0.5);
  EXPECT_EQ(decoded->n_received, 4096u);
  EXPECT_EQ(decoded->lost_mass, 512u);
  EXPECT_TRUE(decoded->lost_mass_estimated);
  EXPECT_DOUBLE_EQ(decoded->received_bound, 40.96);
  EXPECT_DOUBLE_EQ(decoded->full_stream_bound, 552.96);
  EXPECT_EQ(decoded->payload, answer.payload);
}

TEST(WireTest, NewFramesRejectEveryBitFlip) {
  struct Case {
    std::vector<uint8_t> frame;
    bool (*rejects)(const std::vector<uint8_t>&);
  };
  const Case cases[] = {
      {EncodeControlFrame(TestControl()),
       [](const std::vector<uint8_t>& f) {
         return !DecodeControlFrame(f).has_value();
       }},
      {EncodeQueryFrame(TestQuery()),
       [](const std::vector<uint8_t>& f) {
         return !DecodeQueryFrame(f).has_value();
       }},
      {EncodeAnswerFrame(TestAnswer()),
       [](const std::vector<uint8_t>& f) {
         return !DecodeAnswerFrame(f).has_value();
       }},
  };
  for (const Case& c : cases) {
    for (size_t bit = 0; bit < c.frame.size() * 8; ++bit) {
      std::vector<uint8_t> corrupted = c.frame;
      corrupted[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      EXPECT_TRUE(c.rejects(corrupted)) << "bit " << bit << " flip accepted";
    }
  }
}

TEST(WireTest, PeekFrameKindRoutesEveryMagic) {
  EXPECT_EQ(PeekFrameKind(EncodeReportFrame(TestReport())),
            FrameKind::kReport);
  EXPECT_EQ(PeekFrameKind(EncodeControlFrame(TestControl())),
            FrameKind::kControl);
  EXPECT_EQ(PeekFrameKind(EncodeQueryFrame(TestQuery())),
            FrameKind::kQuery);
  EXPECT_EQ(PeekFrameKind(EncodeAnswerFrame(TestAnswer())),
            FrameKind::kAnswer);
  EXPECT_EQ(PeekFrameKind({}), FrameKind::kUnknown);
  EXPECT_EQ(PeekFrameKind({0x01, 0x02, 0x03, 0x04}), FrameKind::kUnknown);
}

TEST(WireTest, FrameRegistryCoversEveryFrameType) {
  const auto& registry = FrameRegistry();
  ASSERT_EQ(registry.size(), 8u);
  for (const auto& info : registry) {
    SCOPED_TRACE(info.name);
    const auto corpus = info.corpus(/*seed=*/7);
    ASSERT_FALSE(corpus.empty());
    for (const auto& frame : corpus) {
      // Every corpus entry is a pristine encoding: the probe must
      // accept it (and internally asserts the re-encode fixed point).
      EXPECT_TRUE(info.probe(frame));
    }
  }
}

}  // namespace
}  // namespace mergeable
