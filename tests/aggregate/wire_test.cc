// Report frame tests: round trip, checksum rejection of every
// single-bit corruption, and framing-level malformations.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/wire.h"

namespace mergeable {
namespace {

WireReport TestReport() {
  WireReport report;
  report.shard_id = 42;
  report.epoch = 7;
  report.payload = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03,
                    0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  return report;
}

TEST(WireTest, FrameRoundTrip) {
  const WireReport report = TestReport();
  const auto frame = EncodeReportFrame(report);
  const auto decoded = DecodeReportFrame(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->shard_id, report.shard_id);
  EXPECT_EQ(decoded->epoch, report.epoch);
  EXPECT_EQ(decoded->payload, report.payload);
}

TEST(WireTest, EmptyPayloadRoundTrip) {
  WireReport report;
  report.shard_id = 1;
  report.epoch = 2;
  const auto decoded = DecodeReportFrame(EncodeReportFrame(report));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(WireTest, EveryBitFlipIsRejected) {
  const auto frame = EncodeReportFrame(TestReport());
  for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
    std::vector<uint8_t> corrupted = frame;
    corrupted[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(DecodeReportFrame(corrupted).has_value())
        << "bit " << bit << " flip was accepted";
  }
}

TEST(WireTest, EveryTruncationIsRejected) {
  const auto frame = EncodeReportFrame(TestReport());
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    std::vector<uint8_t> truncated(frame.begin(),
                                   frame.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeReportFrame(truncated).has_value())
        << "truncation at " << cut << " was accepted";
  }
}

TEST(WireTest, TrailingBytesAreRejected) {
  auto frame = EncodeReportFrame(TestReport());
  frame.push_back(0);
  EXPECT_FALSE(DecodeReportFrame(frame).has_value());
}

TEST(WireTest, EmptyInputIsRejected) {
  EXPECT_FALSE(DecodeReportFrame({}).has_value());
}

TEST(WireTest, ChecksumCoversHeaderFields) {
  // Two frames differing only in shard id / epoch must have different
  // checksums (the dedup key is integrity-protected).
  WireReport a = TestReport();
  WireReport b = TestReport();
  b.shard_id = 43;
  WireReport c = TestReport();
  c.epoch = 8;
  EXPECT_NE(FrameChecksum(a.shard_id, a.epoch, a.payload),
            FrameChecksum(b.shard_id, b.epoch, b.payload));
  EXPECT_NE(FrameChecksum(a.shard_id, a.epoch, a.payload),
            FrameChecksum(c.shard_id, c.epoch, c.payload));
}

TEST(WireTest, ChecksumDependsOnPayloadTail) {
  // The tail bytes (beyond the last full 8-byte word) must be covered.
  WireReport a = TestReport();
  WireReport b = TestReport();
  b.payload.back() ^= 1;
  EXPECT_NE(FrameChecksum(a.shard_id, a.epoch, a.payload),
            FrameChecksum(b.shard_id, b.epoch, b.payload));
}

}  // namespace
}  // namespace mergeable
