// FaultPlan / SimulatedTransport tests: decisions are deterministic,
// rates are statistically honored, corruption mutators do what they say,
// and the transport plays drops, duplicates, stragglers and corruption
// the way the coordinator expects.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/fault.h"

namespace mergeable {
namespace {

TEST(FaultPlanTest, DefaultPlanIsHealthy) {
  FaultPlan plan;
  for (uint64_t shard = 0; shard < 64; ++shard) {
    const FaultDecision decision = plan.Decide(shard, 0);
    EXPECT_FALSE(decision.drop || decision.duplicate || decision.truncate ||
                 decision.bit_flip || decision.delayed);
  }
}

TEST(FaultPlanTest, DecisionsAreDeterministic) {
  FaultSpec spec;
  spec.drop_probability = 0.3;
  spec.duplicate_probability = 0.3;
  spec.truncate_probability = 0.3;
  spec.bit_flip_probability = 0.3;
  spec.delay_probability = 0.3;
  const FaultPlan a(spec, 99);
  const FaultPlan b(spec, 99);
  for (uint64_t shard = 0; shard < 32; ++shard) {
    for (uint32_t attempt = 0; attempt < 4; ++attempt) {
      const FaultDecision da = a.Decide(shard, attempt);
      const FaultDecision db = b.Decide(shard, attempt);
      EXPECT_EQ(da.drop, db.drop);
      EXPECT_EQ(da.duplicate, db.duplicate);
      EXPECT_EQ(da.truncate, db.truncate);
      EXPECT_EQ(da.bit_flip, db.bit_flip);
      EXPECT_EQ(da.delayed, db.delayed);
      EXPECT_EQ(da.mutation_seed, db.mutation_seed);
    }
  }
}

TEST(FaultPlanTest, SeedsChangeDecisions) {
  FaultSpec spec;
  spec.drop_probability = 0.5;
  const FaultPlan a(spec, 1);
  const FaultPlan b(spec, 2);
  int differing = 0;
  for (uint64_t shard = 0; shard < 256; ++shard) {
    if (a.Decide(shard, 0).drop != b.Decide(shard, 0).drop) ++differing;
  }
  EXPECT_GT(differing, 32);  // ~50% expected.
}

TEST(FaultPlanTest, RatesAreHonored) {
  FaultSpec spec;
  spec.drop_probability = 0.2;
  const FaultPlan plan(spec, 7);
  int drops = 0;
  const int trials = 10000;
  for (int shard = 0; shard < trials; ++shard) {
    if (plan.Decide(static_cast<uint64_t>(shard), 0).drop) ++drops;
  }
  // 3-sigma window around 2000 is about +-120.
  EXPECT_NEAR(drops, trials * 0.2, 150);
}

TEST(FaultPlanTest, KilledShardAlwaysDrops) {
  FaultPlan plan;  // Zero fault rates otherwise.
  plan.KillShard(5);
  EXPECT_TRUE(plan.IsDead(5));
  for (uint32_t attempt = 0; attempt < 8; ++attempt) {
    EXPECT_TRUE(plan.Decide(5, attempt).drop);
    EXPECT_FALSE(plan.Decide(4, attempt).drop);
  }
}

TEST(FaultMutatorTest, TruncateShortensDeterministically) {
  const std::vector<uint8_t> original(100, 0xab);
  std::vector<uint8_t> a = original;
  std::vector<uint8_t> b = original;
  ApplyTruncate(a, 123);
  ApplyTruncate(b, 123);
  EXPECT_LT(a.size(), original.size());
  EXPECT_EQ(a, b);
}

TEST(FaultMutatorTest, BitFlipChangesExactlyOneBit) {
  const std::vector<uint8_t> original(64, 0);
  std::vector<uint8_t> flipped = original;
  ApplyBitFlip(flipped, 77);
  int bits_changed = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    uint8_t diff = static_cast<uint8_t>(original[i] ^ flipped[i]);
    while (diff != 0) {
      bits_changed += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bits_changed, 1);
}

TEST(SimulatedTransportTest, HealthyDeliveryReturnsTheFrame) {
  SimulatedTransport transport{FaultPlan()};
  transport.Submit(0, {1, 2, 3});
  const DeliveryAttempt attempt = transport.Deliver(0, 0);
  ASSERT_EQ(attempt.frames.size(), 1u);
  EXPECT_EQ(attempt.frames[0], (std::vector<uint8_t>{1, 2, 3}));
}

TEST(SimulatedTransportTest, UnknownShardDeliversNothing) {
  SimulatedTransport transport{FaultPlan()};
  transport.Submit(0, {1});
  EXPECT_TRUE(transport.Deliver(99, 0).frames.empty());
}

TEST(SimulatedTransportTest, DeadShardNeverDelivers) {
  FaultPlan plan;
  plan.KillShard(3);
  SimulatedTransport transport{plan};
  transport.Submit(3, {1, 2, 3});
  for (uint32_t attempt = 0; attempt < 6; ++attempt) {
    EXPECT_TRUE(transport.Deliver(3, attempt).frames.empty());
  }
  EXPECT_EQ(transport.drops_injected(), 6u);
}

TEST(SimulatedTransportTest, DuplicateDeliversTwoFrames) {
  FaultSpec spec;
  spec.duplicate_probability = 1.0;
  SimulatedTransport transport{FaultPlan(spec, 1)};
  transport.Submit(0, {9, 9, 9});
  const DeliveryAttempt attempt = transport.Deliver(0, 0);
  ASSERT_EQ(attempt.frames.size(), 2u);
  EXPECT_EQ(attempt.frames[0], attempt.frames[1]);
  EXPECT_EQ(transport.duplicates_injected(), 1u);
}

TEST(SimulatedTransportTest, DelayedFrameArrivesOnNextAttempt) {
  FaultSpec spec;
  spec.delay_probability = 1.0;
  spec.delay_ms = 400;
  SimulatedTransport transport{FaultPlan(spec, 2)};
  transport.Submit(0, {5, 5});
  const DeliveryAttempt first = transport.Deliver(0, 0);
  EXPECT_TRUE(first.frames.empty());       // Straggling...
  EXPECT_EQ(first.latency_ms, 400u);
  const DeliveryAttempt second = transport.Deliver(0, 1);
  // The attempt-0 straggler arrives now (attempt 1's own frame is also
  // delayed, so exactly one frame shows up).
  ASSERT_EQ(second.frames.size(), 1u);
  EXPECT_EQ(second.frames[0], (std::vector<uint8_t>{5, 5}));
}

TEST(SimulatedTransportTest, CorruptionChangesTheFrame) {
  FaultSpec spec;
  spec.bit_flip_probability = 1.0;
  SimulatedTransport transport{FaultPlan(spec, 3)};
  const std::vector<uint8_t> pristine(32, 0x55);
  transport.Submit(0, pristine);
  const DeliveryAttempt attempt = transport.Deliver(0, 0);
  ASSERT_EQ(attempt.frames.size(), 1u);
  EXPECT_NE(attempt.frames[0], pristine);
  EXPECT_GE(transport.corruptions_injected(), 1u);
}

}  // namespace
}  // namespace mergeable
