// Coordinator tests: retry/backoff, dedup, malformed rejection, and the
// headline robustness property — with k of m shards permanently lost the
// coordinator reports coverage (m-k)/m and the merged summary's error on
// the received data stays within the epsilon * n_received bound, under
// all three merge topologies.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/coordinator.h"
#include "mergeable/aggregate/fault.h"
#include "mergeable/core/merge_driver.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/quantiles/mergeable_quantiles.h"
#include "mergeable/stream/generators.h"
#include "mergeable/stream/partition.h"
#include "mergeable/util/bytes.h"

namespace mergeable {
namespace {

constexpr uint64_t kEpoch = 1;
constexpr size_t kShards = 12;
constexpr double kHhEpsilon = 0.02;
constexpr double kQuantileEpsilon = 0.05;

std::vector<std::vector<uint64_t>> TestShards() {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 1 << 16;
  spec.universe = 4096;
  spec.alpha = 1.1;
  const auto stream = GenerateStream(spec, 7);
  return PartitionStream(stream, kShards, PartitionPolicy::kRandom, 3);
}

BackoffPolicy TestPolicy() {
  BackoffPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 10;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 100;
  policy.attempt_timeout_ms = 50;
  policy.deadline_ms = 1000;
  return policy;
}

void SubmitSpaceSavingReports(
    SimulatedTransport& transport,
    const std::vector<std::vector<uint64_t>>& shards) {
  for (size_t shard = 0; shard < shards.size(); ++shard) {
    SpaceSaving summary = SpaceSaving::ForEpsilon(kHhEpsilon);
    for (uint64_t item : shards[shard]) summary.Update(item);
    transport.Submit(shard, MakeReportFrame(summary, shard, kEpoch));
  }
}

TEST(BackoffPolicyTest, CappedExponentialSchedule) {
  BackoffPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.multiplier = 3.0;
  policy.max_backoff_ms = 50;
  EXPECT_EQ(policy.BackoffBefore(0), 0u);
  EXPECT_EQ(policy.BackoffBefore(1), 10u);
  EXPECT_EQ(policy.BackoffBefore(2), 30u);
  EXPECT_EQ(policy.BackoffBefore(3), 50u);  // 90 capped to 50.
  EXPECT_EQ(policy.BackoffBefore(4), 50u);
}

TEST(BackoffPolicyTest, AttemptZeroAndZeroInitialAreFree) {
  BackoffPolicy policy;
  policy.initial_backoff_ms = 0;
  policy.multiplier = 2.0;
  EXPECT_EQ(policy.BackoffBefore(0), 0u);
  EXPECT_EQ(policy.BackoffBefore(7), 0u);
}

TEST(BackoffPolicyTest, HugeAttemptSaturatesAtCapWithoutOverflow) {
  BackoffPolicy policy;
  policy.initial_backoff_ms = 1000;
  policy.multiplier = 10.0;
  policy.max_backoff_ms = 30000;
  // 1000 * 10^4294967294 wraps many times over in integer arithmetic;
  // the schedule must clamp to the cap instead.
  EXPECT_EQ(policy.BackoffBefore(100), 30000u);
  EXPECT_EQ(policy.BackoffBefore(UINT32_MAX), 30000u);
}

TEST(BackoffPolicyTest, FractionalMultiplierDecaysToZero) {
  BackoffPolicy policy;
  policy.initial_backoff_ms = 100;
  policy.multiplier = 0.5;
  policy.max_backoff_ms = 1000;
  EXPECT_EQ(policy.BackoffBefore(1), 100u);
  EXPECT_EQ(policy.BackoffBefore(2), 50u);
  EXPECT_EQ(policy.BackoffBefore(3), 25u);
}

TEST(BackoffPolicyDeathTest, NonPositiveMultiplierIsRejected) {
  BackoffPolicy policy;
  policy.initial_backoff_ms = 10;
  policy.multiplier = 0.0;
  EXPECT_DEATH(policy.BackoffBefore(1), "multiplier must be positive");
  policy.multiplier = -2.0;
  EXPECT_DEATH(policy.BackoffBefore(1), "multiplier must be positive");
}

TEST(CoordinatorTest, DeadlineClampsBackoffSleep) {
  // A dead shard with large backoffs: the coordinator must not sleep
  // past the deadline, so total elapsed stays near deadline_ms even
  // though the next scheduled backoff alone would exceed it.
  FaultPlan plan;
  plan.KillShard(0);
  SimulatedTransport transport{plan};
  BackoffPolicy policy = TestPolicy();
  policy.max_attempts = 50;
  policy.initial_backoff_ms = 90;
  policy.multiplier = 4.0;
  policy.max_backoff_ms = 5000;
  policy.deadline_ms = 200;
  Coordinator<SpaceSaving> coordinator(kEpoch, policy,
                                       MergeTopology::kBalancedTree);
  const auto result = coordinator.Run(transport, 1);
  EXPECT_EQ(result.shards_received, 0u);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_LE(result.outcomes[0].elapsed_ms, policy.deadline_ms + 100);
}

TEST(CoordinatorTest, HealthyNetworkFullCoverage) {
  const auto shards = TestShards();
  SimulatedTransport transport{FaultPlan()};
  SubmitSpaceSavingReports(transport, shards);
  Coordinator<SpaceSaving> coordinator(kEpoch, TestPolicy(),
                                       MergeTopology::kBalancedTree);
  const auto result = coordinator.Run(transport, kShards);
  EXPECT_EQ(result.shards_received, kShards);
  EXPECT_DOUBLE_EQ(result.Coverage(), 1.0);
  EXPECT_FALSE(result.Degraded());
  EXPECT_EQ(result.retries, 0u);
  EXPECT_EQ(result.malformed_rejected, 0u);
  ASSERT_TRUE(result.summary.has_value());
  uint64_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  EXPECT_EQ(result.summary->n(), total);
}

TEST(CoordinatorTest, TransientDropsAreRecoveredByRetry) {
  const auto shards = TestShards();
  FaultSpec spec;
  spec.drop_probability = 0.4;
  SimulatedTransport transport{FaultPlan(spec, 11)};
  SubmitSpaceSavingReports(transport, shards);
  Coordinator<SpaceSaving> coordinator(kEpoch, TestPolicy(),
                                       MergeTopology::kLeftDeepChain);
  const auto result = coordinator.Run(transport, kShards);
  // With 5 attempts at 40% drop, per-shard loss probability is ~1%; the
  // fixed seed makes the outcome deterministic and fully recovered.
  EXPECT_EQ(result.shards_received, kShards);
  EXPECT_GT(result.retries, 0u);
}

TEST(CoordinatorTest, CorruptedFramesAreRejectedThenRetried) {
  const auto shards = TestShards();
  FaultSpec spec;
  spec.bit_flip_probability = 0.3;
  spec.truncate_probability = 0.1;
  SimulatedTransport transport{FaultPlan(spec, 21)};
  SubmitSpaceSavingReports(transport, shards);
  // ~37% of attempts corrupt; 8 attempts make per-shard loss ~0.04%, and
  // the fixed seed pins the outcome: every shard recovers.
  BackoffPolicy policy = TestPolicy();
  policy.max_attempts = 8;
  Coordinator<SpaceSaving> coordinator(kEpoch, policy,
                                       MergeTopology::kBalancedTree);
  const auto result = coordinator.Run(transport, kShards);
  EXPECT_GT(result.malformed_rejected, 0u);
  // Corruption is per-attempt, so retries recover every shard here.
  EXPECT_EQ(result.shards_received, kShards);
  ASSERT_TRUE(result.summary.has_value());
  // No corrupted payload may ever be merged: n must match exactly.
  uint64_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  EXPECT_EQ(result.summary->n(), total);
}

TEST(CoordinatorTest, DuplicatesAreRejectedByShardAndEpoch) {
  const auto shards = TestShards();
  FaultSpec spec;
  spec.duplicate_probability = 1.0;
  SimulatedTransport transport{FaultPlan(spec, 31)};
  SubmitSpaceSavingReports(transport, shards);
  Coordinator<SpaceSaving> coordinator(kEpoch, TestPolicy(),
                                       MergeTopology::kBalancedTree);
  const auto result = coordinator.Run(transport, kShards);
  EXPECT_EQ(result.shards_received, kShards);
  EXPECT_EQ(result.duplicates_rejected, kShards);
  uint64_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  // Double-counting a shard would inflate n; dedup must prevent that.
  EXPECT_EQ(result.summary->n(), total);
}

TEST(CoordinatorTest, StragglersDoNotDoubleCount) {
  const auto shards = TestShards();
  FaultSpec spec;
  spec.delay_probability = 0.5;
  spec.delay_ms = 400;  // Past the 50ms attempt timeout.
  SimulatedTransport transport{FaultPlan(spec, 41)};
  SubmitSpaceSavingReports(transport, shards);
  Coordinator<SpaceSaving> coordinator(kEpoch, TestPolicy(),
                                       MergeTopology::kRandomTree, 5);
  const auto result = coordinator.Run(transport, kShards);
  EXPECT_EQ(result.shards_received, kShards);
  uint64_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  EXPECT_EQ(result.summary->n(), total);
}

TEST(CoordinatorTest, WrongEpochReportsAreRejected) {
  SpaceSaving summary = SpaceSaving::ForEpsilon(kHhEpsilon);
  summary.Update(1);
  SimulatedTransport transport{FaultPlan()};
  transport.Submit(0, MakeReportFrame(summary, /*shard_id=*/0,
                                      /*epoch=*/kEpoch + 1));
  Coordinator<SpaceSaving> coordinator(kEpoch, TestPolicy(),
                                       MergeTopology::kBalancedTree);
  const auto result = coordinator.Run(transport, 1);
  EXPECT_EQ(result.shards_received, 0u);
  EXPECT_GT(result.malformed_rejected, 0u);
  EXPECT_FALSE(result.summary.has_value());
}

TEST(CoordinatorTest, MisroutedShardIdsAreRejected) {
  SpaceSaving summary = SpaceSaving::ForEpsilon(kHhEpsilon);
  summary.Update(1);
  SimulatedTransport transport{FaultPlan()};
  // Frame claims shard 7 but is served on shard 0's channel.
  transport.Submit(0, MakeReportFrame(summary, /*shard_id=*/7, kEpoch));
  Coordinator<SpaceSaving> coordinator(kEpoch, TestPolicy(),
                                       MergeTopology::kBalancedTree);
  const auto result = coordinator.Run(transport, 1);
  EXPECT_EQ(result.shards_received, 0u);
  EXPECT_GT(result.malformed_rejected, 0u);
}

TEST(CoordinatorTest, IncompatibleSummariesAreRejectedNotMerged) {
  // Worker 1 misconfigured: wrong capacity. Merging it would abort on
  // the capacity CHECK; the validator must reject it instead.
  SimulatedTransport transport{FaultPlan()};
  SpaceSaving good = SpaceSaving::ForEpsilon(kHhEpsilon);
  good.Update(1);
  SpaceSaving bad(8);
  bad.Update(2);
  transport.Submit(0, MakeReportFrame(good, 0, kEpoch));
  transport.Submit(1, MakeReportFrame(bad, 1, kEpoch));
  Coordinator<SpaceSaving> coordinator(kEpoch, TestPolicy(),
                                       MergeTopology::kBalancedTree);
  coordinator.set_validator(+[](const SpaceSaving& s) {
    return s.capacity() == SpaceSaving::ForEpsilon(kHhEpsilon).capacity();
  });
  const auto result = coordinator.Run(transport, 2);
  EXPECT_EQ(result.shards_received, 1u);
  EXPECT_EQ(result.incompatible_rejected, 1u);
  ASSERT_TRUE(result.summary.has_value());
  EXPECT_EQ(result.summary->n(), 1u);
}

// ---- Parallel Run (CoordinatorOptions::num_threads > 1) ----
//
// Parallelism must be invisible in the result: fault decisions are keyed
// by (seed, shard, attempt) and shards are absorbed in ascending order,
// so a parallel run is field-for-field and byte-for-byte identical to
// the sequential run over an identically-built transport.

template <typename S>
std::vector<uint8_t> EncodedSummary(const AggregationResult<S>& result) {
  ByteWriter writer;
  result.summary->EncodeTo(writer);
  return writer.TakeBytes();
}

template <typename S>
void ExpectSameResult(const AggregationResult<S>& actual,
                      const AggregationResult<S>& expected) {
  ASSERT_EQ(actual.summary.has_value(), expected.summary.has_value());
  if (expected.summary.has_value()) {
    EXPECT_EQ(EncodedSummary(actual), EncodedSummary(expected));
  }
  EXPECT_EQ(actual.shards_total, expected.shards_total);
  EXPECT_EQ(actual.shards_received, expected.shards_received);
  EXPECT_EQ(actual.retries, expected.retries);
  EXPECT_EQ(actual.duplicates_rejected, expected.duplicates_rejected);
  EXPECT_EQ(actual.malformed_rejected, expected.malformed_rejected);
  EXPECT_EQ(actual.incompatible_rejected, expected.incompatible_rejected);
  ASSERT_EQ(actual.outcomes.size(), expected.outcomes.size());
  for (size_t i = 0; i < expected.outcomes.size(); ++i) {
    EXPECT_EQ(actual.outcomes[i].shard_id, expected.outcomes[i].shard_id);
    EXPECT_EQ(actual.outcomes[i].status, expected.outcomes[i].status);
    EXPECT_EQ(actual.outcomes[i].attempts, expected.outcomes[i].attempts);
    EXPECT_EQ(actual.outcomes[i].malformed, expected.outcomes[i].malformed);
    EXPECT_EQ(actual.outcomes[i].duplicates,
              expected.outcomes[i].duplicates);
  }
}

AggregationResult<SpaceSaving> RunWithThreads(
    const std::vector<std::vector<uint64_t>>& shards, const FaultPlan& plan,
    int num_threads, MergeTopology topology = MergeTopology::kBalancedTree) {
  SimulatedTransport transport{plan};
  SubmitSpaceSavingReports(transport, shards);
  BackoffPolicy policy = TestPolicy();
  policy.max_attempts = 8;
  CoordinatorOptions options;
  options.num_threads = num_threads;
  Coordinator<SpaceSaving> coordinator(kEpoch, policy, topology,
                                       /*seed=*/3, options);
  return coordinator.Run(transport, kShards);
}

TEST(CoordinatorParallelTest, HealthyRunMatchesSequential) {
  const auto shards = TestShards();
  const auto sequential = RunWithThreads(shards, FaultPlan(), 1);
  ASSERT_TRUE(sequential.summary.has_value());
  for (int threads : {2, 8}) {
    ExpectSameResult(RunWithThreads(shards, FaultPlan(), threads),
                     sequential);
  }
}

TEST(CoordinatorParallelTest, FaultyRunMatchesSequential) {
  const auto shards = TestShards();
  FaultSpec spec;
  spec.drop_probability = 0.3;
  spec.bit_flip_probability = 0.2;
  spec.duplicate_probability = 0.2;
  const FaultPlan plan(spec, 17);
  const auto sequential = RunWithThreads(shards, plan, 1);
  EXPECT_GT(sequential.retries, 0u);
  for (int threads : {2, 8}) {
    ExpectSameResult(RunWithThreads(shards, plan, threads), sequential);
  }
}

TEST(CoordinatorParallelTest, PermanentShardLossMatchesSequential) {
  const auto shards = TestShards();
  FaultPlan plan;
  plan.KillShard(2);
  plan.KillShard(9);
  const auto sequential = RunWithThreads(shards, plan, 1);
  EXPECT_EQ(sequential.shards_received, kShards - 2);
  ExpectSameResult(RunWithThreads(shards, plan, 8), sequential);
}

TEST(CoordinatorParallelTest, NonTreeTopologyKeepsCanonicalMergeOrder) {
  // Parallel fetch is allowed for any topology; only kBalancedTree uses
  // the parallel reduction, the others merge sequentially in canonical
  // order and must still match byte-for-byte.
  const auto shards = TestShards();
  const auto sequential =
      RunWithThreads(shards, FaultPlan(), 1, MergeTopology::kLeftDeepChain);
  ExpectSameResult(
      RunWithThreads(shards, FaultPlan(), 8, MergeTopology::kLeftDeepChain),
      sequential);
}

TEST(CoordinatorParallelDeathTest, ZeroThreadsAborts) {
  CoordinatorOptions options;
  options.num_threads = 0;
  EXPECT_DEATH(Coordinator<SpaceSaving>(kEpoch, TestPolicy(),
                                        MergeTopology::kBalancedTree, 0,
                                        options),
               "num_threads");
}

TEST(CoordinatorTest, DeadlineStopsRetrying) {
  FaultPlan plan;
  plan.KillShard(0);
  SimulatedTransport transport{plan};
  SpaceSaving summary = SpaceSaving::ForEpsilon(kHhEpsilon);
  summary.Update(1);
  transport.Submit(0, MakeReportFrame(summary, 0, kEpoch));
  BackoffPolicy policy = TestPolicy();
  policy.max_attempts = 100;
  policy.deadline_ms = 120;  // Only a few attempts fit.
  Coordinator<SpaceSaving> coordinator(kEpoch, policy,
                                       MergeTopology::kBalancedTree);
  const auto result = coordinator.Run(transport, 1);
  EXPECT_EQ(result.shards_received, 0u);
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_LT(result.outcomes[0].attempts, 10u);
  EXPECT_LE(result.outcomes[0].elapsed_ms, policy.deadline_ms + 50);
}

// One coordinator, two consecutive epochs. Before AdvanceEpoch existed,
// the dedup/outcome state of epoch 1 leaked into epoch 2 and every
// second-epoch report was either misrejected or double-merged.
TEST(CoordinatorTest, ReusableAcrossEpochsAfterAdvance) {
  const auto shards = TestShards();
  uint64_t total = 0;
  for (const auto& shard : shards) total += shard.size();

  Coordinator<SpaceSaving> coordinator(kEpoch, TestPolicy(),
                                       MergeTopology::kBalancedTree);
  for (uint64_t epoch = kEpoch; epoch < kEpoch + 2; ++epoch) {
    if (epoch != kEpoch) coordinator.AdvanceEpoch(epoch);
    EXPECT_EQ(coordinator.epoch(), epoch);
    SimulatedTransport transport{FaultPlan()};
    for (size_t shard = 0; shard < shards.size(); ++shard) {
      SpaceSaving summary = SpaceSaving::ForEpsilon(kHhEpsilon);
      for (uint64_t item : shards[shard]) summary.Update(item);
      transport.Submit(shard, MakeReportFrame(summary, shard, epoch));
    }
    const auto result = coordinator.Run(transport, kShards);
    EXPECT_EQ(result.shards_received, kShards) << "epoch " << epoch;
    EXPECT_EQ(result.duplicates_rejected, 0u) << "epoch " << epoch;
    EXPECT_EQ(result.malformed_rejected, 0u) << "epoch " << epoch;
    ASSERT_TRUE(result.summary.has_value());
    // Stale epoch-1 state leaking in would double n or drop shards.
    EXPECT_EQ(result.summary->n(), total) << "epoch " << epoch;
  }
}

TEST(CoordinatorTest, StaleEpochReportsRejectedAfterAdvance) {
  SpaceSaving summary = SpaceSaving::ForEpsilon(kHhEpsilon);
  summary.Update(1);
  Coordinator<SpaceSaving> coordinator(kEpoch, TestPolicy(),
                                       MergeTopology::kBalancedTree);
  coordinator.AdvanceEpoch(kEpoch + 1);
  // A straggler frame from the previous epoch must not be merged.
  SimulatedTransport transport{FaultPlan()};
  transport.Submit(0, MakeReportFrame(summary, 0, kEpoch));
  const auto result = coordinator.Run(transport, 1);
  EXPECT_EQ(result.shards_received, 0u);
  EXPECT_GT(result.malformed_rejected, 0u);
}

TEST(CoordinatorDeathTest, AdvanceToSameEpochIsRejected) {
  Coordinator<SpaceSaving> coordinator(kEpoch, TestPolicy(),
                                       MergeTopology::kBalancedTree);
  EXPECT_DEATH(coordinator.AdvanceEpoch(kEpoch),
               "AdvanceEpoch requires a different epoch");
}

// The acceptance-criteria test: k of m shards permanently lost. The
// coordinator must report coverage (m-k)/m, and the heavy-hitter error
// measured against the union of the *received* shards must stay within
// epsilon * n_received under every merge topology — mergeability is
// exactly what makes partial aggregation sound.
TEST(CoordinatorTest, DegradedCoverageKeepsHeavyHitterBound) {
  const auto shards = TestShards();
  const std::vector<uint64_t> dead = {2, 5, 9};

  // Ground truth over the received shards only.
  std::unordered_map<uint64_t, uint64_t> truth;
  uint64_t n_received = 0;
  for (size_t shard = 0; shard < shards.size(); ++shard) {
    if (std::find(dead.begin(), dead.end(), shard) != dead.end()) continue;
    for (uint64_t item : shards[shard]) ++truth[item];
    n_received += shards[shard].size();
  }
  uint64_t n_total = 0;
  for (const auto& shard : shards) n_total += shard.size();

  for (MergeTopology topology : kAllTopologies) {
    FaultPlan plan;
    for (uint64_t shard : dead) plan.KillShard(shard);
    SimulatedTransport transport{plan};
    SubmitSpaceSavingReports(transport, shards);
    Coordinator<SpaceSaving> coordinator(kEpoch, TestPolicy(), topology, 17);
    const auto result = coordinator.Run(transport, kShards);

    EXPECT_EQ(result.shards_received, kShards - dead.size());
    EXPECT_DOUBLE_EQ(result.Coverage(),
                     static_cast<double>(kShards - dead.size()) / kShards);
    EXPECT_TRUE(result.Degraded());
    ASSERT_TRUE(result.summary.has_value());
    EXPECT_EQ(result.summary->n(), n_received);

    // Error on received data: |count estimate - true count| over every
    // universe item, within epsilon * n_received.
    const double bound = kHhEpsilon * static_cast<double>(n_received);
    for (uint64_t item = 0; item < 4096; ++item) {
      const auto it = truth.find(item);
      const double true_count =
          it == truth.end() ? 0.0 : static_cast<double>(it->second);
      const double estimate =
          static_cast<double>(result.summary->Count(item));
      EXPECT_LE(std::abs(estimate - true_count), bound)
          << "item " << item << " under " << ToString(topology);
    }

    // Error accounting: the received bound is epsilon * n_received; the
    // full-stream bound widens by exactly the known lost mass.
    const ErrorAccounting accounting =
        AccountErrors(result, kHhEpsilon, n_total);
    EXPECT_DOUBLE_EQ(accounting.received_bound, bound);
    EXPECT_EQ(accounting.lost_mass, n_total - n_received);
    EXPECT_FALSE(accounting.lost_mass_estimated);
    EXPECT_DOUBLE_EQ(accounting.full_stream_bound,
                     bound + static_cast<double>(n_total - n_received));
    EXPECT_DOUBLE_EQ(accounting.coverage, result.Coverage());

    // Without the expected total, the lost mass is estimated from the
    // mean received shard weight (flagged as an estimate).
    const ErrorAccounting estimated = AccountErrors(result, kHhEpsilon);
    EXPECT_TRUE(estimated.lost_mass_estimated);
    EXPECT_GT(estimated.lost_mass, 0u);
  }
}

// Same acceptance property for quantiles: rank error on received data
// within epsilon * n_received under every topology.
TEST(CoordinatorTest, DegradedCoverageKeepsQuantileBound) {
  const auto shards = TestShards();
  const std::vector<uint64_t> dead = {0, 7};

  std::vector<double> received_values;
  for (size_t shard = 0; shard < shards.size(); ++shard) {
    if (std::find(dead.begin(), dead.end(), shard) != dead.end()) continue;
    for (uint64_t item : shards[shard]) {
      received_values.push_back(static_cast<double>(item));
    }
  }
  std::sort(received_values.begin(), received_values.end());
  const uint64_t n_received = received_values.size();

  for (MergeTopology topology : kAllTopologies) {
    FaultPlan plan;
    for (uint64_t shard : dead) plan.KillShard(shard);
    SimulatedTransport transport{plan};
    for (size_t shard = 0; shard < shards.size(); ++shard) {
      MergeableQuantiles summary =
          MergeableQuantiles::ForEpsilon(kQuantileEpsilon, 100 + shard);
      for (uint64_t item : shards[shard]) {
        summary.Update(static_cast<double>(item));
      }
      transport.Submit(shard, MakeReportFrame(summary, shard, kEpoch));
    }
    Coordinator<MergeableQuantiles> coordinator(kEpoch, TestPolicy(),
                                                topology, 23);
    const auto result = coordinator.Run(transport, kShards);

    EXPECT_DOUBLE_EQ(result.Coverage(),
                     static_cast<double>(kShards - dead.size()) / kShards);
    ASSERT_TRUE(result.summary.has_value());
    EXPECT_EQ(result.summary->n(), n_received);

    const double bound = kQuantileEpsilon * static_cast<double>(n_received);
    for (double x : {10.0, 50.0, 200.0, 1000.0, 3000.0}) {
      const auto true_rank = static_cast<double>(
          std::upper_bound(received_values.begin(), received_values.end(),
                           x) -
          received_values.begin());
      const double estimate =
          static_cast<double>(result.summary->Rank(x));
      EXPECT_LE(std::abs(estimate - true_rank), bound)
          << "x=" << x << " under " << ToString(topology);
    }
  }
}

}  // namespace
}  // namespace mergeable
