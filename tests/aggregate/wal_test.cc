// WAL framing, checksum rejection, and torn-tail detection. The
// storage-facing tests run over both backends (MemStorage model and
// FileStorage on real files); the exhaustive byte-surgery loops stay on
// the in-memory model — they exercise framing logic, not the medium.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/storage.h"
#include "mergeable/aggregate/wal.h"
#include "storage_backends.h"

namespace mergeable {
namespace {

WalRecord Report(uint64_t shard, uint64_t epoch,
                 std::initializer_list<uint8_t> payload) {
  WalRecord record;
  record.type = WalRecordType::kReport;
  record.shard_id = shard;
  record.epoch = epoch;
  record.payload = std::vector<uint8_t>(payload);
  return record;
}

class WalBackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  WalBackendTest() : factory_(GetParam()) {}
  BackendFactory factory_;
};

TEST_P(WalBackendTest, RoundTripsRecordsInOrder) {
  auto backend = factory_.Make();
  CrashableStorage& storage = *backend;
  WalWriter writer(&storage, "wal");
  WalRecord begin;
  begin.type = WalRecordType::kEpochBegin;
  begin.shard_id = 4;  // n_shards.
  begin.epoch = 9;
  ASSERT_TRUE(writer.Append(begin));
  ASSERT_TRUE(writer.Append(Report(0, 9, {1, 2, 3})));
  ASSERT_TRUE(writer.Append(Report(2, 9, {})));
  WalRecord lost;
  lost.type = WalRecordType::kShardLost;
  lost.shard_id = 1;
  lost.epoch = 9;
  ASSERT_TRUE(writer.Append(lost));
  EXPECT_EQ(writer.records_appended(), 4u);

  const WalReplay replay = ReplayWal(storage, "wal");
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.valid_bytes, writer.bytes_appended());
  ASSERT_EQ(replay.records.size(), 4u);
  EXPECT_EQ(replay.records[0].type, WalRecordType::kEpochBegin);
  EXPECT_EQ(replay.records[0].shard_id, 4u);
  EXPECT_EQ(replay.records[1].shard_id, 0u);
  EXPECT_EQ(replay.records[1].payload, std::vector<uint8_t>({1, 2, 3}));
  EXPECT_EQ(replay.records[2].payload.size(), 0u);
  EXPECT_EQ(replay.records[3].type, WalRecordType::kShardLost);
  EXPECT_EQ(replay.records[3].shard_id, 1u);
}

TEST_P(WalBackendTest, MissingFileIsEmptyUntornLog) {
  auto backend = factory_.Make();
  const WalReplay replay = ReplayWal(*backend, "wal");
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.valid_bytes, 0u);
  EXPECT_FALSE(replay.torn_tail);
}

TEST_P(WalBackendTest, WriterStopsCountingOnCrashedAppend) {
  CrashPoint point;
  point.mode = CrashMode::kTornWrite;
  point.write_index = 1;
  point.mutation_seed = 3;
  auto backend = factory_.Make(point);
  CrashableStorage& storage = *backend;
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append(Report(0, 1, {1})));
  EXPECT_FALSE(writer.Append(Report(1, 1, {2})));
  EXPECT_EQ(writer.records_appended(), 1u);

  storage.Restart();
  const WalReplay replay = ReplayWal(storage, "wal");
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].shard_id, 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, WalBackendTest,
                         ::testing::Values(BackendKind::kMem,
                                           BackendKind::kFile),
                         [](const auto& info) {
                           return BackendName(info.param);
                         });

TEST(WalTest, TornFinalRecordKeepsValidPrefix) {
  MemStorage storage;
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append(Report(0, 1, {1, 2})));
  const uint64_t first_end = writer.bytes_appended();
  ASSERT_TRUE(writer.Append(Report(1, 1, {3, 4})));

  // Tear the second record at every possible split point: the first
  // record must always survive, and the tail must always be flagged.
  auto full = *storage.Read("wal");
  for (size_t cut = first_end + 1; cut < full.size(); ++cut) {
    MemStorage torn;
    ASSERT_TRUE(torn.Append(
        "wal", std::vector<uint8_t>(full.begin(), full.begin() + cut)));
    const WalReplay replay = ReplayWal(torn, "wal");
    ASSERT_EQ(replay.records.size(), 1u) << "cut=" << cut;
    EXPECT_EQ(replay.records[0].shard_id, 0u);
    EXPECT_EQ(replay.valid_bytes, first_end);
    EXPECT_TRUE(replay.torn_tail);
  }
}

TEST(WalTest, BitFlipAnywhereInFinalRecordIsRejected) {
  MemStorage storage;
  WalWriter writer(&storage, "wal");
  ASSERT_TRUE(writer.Append(Report(0, 1, {1, 2})));
  const uint64_t first_end = writer.bytes_appended();
  ASSERT_TRUE(writer.Append(Report(1, 1, {3, 4, 5, 6})));

  const auto full = *storage.Read("wal");
  for (size_t byte = first_end; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = full;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      MemStorage corrupt;
      ASSERT_TRUE(corrupt.Append("wal", flipped));
      const WalReplay replay = ReplayWal(corrupt, "wal");
      // The flip must not smuggle a different record through: either the
      // tail is rejected (usual), or — when the flip hits the length
      // field and happens to frame a checksummed prefix — never accepted
      // as a *valid different* record. Checksum coverage of the body
      // makes the second case impossible; assert the first.
      ASSERT_EQ(replay.records.size(), 1u)
          << "byte=" << byte << " bit=" << bit;
      EXPECT_TRUE(replay.torn_tail);
      EXPECT_EQ(replay.valid_bytes, first_end);
    }
  }
}

TEST(WalTest, UnknownRecordTypeStopsReplay) {
  // A record with an unknown type frames and checksums correctly, so
  // only the type check can reject it.
  MemStorage storage;
  {
    WalRecord bogus = Report(3, 2, {7});
    bogus.type = static_cast<WalRecordType>(99);
    ASSERT_TRUE(storage.Append("wal", EncodeWalRecord(bogus)));
  }
  const WalReplay replay = ReplayWal(storage, "wal");
  EXPECT_TRUE(replay.records.empty());
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.valid_bytes, 0u);
}

TEST(WalTest, ChecksumDiffersAcrossRecords) {
  const auto a = EncodeWalRecord(Report(0, 1, {1}));
  const auto b = EncodeWalRecord(Report(1, 1, {1}));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mergeable
