#include "mergeable/frequency/counter.h"

#include <vector>

#include <gtest/gtest.h>

namespace mergeable {
namespace {

TEST(CounterTest, EqualityComparesBothFields) {
  EXPECT_EQ((Counter{1, 2}), (Counter{1, 2}));
  EXPECT_FALSE((Counter{1, 2}) == (Counter{1, 3}));
  EXPECT_FALSE((Counter{2, 2}) == (Counter{1, 2}));
}

TEST(CounterTest, SortAscendingBreaksTiesByItem) {
  std::vector<Counter> counters = {{5, 10}, {1, 10}, {9, 2}};
  SortByCountAscending(counters);
  EXPECT_EQ(counters, (std::vector<Counter>{{9, 2}, {1, 10}, {5, 10}}));
}

TEST(CounterTest, SortDescendingBreaksTiesByItem) {
  std::vector<Counter> counters = {{5, 10}, {1, 10}, {9, 2}};
  SortByCountDescending(counters);
  EXPECT_EQ(counters, (std::vector<Counter>{{1, 10}, {5, 10}, {9, 2}}));
}

TEST(CombineCountersTest, DisjointSetsConcatenate) {
  const auto combined = CombineCounters({{1, 2}}, {{2, 3}});
  ASSERT_EQ(combined.size(), 2u);
  uint64_t total = 0;
  for (const Counter& c : combined) total += c.count;
  EXPECT_EQ(total, 5u);
}

TEST(CombineCountersTest, SharedItemsAddCounts) {
  auto combined = CombineCounters({{1, 2}, {2, 5}}, {{1, 3}});
  SortByCountAscending(combined);
  EXPECT_EQ(combined, (std::vector<Counter>{{1, 5}, {2, 5}}));
}

TEST(CombineCountersTest, EmptyInputsWork) {
  EXPECT_TRUE(CombineCounters({}, {}).empty());
  const auto combined = CombineCounters({{7, 1}}, {});
  EXPECT_EQ(combined, (std::vector<Counter>{{7, 1}}));
}

}  // namespace
}  // namespace mergeable
