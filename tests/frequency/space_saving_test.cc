#include "mergeable/frequency/space_saving.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/stream/generators.h"
#include "mergeable/stream/partition.h"
#include "mergeable/util/bytes.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

std::map<uint64_t, uint64_t> TrueCounts(const std::vector<uint64_t>& stream) {
  std::map<uint64_t, uint64_t> counts;
  for (uint64_t item : stream) ++counts[item];
  return counts;
}

TEST(SpaceSavingTest, SmallStreamIsExact) {
  SpaceSaving ss(4);
  for (uint64_t item : {1u, 1u, 2u, 3u, 1u}) ss.Update(item);
  EXPECT_EQ(ss.n(), 5u);
  EXPECT_EQ(ss.Count(1), 3u);
  EXPECT_EQ(ss.Count(2), 1u);
  EXPECT_EQ(ss.MinCount(), 0u);  // Not full yet.
  EXPECT_EQ(ss.LowerEstimate(1), 3u);
  EXPECT_EQ(ss.UpperEstimate(1), 3u);
}

TEST(SpaceSavingTest, EvictionInheritsMinCount) {
  SpaceSaving ss(2);
  ss.Update(1);  // {1:1}
  ss.Update(2);  // {1:1, 2:1}
  ss.Update(3);  // evicts min -> {3:2, ...} with over = 1
  EXPECT_EQ(ss.Count(3), 2u);
  EXPECT_EQ(ss.LowerEstimate(3), 1u);
  EXPECT_EQ(ss.n(), 3u);
}

TEST(SpaceSavingTest, SumOfCountersEqualsNWhileStreaming) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 30000;
  spec.universe = 1024;
  const auto stream = GenerateStream(spec, 31);

  SpaceSaving ss(32);
  for (uint64_t item : stream) ss.Update(item);

  uint64_t sum = 0;
  for (const Counter& counter : ss.Counters()) sum += counter.count;
  EXPECT_EQ(sum, ss.n());
}

TEST(SpaceSavingTest, StreamingBoundsHoldForEveryItem) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 50000;
  spec.universe = 4096;
  const auto stream = GenerateStream(spec, 32);
  const auto truth = TrueCounts(stream);

  SpaceSaving ss(64);
  for (uint64_t item : stream) ss.Update(item);

  EXPECT_LE(ss.MinCount(), ss.n() / 64);
  EXPECT_EQ(ss.UnderSlack(), 0u);
  for (const auto& [item, count] : truth) {
    ASSERT_LE(ss.LowerEstimate(item), count) << "item " << item;
    ASSERT_LE(count, ss.UpperEstimate(item)) << "item " << item;
  }
}

TEST(SpaceSavingTest, IsomorphismWithMisraGries) {
  // Agarwal et al.: SS with k+1 counters vs MG with k counters on the
  // same stream satisfy ss_estimate(x) == mg_count(x) + min_ss for every
  // x, and min_ss == (n - sum mg) / (k + 1).
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 20000;
  spec.universe = 512;
  const auto stream = GenerateStream(spec, 33);
  const auto truth = TrueCounts(stream);

  constexpr int k = 16;
  SpaceSaving ss(k + 1);
  MisraGries mg(k);
  for (uint64_t item : stream) {
    ss.Update(item);
    mg.Update(item);
  }

  uint64_t mg_sum = 0;
  for (const Counter& counter : mg.Counters()) mg_sum += counter.count;
  ASSERT_EQ(ss.MinCount(), (ss.n() - mg_sum) / (k + 1));

  for (const auto& [item, count] : truth) {
    const uint64_t ss_estimate =
        ss.Count(item) > 0 ? ss.Count(item) : ss.MinCount();
    ASSERT_EQ(ss_estimate, mg.LowerEstimate(item) + ss.MinCount())
        << "item " << item;
  }
}

TEST(SpaceSavingTest, ToMisraGriesKeepsGuarantee) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 20000;
  spec.universe = 512;
  const auto stream = GenerateStream(spec, 34);
  const auto truth = TrueCounts(stream);

  SpaceSaving ss(33);
  for (uint64_t item : stream) ss.Update(item);
  const MisraGries mg = ss.ToMisraGries();

  EXPECT_EQ(mg.n(), ss.n());
  EXPECT_LE(mg.size(), 32u);
  const uint64_t error = mg.ErrorBound();
  for (const auto& [item, count] : truth) {
    ASSERT_LE(mg.LowerEstimate(item), count);
    ASSERT_LE(count, mg.LowerEstimate(item) + error);
  }
}

class SpaceSavingMergeTest : public ::testing::TestWithParam<bool> {
 protected:
  // Merges b into a with the algorithm under test.
  static void DoMerge(SpaceSaving& a, const SpaceSaving& b, bool cafaro) {
    if (cafaro) {
      a.MergeCafaro(b);
    } else {
      a.Merge(b);
    }
  }
};

TEST_P(SpaceSavingMergeTest, TwoSidedBoundsHoldAfterMergeTree) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 60000;
  spec.universe = 2048;
  const auto stream = GenerateStream(spec, 35);
  const auto truth = TrueCounts(stream);
  const auto shards = PartitionStream(stream, 8, PartitionPolicy::kRandom, 7);

  std::vector<SpaceSaving> parts;
  for (const auto& shard : shards) {
    SpaceSaving ss(64);
    for (uint64_t item : shard) ss.Update(item);
    parts.push_back(ss);
  }
  SpaceSaving merged = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    DoMerge(merged, parts[i], GetParam());
  }

  EXPECT_EQ(merged.n(), stream.size());
  EXPECT_LE(merged.size(), 64u);
  for (const auto& [item, count] : truth) {
    ASSERT_LE(merged.LowerEstimate(item), count) << "item " << item;
    ASSERT_LE(count, merged.UpperEstimate(item)) << "item " << item;
  }
}

TEST_P(SpaceSavingMergeTest, MergedErrorWithinEpsilonN) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 60000;
  spec.universe = 2048;
  const auto stream = GenerateStream(spec, 36);
  const auto truth = TrueCounts(stream);
  const auto shards =
      PartitionStream(stream, 16, PartitionPolicy::kContiguous);

  constexpr int kCapacity = 50;  // epsilon = 1/50.
  std::vector<SpaceSaving> parts;
  for (const auto& shard : shards) {
    SpaceSaving ss(kCapacity);
    for (uint64_t item : shard) ss.Update(item);
    parts.push_back(ss);
  }
  SpaceSaving merged = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    DoMerge(merged, parts[i], GetParam());
  }

  const auto epsilon_n = static_cast<uint64_t>(stream.size()) / kCapacity;
  for (const auto& [item, count] : truth) {
    const uint64_t estimate = merged.Count(item);
    const uint64_t error =
        estimate > count ? estimate - count : count - estimate;
    ASSERT_LE(error, epsilon_n) << "item " << item;
  }
}

TEST_P(SpaceSavingMergeTest, HeavyHittersSurviveMerging) {
  StreamSpec spec;
  spec.kind = StreamKind::kAdversarialMg;
  spec.n = 50000;
  spec.heavy_items = 8;
  const auto stream = GenerateStream(spec, 37);
  const auto truth = TrueCounts(stream);
  const auto shards = PartitionStream(stream, 10, PartitionPolicy::kRandom, 3);

  std::vector<SpaceSaving> parts;
  for (const auto& shard : shards) {
    SpaceSaving ss(32);
    for (uint64_t item : shard) ss.Update(item);
    parts.push_back(ss);
  }
  SpaceSaving merged = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    DoMerge(merged, parts[i], GetParam());
  }

  const uint64_t threshold = stream.size() / 32 + 1;
  const auto reported = merged.FrequentItems(threshold);
  for (const auto& [item, count] : truth) {
    if (count < threshold) continue;
    const bool found =
        std::any_of(reported.begin(), reported.end(),
                    [item](const Counter& c) { return c.item == item; });
    EXPECT_TRUE(found) << "missed heavy item " << item;
  }
}

INSTANTIATE_TEST_SUITE_P(BothAlgorithms, SpaceSavingMergeTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Cafaro" : "Agarwal";
                         });

// ---------------------------------------------------------------------------
// Worked example from Cafaro et al. §5.2 (k = 5).
// ---------------------------------------------------------------------------

std::vector<Counter> PaperSs1() {
  return {{1, 5}, {2, 7}, {3, 12}, {4, 14}, {5, 18}};
}
std::vector<Counter> PaperSs2() {
  return {{6, 4}, {7, 16}, {8, 17}, {9, 19}, {10, 23}};
}

SpaceSaving FromCounters(const std::vector<Counter>& counters) {
  SpaceSaving ss(5);
  // Feeding ascending by count reproduces the summary exactly (no
  // evictions occur: 5 distinct items, 5 counters).
  std::vector<Counter> ascending = counters;
  SortByCountAscending(ascending);
  for (const Counter& c : ascending) ss.Update(c.item, c.count);
  return ss;
}

TEST(SpaceSavingPaperExampleTest, AgarwalMergeMatchesSection521) {
  SpaceSaving s1 = FromCounters(PaperSs1());
  SpaceSaving s2 = FromCounters(PaperSs2());
  s1.Merge(s2);

  std::map<uint64_t, uint64_t> result;
  for (const Counter& c : s1.Counters()) result[c.item] = c.count;
  const std::map<uint64_t, uint64_t> expected = {
      {5, 1}, {8, 1}, {9, 3}, {10, 7}};
  EXPECT_EQ(result, expected);
}

TEST(SpaceSavingPaperExampleTest, CafaroMergeMatchesSection522) {
  SpaceSaving s1 = FromCounters(PaperSs1());
  SpaceSaving s2 = FromCounters(PaperSs2());
  s1.MergeCafaro(s2);

  std::map<uint64_t, uint64_t> result;
  for (const Counter& c : s1.Counters()) result[c.item] = c.count;
  const std::map<uint64_t, uint64_t> expected = {
      {7, 12}, {5, 13}, {8, 15}, {9, 22}, {10, 28}};
  EXPECT_EQ(result, expected);
}

TEST(SpaceSavingPaperExampleTest, ClosedFormMatchesSection522) {
  const auto merged =
      CafaroClosedFormMergeSpaceSaving(PaperSs1(), PaperSs2(), 5);
  const std::vector<Counter> expected = {
      {7, 12}, {5, 13}, {8, 15}, {9, 22}, {10, 28}};
  EXPECT_EQ(merged, expected);
}

TEST(SpaceSavingTest, ForEpsilonSizesCapacity) {
  EXPECT_EQ(SpaceSaving::ForEpsilon(0.02).capacity(), 50);
}

// ---- Amortized-path equivalence against a textbook reference ----
//
// SpaceSaving's lazy min-heap + flat index are pure representation: the
// query-visible state must match a naive implementation doing an exact
// full-scan min with the same (count, item) eviction tie-break, after
// every single update.

class ReferenceSpaceSaving {
 public:
  explicit ReferenceSpaceSaving(size_t capacity) : capacity_(capacity) {}

  void Update(uint64_t item, uint64_t weight = 1) {
    n_ += weight;
    auto it = counts_.find(item);
    if (it != counts_.end()) {
      it->second.first += weight;
      return;
    }
    if (counts_.size() < capacity_) {
      counts_[item] = {weight, 0};
      return;
    }
    auto victim = counts_.begin();
    for (auto scan = counts_.begin(); scan != counts_.end(); ++scan) {
      if (scan->second.first < victim->second.first ||
          (scan->second.first == victim->second.first &&
           scan->first < victim->first)) {
        victim = scan;
      }
    }
    const uint64_t evicted = victim->second.first;
    counts_.erase(victim);
    counts_[item] = {evicted + weight, evicted};
  }

  std::vector<Counter> Counters() const {
    std::vector<Counter> result;
    for (const auto& [item, entry] : counts_) {
      result.push_back(Counter{item, entry.first});
    }
    SortByCountDescending(result);
    return result;
  }

  uint64_t MinCount() const {
    if (counts_.size() < capacity_) return 0;
    uint64_t min = ~uint64_t{0};
    for (const auto& [item, entry] : counts_) {
      min = std::min(min, entry.first);
    }
    return min;
  }

  uint64_t LowerEstimate(uint64_t item) const {
    auto it = counts_.find(item);
    return it == counts_.end() ? 0 : it->second.first - it->second.second;
  }

  uint64_t n() const { return n_; }

 private:
  size_t capacity_;
  uint64_t n_ = 0;
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> counts_;
};

void ExpectMatchesReference(const std::vector<uint64_t>& stream,
                            int capacity) {
  SpaceSaving fast(capacity);
  ReferenceSpaceSaving slow(capacity);
  for (size_t i = 0; i < stream.size(); ++i) {
    fast.Update(stream[i]);
    slow.Update(stream[i]);
    ASSERT_EQ(fast.n(), slow.n()) << "after update " << i;
    ASSERT_EQ(fast.MinCount(), slow.MinCount()) << "after update " << i;
    ASSERT_EQ(fast.Counters(), slow.Counters()) << "after update " << i;
  }
  for (const Counter& counter : slow.Counters()) {
    ASSERT_EQ(fast.LowerEstimate(counter.item),
              slow.LowerEstimate(counter.item))
        << "item " << counter.item;
  }
  EXPECT_EQ(fast.UnderSlack(), 0u);  // Update never introduces slack.
}

TEST(SpaceSavingReferenceTest, ZipfStreamMatchesExactMinReference) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 5000;
  spec.universe = 512;
  ExpectMatchesReference(GenerateStream(spec, 91), 32);
}

TEST(SpaceSavingReferenceTest, RoundRobinTiesMatchReference) {
  // Every counter always has the same count: maximal tie-breaking stress
  // and an eviction on every single update once warm.
  std::vector<uint64_t> stream;
  for (int round = 0; round < 200; ++round) {
    for (uint64_t item = 0; item < 64; ++item) stream.push_back(item);
  }
  ExpectMatchesReference(stream, 16);
}

TEST(SpaceSavingReferenceTest, EvictReinsertChurnMatchesReference) {
  // Alternate a stable heavy set with waves of one-off items, so evicted
  // items return and stale heap snapshots pile up.
  std::vector<uint64_t> stream;
  uint64_t fresh = 1000;
  for (int round = 0; round < 500; ++round) {
    for (uint64_t heavy = 0; heavy < 8; ++heavy) stream.push_back(heavy);
    for (int i = 0; i < 8; ++i) stream.push_back(fresh++);
    stream.push_back(round % 16);
  }
  ExpectMatchesReference(stream, 12);
}

TEST(SpaceSavingReferenceTest, WeightedUpdatesMatchReference) {
  Rng rng(92);
  SpaceSaving fast(8);
  ReferenceSpaceSaving slow(8);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t item = rng.UniformInt(64);
    const uint64_t weight = 1 + rng.UniformInt(5);
    fast.Update(item, weight);
    slow.Update(item, weight);
    ASSERT_EQ(fast.MinCount(), slow.MinCount()) << "after update " << i;
    ASSERT_EQ(fast.Counters(), slow.Counters()) << "after update " << i;
  }
}

TEST(SpaceSavingTest, UpdateBatchMatchesScalarExactly) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 20000;
  spec.universe = 1024;
  const auto stream = GenerateStream(spec, 93);
  SpaceSaving scalar(64);
  for (uint64_t item : stream) scalar.Update(item);
  SpaceSaving batched(64);
  batched.UpdateBatch(stream.data(), stream.size());
  ByteWriter scalar_bytes;
  scalar.EncodeTo(scalar_bytes);
  ByteWriter batched_bytes;
  batched.EncodeTo(batched_bytes);
  EXPECT_EQ(batched_bytes.bytes(), scalar_bytes.bytes());
  EXPECT_EQ(batched.n(), scalar.n());
}

TEST(SpaceSavingTest, DecodeDoesAtMostOneIndexRebuild) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 30000;
  spec.universe = 4096;
  const auto stream = GenerateStream(spec, 94);
  SpaceSaving ss(512);
  for (uint64_t item : stream) ss.Update(item);
  ByteWriter writer;
  ss.EncodeTo(writer);
  ByteReader reader(writer.bytes());
  const auto decoded = SpaceSaving::DecodeFrom(reader);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_LE(decoded->index_rebuilds(), 1u);
}

TEST(SpaceSavingDeathTest, InvalidConstruction) {
  EXPECT_DEATH(SpaceSaving(1), "capacity");
  EXPECT_DEATH(SpaceSaving::ForEpsilon(0.0), "epsilon");
}

TEST(SpaceSavingTest, MergeFoldsMismatchedCapacitiesToMin) {
  // Mismatched capacities fold to the smaller side; the summary stays
  // sound for the combined stream (bracket holds for every item).
  SpaceSaving a(4);
  SpaceSaving b(8);
  std::map<uint64_t, uint64_t> exact;
  for (uint64_t i = 0; i < 400; ++i) {
    const uint64_t item = i % 11;
    a.Update(item);
    ++exact[item];
  }
  for (uint64_t i = 0; i < 300; ++i) {
    const uint64_t item = i % 7;
    b.Update(item);
    ++exact[item];
  }
  a.Merge(b);
  EXPECT_EQ(a.capacity(), 4);
  EXPECT_EQ(a.n(), 700u);
  for (const auto& [item, f] : exact) {
    EXPECT_LE(a.LowerEstimate(item), f);
    EXPECT_GE(a.UpperEstimate(item), f);
  }
  // Byte-deterministic either way around, including which side folds.
  SpaceSaving c(8);
  for (uint64_t i = 0; i < 300; ++i) c.Update(i % 7);
  SpaceSaving d(4);
  for (uint64_t i = 0; i < 400; ++i) d.Update(i % 11);
  c.MergeCafaro(d);
  EXPECT_EQ(c.capacity(), 4);
  EXPECT_EQ(c.n(), 700u);
}

}  // namespace
}  // namespace mergeable
