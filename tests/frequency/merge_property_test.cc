// Randomized cross-validation of the frequency merge implementations:
//
//  * the replay-based object merges must coincide with the closed-form
//    equations of Cafaro et al. (their Theorems 4.2 and 4.5),
//  * the Cafaro merges must never commit more total error (vs the
//    combined summary) than the Agarwal et al. prune — the paper's
//    Lemmas 4.3 and 4.6,
//  * all merges must keep every k-majority item of the union.

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/frequency/counter.h"
#include "mergeable/frequency/misra_gries.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

// A random summary shape: up to `max_counters` counters with counts in
// [1, max_count], distinct items drawn from a small universe so the two
// sides overlap with reasonable probability.
std::vector<Counter> RandomCounters(int max_counters, uint64_t max_count,
                                    Rng& rng) {
  const auto how_many = 1 + rng.UniformInt(static_cast<uint64_t>(max_counters));
  std::map<uint64_t, uint64_t> chosen;
  for (uint64_t i = 0; i < how_many; ++i) {
    chosen[rng.UniformInt(uint64_t{40})] = 1 + rng.UniformInt(max_count);
  }
  std::vector<Counter> counters;
  for (const auto& [item, count] : chosen) {
    counters.push_back(Counter{item, count});
  }
  return counters;
}

uint64_t SumCounts(const std::vector<Counter>& counters) {
  uint64_t sum = 0;
  for (const Counter& c : counters) sum += c.count;
  return sum;
}

std::map<uint64_t, uint64_t> AsMap(const std::vector<Counter>& counters) {
  std::map<uint64_t, uint64_t> m;
  for (const Counter& c : counters) m[c.item] = c.count;
  return m;
}

class FrequentMergePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FrequentMergePropertyTest, ReplayEqualsClosedForm) {
  const int k = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(k));
  for (int trial = 0; trial < 300; ++trial) {
    const auto s1 = RandomCounters(k - 1, 50, rng);
    const auto s2 = RandomCounters(k - 1, 50, rng);

    MisraGries a = MisraGries::FromCounters(k - 1, s1, SumCounts(s1));
    const MisraGries b = MisraGries::FromCounters(k - 1, s2, SumCounts(s2));
    a.MergeCafaro(b);

    const auto closed = CafaroClosedFormMergeFrequent(s1, s2, k);
    ASSERT_EQ(AsMap(a.Counters()), AsMap(closed))
        << "k=" << k << " trial=" << trial;
  }
}

TEST_P(FrequentMergePropertyTest, CafaroTotalErrorNeverExceedsAgarwal) {
  const int k = GetParam();
  Rng rng(2000 + static_cast<uint64_t>(k));
  for (int trial = 0; trial < 300; ++trial) {
    const auto s1 = RandomCounters(k - 1, 50, rng);
    const auto s2 = RandomCounters(k - 1, 50, rng);
    const auto combined_map = AsMap(CombineCounters(s1, s2));

    const auto total_error = [&combined_map](const MisraGries& merged) {
      // Underestimation vs the (error-free) combined summary, including
      // dropped counters.
      uint64_t kept = 0;
      for (const Counter& c : merged.Counters()) kept += c.count;
      uint64_t total = 0;
      for (const auto& [item, count] : combined_map) total += count;
      return total - kept;
    };

    MisraGries agarwal = MisraGries::FromCounters(k - 1, s1, SumCounts(s1));
    agarwal.Merge(MisraGries::FromCounters(k - 1, s2, SumCounts(s2)));

    MisraGries cafaro = MisraGries::FromCounters(k - 1, s1, SumCounts(s1));
    cafaro.MergeCafaro(MisraGries::FromCounters(k - 1, s2, SumCounts(s2)));

    ASSERT_LE(total_error(cafaro), total_error(agarwal))
        << "k=" << k << " trial=" << trial;
  }
}

TEST_P(FrequentMergePropertyTest, MergedCountsNeverExceedCombined) {
  const int k = GetParam();
  Rng rng(3000 + static_cast<uint64_t>(k));
  for (int trial = 0; trial < 200; ++trial) {
    const auto s1 = RandomCounters(k - 1, 50, rng);
    const auto s2 = RandomCounters(k - 1, 50, rng);
    const auto combined_map = AsMap(CombineCounters(s1, s2));

    MisraGries cafaro = MisraGries::FromCounters(k - 1, s1, SumCounts(s1));
    cafaro.MergeCafaro(MisraGries::FromCounters(k - 1, s2, SumCounts(s2)));
    for (const Counter& c : cafaro.Counters()) {
      ASSERT_LE(c.count, combined_map.at(c.item));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, FrequentMergePropertyTest,
                         ::testing::Values(2, 3, 5, 8, 13));

class SpaceSavingMergePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SpaceSavingMergePropertyTest, ReplayEqualsClosedForm) {
  const int k = GetParam();
  Rng rng(4000 + static_cast<uint64_t>(k));
  for (int trial = 0; trial < 300; ++trial) {
    // Build genuine SpaceSaving states by streaming weighted updates.
    SpaceSaving a(k);
    SpaceSaving b(k);
    const auto feed = [&rng](SpaceSaving& ss) {
      const auto updates = 1 + rng.UniformInt(uint64_t{60});
      for (uint64_t i = 0; i < updates; ++i) {
        ss.Update(rng.UniformInt(uint64_t{40}), 1 + rng.UniformInt(5));
      }
    };
    feed(a);
    feed(b);

    // Snapshot raw counters before the merge mutates `a`.
    const auto s1 = a.Counters();
    const auto s2 = b.Counters();
    a.MergeCafaro(b);

    const auto closed = CafaroClosedFormMergeSpaceSaving(s1, s2, k);
    ASSERT_EQ(AsMap(a.Counters()), AsMap(closed))
        << "k=" << k << " trial=" << trial;
  }
}

TEST_P(SpaceSavingMergePropertyTest, BothMergesKeepKMajorityItems) {
  const int k = GetParam();
  Rng rng(5000 + static_cast<uint64_t>(k));
  for (int trial = 0; trial < 100; ++trial) {
    // A concrete two-part stream with known exact counts.
    std::map<uint64_t, uint64_t> truth;
    SpaceSaving a(k);
    SpaceSaving b(k);
    const auto feed = [&rng, &truth](SpaceSaving& ss) {
      const auto updates = 20 + rng.UniformInt(uint64_t{80});
      for (uint64_t i = 0; i < updates; ++i) {
        // Skewed: item j chosen with probability ~ 1/(j+1).
        uint64_t item = rng.UniformInt(uint64_t{12});
        item = rng.UniformInt(item + 1);
        ss.Update(item);
        ++truth[item];
      }
    };
    feed(a);
    feed(b);
    const uint64_t n = a.n() + b.n();

    SpaceSaving agarwal = a;
    agarwal.Merge(b);
    SpaceSaving cafaro = a;
    cafaro.MergeCafaro(b);

    const uint64_t threshold = n / static_cast<uint64_t>(k) + 1;
    for (const auto& [item, count] : truth) {
      if (count < threshold) continue;
      ASSERT_GT(agarwal.Count(item), 0u)
          << "Agarwal lost k-majority item " << item;
      ASSERT_GT(cafaro.Count(item), 0u)
          << "Cafaro lost k-majority item " << item;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, SpaceSavingMergePropertyTest,
                         ::testing::Values(2, 3, 5, 8, 13));

}  // namespace
}  // namespace mergeable
