#include "mergeable/frequency/misra_gries.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/stream/generators.h"
#include "mergeable/stream/partition.h"

namespace mergeable {
namespace {

std::map<uint64_t, uint64_t> TrueCounts(const std::vector<uint64_t>& stream) {
  std::map<uint64_t, uint64_t> counts;
  for (uint64_t item : stream) ++counts[item];
  return counts;
}

TEST(MisraGriesTest, SmallStreamIsExact) {
  MisraGries mg(4);
  for (uint64_t item : {1u, 1u, 2u, 3u, 1u}) mg.Update(item);
  EXPECT_EQ(mg.n(), 5u);
  EXPECT_EQ(mg.LowerEstimate(1), 3u);
  EXPECT_EQ(mg.LowerEstimate(2), 1u);
  EXPECT_EQ(mg.LowerEstimate(3), 1u);
  EXPECT_EQ(mg.ErrorBound(), 0u);
}

TEST(MisraGriesTest, ClassicDecrementSemantics) {
  // capacity 2, stream a b c: inserting c decrements a and b to zero.
  MisraGries mg(2);
  mg.Update(10);
  mg.Update(20);
  mg.Update(30);
  EXPECT_EQ(mg.size(), 0u);
  EXPECT_EQ(mg.LowerEstimate(10), 0u);
  EXPECT_EQ(mg.ErrorBound(), 1u);  // (3 - 0) / 3.
}

TEST(MisraGriesTest, WeightedUpdateEqualsRepeatedUnit) {
  MisraGries weighted(3);
  MisraGries repeated(3);
  const std::vector<std::pair<uint64_t, uint64_t>> updates = {
      {1, 5}, {2, 3}, {3, 4}, {4, 2}, {1, 1}};
  for (const auto& [item, weight] : updates) {
    weighted.Update(item, weight);
    for (uint64_t i = 0; i < weight; ++i) repeated.Update(item);
  }
  // Not necessarily identical states (weighted prunes in bigger steps),
  // but both must honor the error bound with the same n.
  EXPECT_EQ(weighted.n(), repeated.n());
  EXPECT_LE(weighted.ErrorBound(), weighted.n() / 4);
  EXPECT_LE(repeated.ErrorBound(), repeated.n() / 4);
}

TEST(MisraGriesTest, ZeroWeightUpdateIsNoOp) {
  MisraGries mg(2);
  mg.Update(1, 0);
  EXPECT_EQ(mg.n(), 0u);
  EXPECT_EQ(mg.size(), 0u);
}

TEST(MisraGriesTest, LowerBoundNeverExceedsTruth) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 50000;
  spec.universe = 4096;
  const auto stream = GenerateStream(spec, 21);
  const auto truth = TrueCounts(stream);

  MisraGries mg(64);
  for (uint64_t item : stream) mg.Update(item);

  for (const Counter& counter : mg.Counters()) {
    ASSERT_LE(counter.count, truth.at(counter.item));
  }
}

TEST(MisraGriesTest, ErrorBoundCoversEveryItem) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 50000;
  spec.universe = 4096;
  const auto stream = GenerateStream(spec, 22);
  const auto truth = TrueCounts(stream);

  MisraGries mg(64);
  for (uint64_t item : stream) mg.Update(item);

  const uint64_t error = mg.ErrorBound();
  EXPECT_LE(error, mg.n() / 65);
  for (const auto& [item, count] : truth) {
    ASSERT_LE(count, mg.LowerEstimate(item) + error) << "item " << item;
  }
}

TEST(MisraGriesTest, KMajorityItemsAlwaysMonitored) {
  // Every item with frequency > n / (capacity + 1) must be present.
  StreamSpec spec;
  spec.kind = StreamKind::kAdversarialMg;
  spec.n = 40000;
  spec.heavy_items = 10;
  const auto stream = GenerateStream(spec, 23);
  const auto truth = TrueCounts(stream);

  MisraGries mg(20);
  for (uint64_t item : stream) mg.Update(item);

  const uint64_t threshold = mg.n() / 21 + 1;
  for (const auto& [item, count] : truth) {
    if (count >= threshold) {
      EXPECT_GT(mg.LowerEstimate(item), 0u) << "lost heavy item " << item;
    }
  }
}

TEST(MisraGriesTest, FrequentItemsHasNoFalseNegatives) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 30000;
  spec.universe = 1024;
  const auto stream = GenerateStream(spec, 24);
  const auto truth = TrueCounts(stream);

  MisraGries mg(32);
  for (uint64_t item : stream) mg.Update(item);

  const uint64_t threshold = stream.size() / 50;
  const auto reported = mg.FrequentItems(threshold);
  for (const auto& [item, count] : truth) {
    if (count < threshold) continue;
    const bool found =
        std::any_of(reported.begin(), reported.end(),
                    [item](const Counter& c) { return c.item == item; });
    EXPECT_TRUE(found) << "missed item " << item << " count " << count;
  }
}

TEST(MisraGriesTest, MergePreservesBoundsAcrossShards) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 60000;
  spec.universe = 2048;
  const auto stream = GenerateStream(spec, 25);
  const auto truth = TrueCounts(stream);
  const auto shards =
      PartitionStream(stream, 8, PartitionPolicy::kContiguous);

  std::vector<MisraGries> parts;
  for (const auto& shard : shards) {
    MisraGries mg(48);
    for (uint64_t item : shard) mg.Update(item);
    parts.push_back(mg);
  }
  MisraGries merged = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) merged.Merge(parts[i]);

  EXPECT_EQ(merged.n(), stream.size());
  EXPECT_LE(merged.size(), 48u);
  const uint64_t error = merged.ErrorBound();
  EXPECT_LE(error, merged.n() / 49);
  for (const auto& [item, count] : truth) {
    ASSERT_LE(merged.LowerEstimate(item), count);
    ASSERT_LE(count, merged.LowerEstimate(item) + error);
  }
}

TEST(MisraGriesTest, MergeCafaroPreservesBoundsAcrossShards) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 60000;
  spec.universe = 2048;
  const auto stream = GenerateStream(spec, 26);
  const auto truth = TrueCounts(stream);
  const auto shards = PartitionStream(stream, 8, PartitionPolicy::kByValue);

  std::vector<MisraGries> parts;
  for (const auto& shard : shards) {
    MisraGries mg(48);
    for (uint64_t item : shard) mg.Update(item);
    parts.push_back(mg);
  }
  MisraGries merged = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) merged.MergeCafaro(parts[i]);

  EXPECT_EQ(merged.n(), stream.size());
  EXPECT_LE(merged.size(), 48u);
  const uint64_t error = merged.ErrorBound();
  EXPECT_LE(error, merged.n() / 49);
  for (const auto& [item, count] : truth) {
    ASSERT_LE(merged.LowerEstimate(item), count);
    ASSERT_LE(count, merged.LowerEstimate(item) + error);
  }
}

// ---------------------------------------------------------------------------
// Worked example from Cafaro et al. §5.1 (k = 5). Note: the paper lists
// element 10 of S2 with frequency 45 in the input table but uses 40 in
// every subsequent step; we follow the arithmetic (40).
// ---------------------------------------------------------------------------

std::vector<Counter> PaperS1() {
  return {{2, 4}, {3, 11}, {4, 22}, {5, 33}};
}
std::vector<Counter> PaperS2() {
  return {{7, 10}, {8, 20}, {9, 30}, {10, 40}};
}

TEST(MisraGriesPaperExampleTest, AgarwalMergeMatchesSection511) {
  MisraGries s1 = MisraGries::FromCounters(4, PaperS1(), 70);
  MisraGries s2 = MisraGries::FromCounters(4, PaperS2(), 100);
  s1.Merge(s2);

  std::map<uint64_t, uint64_t> result;
  for (const Counter& c : s1.Counters()) result[c.item] = c.count;
  const std::map<uint64_t, uint64_t> expected = {
      {4, 2}, {9, 10}, {5, 13}, {10, 20}};
  EXPECT_EQ(result, expected);
}

TEST(MisraGriesPaperExampleTest, CafaroMergeMatchesSection512) {
  MisraGries s1 = MisraGries::FromCounters(4, PaperS1(), 70);
  MisraGries s2 = MisraGries::FromCounters(4, PaperS2(), 100);
  s1.MergeCafaro(s2);

  std::map<uint64_t, uint64_t> result;
  for (const Counter& c : s1.Counters()) result[c.item] = c.count;
  const std::map<uint64_t, uint64_t> expected = {
      {4, 2}, {9, 14}, {5, 23}, {10, 31}};
  EXPECT_EQ(result, expected);
}

TEST(MisraGriesPaperExampleTest, ClosedFormMatchesSection512) {
  const auto merged = CafaroClosedFormMergeFrequent(PaperS1(), PaperS2(), 5);
  const std::vector<Counter> expected = {
      {4, 2}, {9, 14}, {5, 23}, {10, 31}};
  EXPECT_EQ(merged, expected);
}

TEST(MisraGriesPaperExampleTest, TotalErrorsMatchPaper) {
  // Total error vs the combined summary: Agarwal = 80, Cafaro = 55.
  const auto combined = CombineCounters(PaperS1(), PaperS2());
  std::map<uint64_t, uint64_t> combined_counts;
  for (const Counter& c : combined) combined_counts[c.item] = c.count;

  const auto total_error = [&combined_counts](const MisraGries& merged) {
    uint64_t error = 0;
    for (const Counter& c : merged.Counters()) {
      error += combined_counts.at(c.item) - c.count;
    }
    return error;
  };

  MisraGries agarwal = MisraGries::FromCounters(4, PaperS1(), 70);
  agarwal.Merge(MisraGries::FromCounters(4, PaperS2(), 100));
  EXPECT_EQ(total_error(agarwal), 80u);

  MisraGries cafaro = MisraGries::FromCounters(4, PaperS1(), 70);
  cafaro.MergeCafaro(MisraGries::FromCounters(4, PaperS2(), 100));
  EXPECT_EQ(total_error(cafaro), 55u);
}

TEST(MisraGriesTest, ForEpsilonSizesCapacity) {
  const MisraGries mg = MisraGries::ForEpsilon(0.01);
  EXPECT_EQ(mg.capacity(), 100);
}

TEST(MisraGriesTest, FromCountersRoundTrips) {
  const std::vector<Counter> counters = {{1, 5}, {2, 3}};
  const MisraGries mg = MisraGries::FromCounters(4, counters, 10);
  EXPECT_EQ(mg.n(), 10u);
  EXPECT_EQ(mg.LowerEstimate(1), 5u);
  EXPECT_EQ(mg.LowerEstimate(2), 3u);
  EXPECT_EQ(mg.ErrorBound(), (10u - 8u) / 5u);
}

TEST(MisraGriesDeathTest, InvalidConstruction) {
  EXPECT_DEATH(MisraGries(0), "capacity");
  EXPECT_DEATH(MisraGries::ForEpsilon(0.0), "epsilon");
  EXPECT_DEATH(MisraGries::ForEpsilon(1.5), "epsilon");
}

TEST(MisraGriesDeathTest, MergeRequiresEqualCapacity) {
  MisraGries a(4);
  MisraGries b(5);
  EXPECT_DEATH(a.Merge(b), "different capacities");
  EXPECT_DEATH(a.MergeCafaro(b), "different capacities");
}

TEST(MisraGriesDeathTest, FromCountersValidates) {
  EXPECT_DEATH(
      MisraGries::FromCounters(1, {{1, 2}, {2, 2}}, 10), "too many");
  EXPECT_DEATH(MisraGries::FromCounters(4, {{1, 20}}, 10), "exceed");
}

}  // namespace
}  // namespace mergeable
