// Worst-case update latency assertion for the deamortized summary: over
// a million updates of a bursty stream, no single Update may take more
// than a generous multiple of the median. This is the operational claim
// behind the two-table design — the drain is paid in bounded strides on
// every update, so there is no O(k) rebuild spike to absorb.
//
// Wall-clock assertions are inherently noisy, so the test is
// deliberately forgiving: it takes the best of three attempts, the
// ceiling is max(500 x median, 1.5 ms), and the whole thing is skipped
// under sanitizers (instrumented builds distort timing by orders of
// magnitude). It is registered under the `latency` ctest label so CI
// can run it in an isolated, non-parallel step.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/frequency/deamortized_space_saving.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

bool BuiltWithSanitizers() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

struct AttemptResult {
  uint64_t median_ns = 0;
  uint64_t max_ns = 0;
};

// One full pass: 1M updates of a bursty stream (skewed base, periodic
// floods of novel items — the pattern that forces constant evictions
// and keeps the passive table draining), timing each Update.
AttemptResult RunAttempt(uint64_t seed) {
  constexpr uint64_t kUpdates = 1000000;
  constexpr double kEpsilon = 1e-3;
  using Clock = std::chrono::steady_clock;

  Rng rng(seed);
  DeamortizedSpaceSaving d = DeamortizedSpaceSaving::ForEpsilon(kEpsilon);
  std::vector<uint64_t> samples;
  samples.reserve(kUpdates);
  for (uint64_t step = 0; step < kUpdates; ++step) {
    uint64_t item;
    if ((step / 4096) % 4 == 3) {
      item = (uint64_t{1} << 32) + (step << 6) + rng.UniformInt(uint64_t{8});
    } else {
      item = rng.UniformInt(rng.UniformInt(uint64_t{4096}) + 1);
    }
    const auto t0 = Clock::now();
    d.Update(item);
    const auto t1 = Clock::now();
    samples.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  // The deamortization invariant itself — maintenance never fell behind
  // the quota — is timing-independent and must hold on every attempt.
  EXPECT_EQ(d.maintenance_stalls(), 0u);

  AttemptResult result;
  result.max_ns = *std::max_element(samples.begin(), samples.end());
  auto mid = samples.begin() + samples.size() / 2;
  std::nth_element(samples.begin(), mid, samples.end());
  result.median_ns = *mid;
  return result;
}

TEST(LatencyTest, WorstCaseUpdateStaysNearTheMedian) {
  if (BuiltWithSanitizers()) {
    GTEST_SKIP() << "timing assertions are meaningless under sanitizers";
  }
  // Three attempts, best max wins: a single scheduler preemption can
  // poison any one run, but a true O(k) spike in Update would show up
  // in all of them.
  constexpr int kAttempts = 3;
  AttemptResult best;
  best.max_ns = ~uint64_t{0};
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const AttemptResult r = RunAttempt(0xbeef + static_cast<uint64_t>(attempt));
    if (r.max_ns < best.max_ns) best = r;
  }
  const uint64_t ceiling =
      std::max<uint64_t>(500 * std::max<uint64_t>(best.median_ns, 1),
                         1500000);  // 1.5 ms floor for coarse clocks.
  EXPECT_LE(best.max_ns, ceiling)
      << "median " << best.median_ns << " ns, max " << best.max_ns << " ns";
}

}  // namespace
}  // namespace mergeable
