#include "mergeable/frequency/topk.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/frequency/misra_gries.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/stream/generators.h"
#include "mergeable/stream/partition.h"

namespace mergeable {
namespace {

std::vector<uint64_t> SkewedStream(uint64_t seed) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 50000;
  spec.universe = 2048;
  spec.alpha = 1.2;
  return GenerateStream(spec, seed);
}

// True top-k item set from exact counts (ties broken by item id, as in
// ExactCounts).
std::set<uint64_t> TrueTopK(const std::vector<uint64_t>& stream, size_t k) {
  const auto counts = ExactCounts(stream);
  std::set<uint64_t> top;
  for (size_t i = 0; i < std::min(k, counts.size()); ++i) {
    top.insert(counts[i].first);
  }
  return top;
}

TEST(TopKTest, ExactOnSmallSummary) {
  MisraGries mg(8);
  for (int i = 0; i < 30; ++i) mg.Update(1);
  for (int i = 0; i < 20; ++i) mg.Update(2);
  for (int i = 0; i < 10; ++i) mg.Update(3);
  const auto top = TopK(mg, 2);
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].item, 1u);
  EXPECT_TRUE(top[0].guaranteed);
  EXPECT_EQ(top[1].item, 2u);
  EXPECT_TRUE(top[1].guaranteed);
  EXPECT_EQ(top[0].lower, 30u);
  EXPECT_EQ(top[0].upper, 30u);
}

TEST(TopKTest, GuaranteedEntriesAreTrulyTopK) {
  const auto stream = SkewedStream(1);
  SpaceSaving ss(128);
  for (uint64_t item : stream) ss.Update(item);

  constexpr size_t kK = 10;
  const auto truth = TrueTopK(stream, kK);
  const auto top = TopK(ss, kK);
  for (const TopKEntry& entry : top) {
    if (!entry.guaranteed) continue;
    EXPECT_TRUE(truth.count(entry.item) == 1)
        << "guaranteed item " << entry.item << " is not in the true top-k";
  }
}

TEST(TopKTest, CandidateSetCoversTrueTopK) {
  const auto stream = SkewedStream(2);
  MisraGries mg(128);
  for (uint64_t item : stream) mg.Update(item);

  constexpr size_t kK = 10;
  const auto truth = TrueTopK(stream, kK);
  const auto top = TopK(mg, kK);
  for (uint64_t item : truth) {
    const bool present = std::any_of(
        top.begin(), top.end(),
        [item](const TopKEntry& entry) { return entry.item == item; });
    EXPECT_TRUE(present) << "true top-k item " << item << " missing";
  }
}

TEST(TopKTest, GuaranteesSurviveMerging) {
  const auto stream = SkewedStream(3);
  const auto shards = PartitionStream(stream, 8, PartitionPolicy::kRandom, 4);
  SpaceSaving merged(128);
  bool first = true;
  for (const auto& shard : shards) {
    SpaceSaving part(128);
    for (uint64_t item : shard) part.Update(item);
    if (first) {
      merged = part;
      first = false;
    } else {
      merged.Merge(part);
    }
  }
  constexpr size_t kK = 5;
  const auto truth = TrueTopK(stream, kK);
  for (const TopKEntry& entry : TopK(merged, kK)) {
    if (entry.guaranteed) {
      EXPECT_TRUE(truth.count(entry.item) == 1) << entry.item;
    }
  }
}

TEST(TopKTest, BoundsAreOrderedAndConsistent) {
  const auto stream = SkewedStream(5);
  MisraGries mg(64);
  for (uint64_t item : stream) mg.Update(item);
  const auto top = TopK(mg, 8);
  uint64_t previous_upper = ~uint64_t{0};
  for (const TopKEntry& entry : top) {
    EXPECT_LE(entry.lower, entry.upper);
    EXPECT_LE(entry.upper, previous_upper);  // Ranked by upper bound.
    previous_upper = entry.upper;
  }
}

TEST(TopKTest, KLargerThanSummary) {
  MisraGries mg(4);
  mg.Update(1);
  mg.Update(2);
  const auto top = TopK(mg, 100);
  EXPECT_EQ(top.size(), 2u);
  for (const TopKEntry& entry : top) EXPECT_TRUE(entry.guaranteed);
}

TEST(TopKTest, EmptySummary) {
  MisraGries mg(4);
  EXPECT_TRUE(TopK(mg, 3).empty());
}

TEST(TopKTest, ZeroK) {
  MisraGries mg(4);
  mg.Update(1);
  // k = 0: no thresholds; everything is a candidate, nothing guaranteed
  // beyond the degenerate "summary smaller than k" rule.
  const auto top = TopK(mg, 0);
  EXPECT_EQ(top.size(), 1u);
}

}  // namespace
}  // namespace mergeable
