// Randomized differential tests for the frequency summaries: thousands
// of small random scenarios (stream + partition + merge plan) where the
// guarantees are checked against brute-force exact counts. Small cases
// hit the edge geometry (empty summaries, single counters, all-ties,
// capacity-1 prunes) that the big statistical tests glide over.

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/frequency/exact_counter.h"
#include "mergeable/frequency/misra_gries.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/frequency/space_saving_bucket.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

struct Scenario {
  std::vector<std::vector<uint64_t>> shards;
  std::map<uint64_t, uint64_t> truth;
  uint64_t n = 0;
};

Scenario RandomScenario(Rng& rng) {
  Scenario scenario;
  const auto shard_count = 1 + rng.UniformInt(uint64_t{5});
  const auto universe = 1 + rng.UniformInt(uint64_t{15});
  for (uint64_t s = 0; s < shard_count; ++s) {
    std::vector<uint64_t> shard;
    const auto items = rng.UniformInt(uint64_t{40});
    for (uint64_t i = 0; i < items; ++i) {
      // Skew: pick twice, keep the smaller id.
      uint64_t item = rng.UniformInt(universe);
      item = rng.UniformInt(item + 1);
      shard.push_back(item);
      ++scenario.truth[item];
      ++scenario.n;
    }
    scenario.shards.push_back(std::move(shard));
  }
  return scenario;
}

TEST(FrequencyFuzzTest, MisraGriesBoundsAcrossRandomScenarios) {
  Rng rng(101);
  for (int trial = 0; trial < 3000; ++trial) {
    const Scenario scenario = RandomScenario(rng);
    const int capacity = 1 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    const bool use_cafaro = rng.Bernoulli(0.5);

    MisraGries merged(capacity);
    for (const auto& shard : scenario.shards) {
      MisraGries part(capacity);
      for (uint64_t item : shard) part.Update(item);
      if (use_cafaro) {
        merged.MergeCafaro(part);
      } else {
        merged.Merge(part);
      }
    }
    ASSERT_EQ(merged.n(), scenario.n) << "trial " << trial;
    ASSERT_LE(merged.size(), static_cast<size_t>(capacity));
    const uint64_t error = merged.ErrorBound();
    ASSERT_LE(error, scenario.n / static_cast<uint64_t>(capacity + 1));
    for (const auto& [item, count] : scenario.truth) {
      ASSERT_LE(merged.LowerEstimate(item), count)
          << "trial " << trial << " item " << item;
      ASSERT_LE(count, merged.LowerEstimate(item) + error)
          << "trial " << trial << " item " << item;
    }
  }
}

TEST(FrequencyFuzzTest, SpaceSavingBoundsAcrossRandomScenarios) {
  Rng rng(102);
  for (int trial = 0; trial < 3000; ++trial) {
    const Scenario scenario = RandomScenario(rng);
    const int capacity = 2 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    const bool use_cafaro = rng.Bernoulli(0.5);

    SpaceSaving merged(capacity);
    for (const auto& shard : scenario.shards) {
      SpaceSaving part(capacity);
      for (uint64_t item : shard) part.Update(item);
      if (use_cafaro) {
        merged.MergeCafaro(part);
      } else {
        merged.Merge(part);
      }
    }
    ASSERT_EQ(merged.n(), scenario.n) << "trial " << trial;
    ASSERT_LE(merged.size(), static_cast<size_t>(capacity));
    for (const auto& [item, count] : scenario.truth) {
      ASSERT_LE(merged.LowerEstimate(item), count)
          << "trial " << trial << " item " << item;
      ASSERT_LE(count, merged.UpperEstimate(item))
          << "trial " << trial << " item " << item;
    }
    // k-majority items must be monitored (Cafaro Thm 4.4 / MG classic).
    const uint64_t threshold =
        scenario.n / static_cast<uint64_t>(capacity) + 1;
    for (const auto& [item, count] : scenario.truth) {
      if (count >= threshold) {
        ASSERT_GT(merged.Count(item), 0u)
            << "trial " << trial << " lost k-majority item " << item;
      }
    }
  }
}

TEST(FrequencyFuzzTest, BucketAndHeapSpaceSavingAgreeOnRandomStreams) {
  Rng rng(103);
  for (int trial = 0; trial < 2000; ++trial) {
    const int capacity = 2 + static_cast<int>(rng.UniformInt(uint64_t{8}));
    const auto length = rng.UniformInt(uint64_t{120});
    SpaceSaving heap(capacity);
    SpaceSavingBucket bucket(capacity);
    for (uint64_t i = 0; i < length; ++i) {
      uint64_t item = rng.UniformInt(uint64_t{12});
      item = rng.UniformInt(item + 1);
      heap.Update(item);
      bucket.Update(item);
    }
    ASSERT_EQ(heap.n(), bucket.n());
    ASSERT_EQ(heap.size(), bucket.size()) << "trial " << trial;
    ASSERT_EQ(heap.MinCount(), bucket.MinCount()) << "trial " << trial;
    // Count multisets must match exactly.
    std::multiset<uint64_t> heap_counts;
    std::multiset<uint64_t> bucket_counts;
    for (const Counter& c : heap.Counters()) heap_counts.insert(c.count);
    for (const Counter& c : bucket.Counters()) bucket_counts.insert(c.count);
    ASSERT_EQ(heap_counts, bucket_counts) << "trial " << trial;
  }
}

TEST(FrequencyFuzzTest, MergeOrderNeverBreaksTheBound) {
  // The same parts merged in random orders (random binary trees) must
  // all satisfy the bound — mergeability is order-independence of the
  // guarantee, not of the exact state.
  Rng rng(104);
  for (int trial = 0; trial < 500; ++trial) {
    const Scenario scenario = RandomScenario(rng);
    const int capacity = 1 + static_cast<int>(rng.UniformInt(uint64_t{5}));
    std::vector<MisraGries> parts;
    for (const auto& shard : scenario.shards) {
      MisraGries part(capacity);
      for (uint64_t item : shard) part.Update(item);
      parts.push_back(std::move(part));
    }
    // Random merge order.
    while (parts.size() > 1) {
      const size_t a = rng.UniformInt(parts.size());
      size_t b = rng.UniformInt(parts.size() - 1);
      if (b >= a) ++b;
      parts[a].Merge(parts[b]);
      std::swap(parts[b], parts.back());
      parts.pop_back();
    }
    const MisraGries& merged = parts.front();
    const uint64_t error = merged.ErrorBound();
    for (const auto& [item, count] : scenario.truth) {
      ASSERT_LE(merged.LowerEstimate(item), count);
      ASSERT_LE(count, merged.LowerEstimate(item) + error);
    }
  }
}

TEST(FrequencyFuzzTest, ExactCounterAgreesWithTruthAlways) {
  Rng rng(105);
  for (int trial = 0; trial < 1000; ++trial) {
    const Scenario scenario = RandomScenario(rng);
    ExactCounter merged;
    for (const auto& shard : scenario.shards) {
      ExactCounter part;
      for (uint64_t item : shard) part.Update(item);
      merged.Merge(part);
    }
    ASSERT_EQ(merged.n(), scenario.n);
    for (const auto& [item, count] : scenario.truth) {
      ASSERT_EQ(merged.Count(item), count);
    }
  }
}

}  // namespace
}  // namespace mergeable
