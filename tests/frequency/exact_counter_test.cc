#include "mergeable/frequency/exact_counter.h"

#include <gtest/gtest.h>

#include "mergeable/core/merge_driver.h"
#include "mergeable/stream/generators.h"
#include "mergeable/stream/partition.h"

namespace mergeable {
namespace {

static_assert(StreamSummary<ExactCounter, uint64_t>);

TEST(ExactCounterTest, CountsExactly) {
  ExactCounter counter;
  counter.Update(1);
  counter.Update(1);
  counter.Update(2, 5);
  EXPECT_EQ(counter.n(), 7u);
  EXPECT_EQ(counter.Count(1), 2u);
  EXPECT_EQ(counter.Count(2), 5u);
  EXPECT_EQ(counter.Count(3), 0u);
  EXPECT_EQ(counter.LowerEstimate(1), counter.UpperEstimate(1));
}

TEST(ExactCounterTest, ZeroWeightIsNoOp) {
  ExactCounter counter;
  counter.Update(9, 0);
  EXPECT_EQ(counter.n(), 0u);
  EXPECT_EQ(counter.size(), 0u);
}

TEST(ExactCounterTest, MergeAddsCounts) {
  ExactCounter a;
  ExactCounter b;
  a.Update(1, 3);
  b.Update(1, 4);
  b.Update(2, 1);
  a.Merge(b);
  EXPECT_EQ(a.n(), 8u);
  EXPECT_EQ(a.Count(1), 7u);
  EXPECT_EQ(a.Count(2), 1u);
}

TEST(ExactCounterTest, MergedEqualsSinglePassOnAnyTopology) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 20000;
  spec.universe = 512;
  const auto stream = GenerateStream(spec, 91);

  ExactCounter single;
  for (uint64_t item : stream) single.Update(item);

  for (MergeTopology topology : kAllTopologies) {
    const auto shards =
        PartitionStream(stream, 9, PartitionPolicy::kRoundRobin);
    auto parts = SummarizeShards(shards, [] { return ExactCounter(); });
    Rng rng(92);
    const ExactCounter merged = MergeAll(std::move(parts), topology, &rng);
    ASSERT_EQ(merged.n(), single.n());
    ASSERT_EQ(merged.Counters(), single.Counters()) << ToString(topology);
  }
}

TEST(ExactCounterTest, FrequentItemsThreshold) {
  ExactCounter counter;
  counter.Update(1, 10);
  counter.Update(2, 5);
  counter.Update(3, 1);
  const auto frequent = counter.FrequentItems(5);
  ASSERT_EQ(frequent.size(), 2u);
  EXPECT_EQ(frequent[0], (Counter{1, 10}));
  EXPECT_EQ(frequent[1], (Counter{2, 5}));
}

TEST(ExactCounterTest, CountersSortedDescending) {
  ExactCounter counter;
  counter.Update(5, 1);
  counter.Update(6, 3);
  counter.Update(7, 2);
  const auto counters = counter.Counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].count, 3u);
  EXPECT_EQ(counters[1].count, 2u);
  EXPECT_EQ(counters[2].count, 1u);
}

}  // namespace
}  // namespace mergeable
