#include "mergeable/frequency/space_saving_bucket.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/frequency/space_saving.h"
#include "mergeable/stream/generators.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

std::vector<uint64_t> SortedCountsOf(const std::vector<Counter>& counters) {
  std::vector<uint64_t> counts;
  counts.reserve(counters.size());
  for (const Counter& c : counters) counts.push_back(c.count);
  std::sort(counts.begin(), counts.end());
  return counts;
}

TEST(SpaceSavingBucketTest, SmallStreamExact) {
  SpaceSavingBucket ss(4);
  for (uint64_t item : {1u, 1u, 2u, 3u, 1u}) ss.Update(item);
  EXPECT_EQ(ss.n(), 5u);
  EXPECT_EQ(ss.Count(1), 3u);
  EXPECT_EQ(ss.Count(2), 1u);
  EXPECT_EQ(ss.Count(3), 1u);
  EXPECT_EQ(ss.MinCount(), 0u);  // Not full.
  EXPECT_EQ(ss.size(), 3u);
}

TEST(SpaceSavingBucketTest, EvictionInheritsMin) {
  SpaceSavingBucket ss(2);
  ss.Update(1);
  ss.Update(2);
  ss.Update(3);  // Evicts a count-1 entry.
  EXPECT_EQ(ss.Count(3), 2u);
  EXPECT_EQ(ss.LowerEstimate(3), 1u);
  EXPECT_EQ(ss.size(), 2u);
}

TEST(SpaceSavingBucketTest, SumOfCountersEqualsN) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 30000;
  spec.universe = 1024;
  const auto stream = GenerateStream(spec, 81);
  SpaceSavingBucket ss(64);
  for (uint64_t item : stream) ss.Update(item);
  uint64_t sum = 0;
  for (const Counter& c : ss.Counters()) sum += c.count;
  EXPECT_EQ(sum, ss.n());
}

class BucketVsHeapTest : public ::testing::TestWithParam<int> {};

TEST_P(BucketVsHeapTest, CountMultisetMatchesHeapImplementation) {
  // Whichever min-count entry is evicted, the multiset of counter
  // values evolves identically; the bucket structure must match the
  // heap-based SpaceSaving exactly on that invariant.
  const int capacity = GetParam();
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 20000;
  spec.universe = 600;
  spec.alpha = 1.0;
  const auto stream = GenerateStream(spec, 82);

  SpaceSavingBucket bucket(capacity);
  SpaceSaving heap(capacity);
  for (uint64_t item : stream) {
    bucket.Update(item);
    heap.Update(item);
  }
  EXPECT_EQ(SortedCountsOf(bucket.Counters()), SortedCountsOf(heap.Counters()));
  EXPECT_EQ(bucket.MinCount(), heap.MinCount());
  EXPECT_EQ(bucket.n(), heap.n());
}

TEST_P(BucketVsHeapTest, BoundsHoldForEveryItem) {
  const int capacity = GetParam();
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 20000;
  spec.universe = 600;
  const auto stream = GenerateStream(spec, 83);
  std::map<uint64_t, uint64_t> truth;
  for (uint64_t item : stream) ++truth[item];

  SpaceSavingBucket ss(capacity);
  for (uint64_t item : stream) ss.Update(item);

  EXPECT_LE(ss.MinCount(), ss.n() / static_cast<uint64_t>(capacity));
  for (const auto& [item, count] : truth) {
    ASSERT_LE(ss.LowerEstimate(item), count) << "item " << item;
    ASSERT_LE(count, ss.UpperEstimate(item)) << "item " << item;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, BucketVsHeapTest,
                         ::testing::Values(2, 3, 8, 33, 128));

TEST(SpaceSavingBucketTest, ManyDistinctThenRepeats) {
  SpaceSavingBucket ss(8);
  for (uint64_t item = 0; item < 100; ++item) ss.Update(item);
  for (int i = 0; i < 50; ++i) ss.Update(1000);
  EXPECT_GE(ss.Count(1000), 50u);
  EXPECT_EQ(ss.size(), 8u);
}

TEST(SpaceSavingBucketTest, SingleRepeatedItem) {
  SpaceSavingBucket ss(4);
  for (int i = 0; i < 1000; ++i) ss.Update(7);
  EXPECT_EQ(ss.Count(7), 1000u);
  EXPECT_EQ(ss.LowerEstimate(7), 1000u);
  EXPECT_EQ(ss.size(), 1u);
}

TEST(SpaceSavingBucketTest, ToSpaceSavingPreservesCountersAndN) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 10000;
  spec.universe = 300;
  const auto stream = GenerateStream(spec, 84);
  SpaceSavingBucket bucket(32);
  for (uint64_t item : stream) bucket.Update(item);

  const SpaceSaving converted = bucket.ToSpaceSaving();
  EXPECT_EQ(converted.n(), bucket.n());
  std::map<uint64_t, uint64_t> bucket_counters;
  for (const Counter& c : bucket.Counters()) bucket_counters[c.item] = c.count;
  std::map<uint64_t, uint64_t> converted_counters;
  for (const Counter& c : converted.Counters()) {
    converted_counters[c.item] = c.count;
  }
  EXPECT_EQ(bucket_counters, converted_counters);
}

TEST(SpaceSavingBucketTest, ConvertedSummaryMergesLikeNative) {
  // End-to-end: stream through bucket summaries, convert, merge, and
  // check the epsilon bound against exact counts.
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 40000;
  spec.universe = 2048;
  const auto stream = GenerateStream(spec, 85);
  std::map<uint64_t, uint64_t> truth;
  for (uint64_t item : stream) ++truth[item];

  constexpr int kCapacity = 50;
  SpaceSaving merged(kCapacity);
  bool first = true;
  for (int s = 0; s < 8; ++s) {
    SpaceSavingBucket shard(kCapacity);
    for (size_t i = static_cast<size_t>(s); i < stream.size(); i += 8) {
      shard.Update(stream[i]);
    }
    if (first) {
      merged = shard.ToSpaceSaving();
      first = false;
    } else {
      merged.Merge(shard.ToSpaceSaving());
    }
  }
  EXPECT_EQ(merged.n(), stream.size());
  const uint64_t eps_n = stream.size() / kCapacity;
  for (const auto& [item, count] : truth) {
    const uint64_t estimate = merged.Count(item);
    const uint64_t error =
        estimate > count ? estimate - count : count - estimate;
    ASSERT_LE(error, eps_n) << "item " << item;
  }
}

TEST(SpaceSavingBucketTest, AlternatingGrowth) {
  // Stress bucket creation/removal: counts split and re-join buckets.
  SpaceSavingBucket ss(16);
  Rng rng(86);
  for (int round = 0; round < 5000; ++round) {
    ss.Update(rng.UniformInt(uint64_t{24}));
  }
  uint64_t sum = 0;
  uint64_t last = ~uint64_t{0};
  for (const Counter& c : ss.Counters()) {
    sum += c.count;
    EXPECT_LE(c.count, last);  // Descending order.
    last = c.count;
  }
  EXPECT_EQ(sum, ss.n());
}

TEST(SpaceSavingBucketDeathTest, InvalidCapacity) {
  EXPECT_DEATH(SpaceSavingBucket(1), "capacity");
}

}  // namespace
}  // namespace mergeable
