#include "mergeable/frequency/deamortized_space_saving.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/core/thread_pool.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/stream/generators.h"
#include "mergeable/util/bytes.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

std::map<uint64_t, uint64_t> TrueCounts(const std::vector<uint64_t>& stream) {
  std::map<uint64_t, uint64_t> counts;
  for (uint64_t item : stream) ++counts[item];
  return counts;
}

template <typename S>
std::vector<uint8_t> Encode(const S& summary) {
  ByteWriter writer;
  summary.EncodeTo(writer);
  return writer.TakeBytes();
}

template <typename S>
S DecodeOrDie(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  auto decoded = S::DecodeFrom(reader);
  EXPECT_TRUE(decoded.has_value());
  return std::move(*decoded);
}

// Every invariant the class promises, checked against exact counts:
// counts are lower bounds, count + slack is an upper bound, untracked
// mass is below slack, and slack is below n / (k+1).
void CheckAgainstExact(const DeamortizedSpaceSaving& summary,
                       const std::map<uint64_t, uint64_t>& exact,
                       uint64_t n) {
  ASSERT_EQ(summary.n(), n);
  const uint64_t slack = summary.UnderSlack();
  EXPECT_LE(slack, n / static_cast<uint64_t>(summary.guarantee() + 1));
  uint64_t tracked_sum = 0;
  for (const Counter& counter : summary.Counters()) {
    const auto it = exact.find(counter.item);
    const uint64_t truth = it == exact.end() ? 0 : it->second;
    EXPECT_LE(counter.count, truth) << "item " << counter.item;
    EXPECT_GE(counter.count + slack, truth) << "item " << counter.item;
    tracked_sum += counter.count;
  }
  EXPECT_LE(tracked_sum, n);
  for (const auto& [item, truth] : exact) {
    EXPECT_LE(summary.Count(item), truth);
    EXPECT_GE(summary.UpperEstimate(item), truth);
    EXPECT_LE(summary.LowerEstimate(item), truth);
    if (summary.Count(item) == 0) {
      EXPECT_LE(truth, slack) << "untracked item " << item;
    }
  }
}

TEST(DeamortizedSpaceSavingTest, SmallStreamIsExact) {
  DeamortizedSpaceSaving summary(8);  // k = 4, C = 8.
  for (uint64_t item : {1u, 1u, 2u, 3u, 1u}) summary.Update(item);
  EXPECT_EQ(summary.n(), 5u);
  EXPECT_EQ(summary.Count(1), 3u);
  EXPECT_EQ(summary.Count(2), 1u);
  EXPECT_EQ(summary.UnderSlack(), 0u);
  EXPECT_EQ(summary.LowerEstimate(1), 3u);
  EXPECT_EQ(summary.UpperEstimate(1), 3u);
  EXPECT_EQ(summary.swaps(), 0u);
}

TEST(DeamortizedSpaceSavingTest, CapacityNormalization) {
  // The capacity field is interpreted like SS01's: k = max(2, ceil(c/2)).
  EXPECT_EQ(DeamortizedSpaceSaving(2).guarantee(), 2);
  EXPECT_EQ(DeamortizedSpaceSaving(2).capacity(), 4);
  EXPECT_EQ(DeamortizedSpaceSaving(5).guarantee(), 3);
  EXPECT_EQ(DeamortizedSpaceSaving(5).capacity(), 6);
  EXPECT_EQ(DeamortizedSpaceSaving(64).guarantee(), 32);
  EXPECT_EQ(DeamortizedSpaceSaving(64).capacity(), 64);
}

TEST(DeamortizedSpaceSavingTest, ErrorBoundsOnAdversarialStreams) {
  for (const StreamKind kind :
       {StreamKind::kZipf, StreamKind::kUniform, StreamKind::kAdversarialMg,
        StreamKind::kMixed}) {
    StreamSpec spec;
    spec.kind = kind;
    spec.n = 20000;
    spec.universe = 2048;
    const auto stream = GenerateStream(spec, 17);
    const auto exact = TrueCounts(stream);

    DeamortizedSpaceSaving summary(64);
    for (uint64_t item : stream) summary.Update(item);
    CheckAgainstExact(summary, exact, stream.size());
    EXPECT_EQ(summary.maintenance_stalls(), 0u);
    EXPECT_GT(summary.swaps(), 0u);
  }
}

TEST(DeamortizedSpaceSavingTest, WeightedUpdatesRespectBounds) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 5000;
  spec.universe = 512;
  const auto stream = GenerateStream(spec, 99);
  Rng rng(1234);
  std::map<uint64_t, uint64_t> exact;
  uint64_t n = 0;
  DeamortizedSpaceSaving summary(32);
  for (uint64_t item : stream) {
    const uint64_t weight = 1 + rng.UniformInt(7);
    summary.Update(item, weight);
    exact[item] += weight;
    n += weight;
  }
  CheckAgainstExact(summary, exact, n);
}

// The effective state — and therefore every query and the encoding —
// must not depend on how far the incremental drain has progressed.
TEST(DeamortizedSpaceSavingTest, DrainProgressDoesNotChangeObservableState) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 4000;
  spec.universe = 1024;
  const auto stream = GenerateStream(spec, 7);

  DeamortizedSpaceSaving lazy(32);
  DeamortizedSpaceSaving eager(32);
  Rng rng(42);
  for (size_t i = 0; i < stream.size(); ++i) {
    lazy.Update(stream[i]);
    eager.Update(stream[i]);
    // Randomly push the eager instance's drain ahead (or finish it).
    if (rng.Bernoulli(0.1)) eager.MaintenanceStep(1 + rng.UniformInt(64));
    if (rng.Bernoulli(0.01)) eager.FinishMaintenance();
    if (i % 500 == 0) {
      EXPECT_EQ(Encode(lazy), Encode(eager)) << "at update " << i;
    }
    // Spot-check point queries under divergent drain progress.
    if (i % 97 == 0) {
      const uint64_t probe = stream[i];
      EXPECT_EQ(lazy.Count(probe), eager.Count(probe));
      EXPECT_EQ(lazy.UnderSlack(), eager.UnderSlack());
    }
  }
  EXPECT_EQ(Encode(lazy), Encode(eager));
}

TEST(DeamortizedSpaceSavingTest, CodecRoundTripIsByteIdentical) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 10000;
  spec.universe = 700;
  const auto stream = GenerateStream(spec, 3);
  DeamortizedSpaceSaving summary(32);
  for (uint64_t item : stream) summary.Update(item);

  const std::vector<uint8_t> bytes = Encode(summary);
  auto decoded = DecodeOrDie<DeamortizedSpaceSaving>(bytes);
  EXPECT_EQ(Encode(decoded), bytes);  // Canonical fixed point.
  EXPECT_EQ(decoded.n(), summary.n());
  EXPECT_EQ(decoded.UnderSlack(), summary.UnderSlack());
  EXPECT_EQ(decoded.Counters(), summary.Counters());
}

// Byte compatibility, both directions: SpaceSaving decodes this class's
// payloads, and this class decodes SpaceSaving's (applying the R2
// isomorphism so its lower-bound invariants keep holding).
TEST(DeamortizedSpaceSavingTest, ByteCompatibleWithSpaceSaving) {
  StreamSpec spec;
  spec.kind = StreamKind::kMixed;
  spec.n = 15000;
  spec.universe = 1024;
  const auto stream = GenerateStream(spec, 11);
  const auto exact = TrueCounts(stream);

  DeamortizedSpaceSaving deamortized(64);
  SpaceSaving amortized(64);
  for (uint64_t item : stream) {
    deamortized.Update(item);
    amortized.Update(item);
  }

  // D payload -> SpaceSaving: every SpaceSaving query keeps bracketing
  // the truth (counts are lower bounds, so Count + UnderSlack is still
  // the upper estimate SpaceSaving computes).
  auto crossed = DecodeOrDie<SpaceSaving>(Encode(deamortized));
  EXPECT_EQ(crossed.n(), deamortized.n());
  for (const auto& [item, truth] : exact) {
    EXPECT_GE(crossed.UpperEstimate(item), truth);
  }

  // SpaceSaving payload -> D: the isomorphism folds the minimum into
  // theta; bounds hold against the same stream.
  auto back = DecodeOrDie<DeamortizedSpaceSaving>(Encode(amortized));
  EXPECT_EQ(back.n(), amortized.n());
  for (const auto& [item, truth] : exact) {
    EXPECT_GE(back.UpperEstimate(item), truth);
    EXPECT_LE(back.LowerEstimate(item), truth);
  }
  // And the re-encoding is a valid, stable payload.
  const auto bytes = Encode(back);
  auto twice = DecodeOrDie<DeamortizedSpaceSaving>(bytes);
  EXPECT_EQ(Encode(twice), bytes);
}

TEST(DeamortizedSpaceSavingTest, RejectsMalformedPayloads) {
  DeamortizedSpaceSaving summary(8);
  for (uint64_t i = 0; i < 100; ++i) summary.Update(i % 13);
  std::vector<uint8_t> bytes = Encode(summary);

  {  // Truncation.
    std::vector<uint8_t> cut(bytes.begin(), bytes.end() - 1);
    ByteReader reader(cut);
    EXPECT_FALSE(DeamortizedSpaceSaving::DecodeFrom(reader).has_value());
  }
  {  // Trailing garbage.
    std::vector<uint8_t> extra = bytes;
    extra.push_back(0);
    ByteReader reader(extra);
    EXPECT_FALSE(DeamortizedSpaceSaving::DecodeFrom(reader).has_value());
  }
  {  // Bad magic.
    std::vector<uint8_t> bad = bytes;
    bad[0] ^= 0xff;
    ByteReader reader(bad);
    EXPECT_FALSE(DeamortizedSpaceSaving::DecodeFrom(reader).has_value());
  }
}

TEST(DeamortizedSpaceSavingTest, MergePreservesBounds) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 8000;
  spec.universe = 512;

  std::map<uint64_t, uint64_t> exact;
  uint64_t n = 0;
  std::vector<DeamortizedSpaceSaving> shards;
  for (uint64_t shard = 0; shard < 8; ++shard) {
    const auto stream = GenerateStream(spec, 100 + shard);
    DeamortizedSpaceSaving summary(64);
    for (uint64_t item : stream) {
      summary.Update(item);
      ++exact[item];
      ++n;
    }
    shards.push_back(std::move(summary));
  }
  // Balanced merge tree.
  while (shards.size() > 1) {
    std::vector<DeamortizedSpaceSaving> next;
    for (size_t i = 0; i + 1 < shards.size(); i += 2) {
      shards[i].Merge(shards[i + 1]);
      next.push_back(std::move(shards[i]));
    }
    if (shards.size() % 2 == 1) next.push_back(std::move(shards.back()));
    shards = std::move(next);
  }
  CheckAgainstExact(shards[0], exact, n);
}

TEST(DeamortizedSpaceSavingTest, MergeIsCommutativeAtByteLevel) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 6000;
  spec.universe = 256;
  const auto s1 = GenerateStream(spec, 1);
  const auto s2 = GenerateStream(spec, 2);

  DeamortizedSpaceSaving a(32), b(32);
  for (uint64_t item : s1) a.Update(item);
  for (uint64_t item : s2) b.Update(item);

  DeamortizedSpaceSaving ab = DecodeOrDie<DeamortizedSpaceSaving>(Encode(a));
  DeamortizedSpaceSaving ba = DecodeOrDie<DeamortizedSpaceSaving>(Encode(b));
  ab.Merge(b);
  ba.Merge(a);
  EXPECT_EQ(Encode(ab), Encode(ba));
}

// The concurrent wrapper must produce exactly the serial bytes: the
// background drain changes when maintenance happens, never what the
// effective state is.
TEST(DeamortizedConcurrencyTest, ConcurrentMatchesSerialByteForByte) {
  StreamSpec spec;
  spec.kind = StreamKind::kMixed;
  spec.n = 30000;
  spec.universe = 4096;
  const auto stream = GenerateStream(spec, 21);

  DeamortizedSpaceSaving serial(128);
  ThreadPool pool(3);
  ConcurrentDeamortizedSpaceSaving concurrent(128, &pool);
  for (uint64_t item : stream) {
    serial.Update(item);
    concurrent.Update(item);
  }
  concurrent.Flush();
  EXPECT_EQ(Encode(serial), Encode(concurrent));
  EXPECT_EQ(concurrent.maintenance_stalls(), 0u);
}

// Updates racing the background drain and concurrent readers: the TSan
// job runs this suite (DeamortizedConcurrency is in its -R filter).
TEST(DeamortizedConcurrencyTest, QueriesRaceUpdatesSafely) {
  ThreadPool pool(4);
  ConcurrentDeamortizedSpaceSaving summary(64, &pool);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    uint64_t sink = 0;
    while (!done.load(std::memory_order_relaxed)) {
      sink += summary.Count(7);
      sink += summary.UpperEstimate(13);
      sink += summary.UnderSlack();
      sink += summary.Counters().size();
    }
    (void)sink;
  });
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 50000;
  spec.universe = 2048;
  const auto stream = GenerateStream(spec, 5);
  for (uint64_t item : stream) summary.Update(item);
  done.store(true, std::memory_order_relaxed);
  reader.join();

  summary.Flush();
  EXPECT_EQ(summary.n(), stream.size());
  EXPECT_EQ(summary.maintenance_stalls(), 0u);
}

TEST(DeamortizedConcurrencyTest, WorkerlessPoolDegradesToInline) {
  ThreadPool pool(1);
  ConcurrentDeamortizedSpaceSaving summary(32, &pool);
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 10000;
  spec.universe = 512;
  const auto stream = GenerateStream(spec, 9);
  for (uint64_t item : stream) summary.Update(item);
  EXPECT_EQ(summary.drain_tasks(), 0u);  // Nothing scheduled.
  DeamortizedSpaceSaving serial(32);
  for (uint64_t item : stream) serial.Update(item);
  summary.Flush();
  EXPECT_EQ(Encode(serial), Encode(summary));
}

}  // namespace
}  // namespace mergeable
