// Differential validation of the heavy-hitter summaries: the
// deamortized two-table summary, the classic SpaceSaving, and an exact
// counter all consume the same seeded streams, and at every checkpoint
// (mid-stream and after sharded merges) each approximate answer must
// bracket the exact one within the epsilon * n contract, and every true
// heavy hitter must be present in both summaries (the no-false-negative
// superset guarantee). 105 distinct streams — five generator families
// times 21 seeds — cover skew, uniform noise, distinct floods, bursts
// of novel items, and distribution shift.

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/frequency/deamortized_space_saving.h"
#include "mergeable/frequency/exact_counter.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

constexpr double kEpsilon = 0.02;
constexpr uint64_t kStreamLength = 12000;
constexpr int kSeedsPerKind = 21;

enum class StreamKind {
  kZipfLike,       // Heavily skewed: item j w.p. ~ 1/(j+1).
  kUniform,        // No heavy hitters at all.
  kDistinctFlood,  // Every item fresh: maximum eviction pressure.
  kBursty,         // Skewed base with bursts of novel items.
  kShift,          // The heavy set changes halfway through.
};

constexpr StreamKind kAllKinds[] = {
    StreamKind::kZipfLike, StreamKind::kUniform, StreamKind::kDistinctFlood,
    StreamKind::kBursty, StreamKind::kShift,
};

uint64_t NextItem(StreamKind kind, Rng& rng, uint64_t step) {
  switch (kind) {
    case StreamKind::kZipfLike: {
      uint64_t item = rng.UniformInt(uint64_t{64});
      return rng.UniformInt(item + 1);
    }
    case StreamKind::kUniform:
      return rng.UniformInt(uint64_t{100000});
    case StreamKind::kDistinctFlood:
      return (step << 20) | rng.UniformInt(uint64_t{1024});
    case StreamKind::kBursty:
      if ((step / 500) % 4 == 3) {
        return 1000000 + (step << 8) + rng.UniformInt(uint64_t{16});
      }
      return rng.UniformInt(rng.UniformInt(uint64_t{32}) + 1);
    case StreamKind::kShift: {
      const uint64_t base = step < kStreamLength / 2 ? 0 : 500;
      uint64_t item = rng.UniformInt(uint64_t{48});
      return base + rng.UniformInt(item + 1);
    }
  }
  return 0;
}

// The cross-summary consistency contract at one checkpoint. `slack_d`
// and the SpaceSaving bracket must hold for every item the exact
// counter saw, plus a sample of absent items, and every item heavier
// than epsilon * n must be monitored by both summaries.
void CheckCheckpoint(const DeamortizedSpaceSaving& d, const SpaceSaving& ss,
                     const ExactCounter& exact, uint64_t seed) {
  const uint64_t n = exact.n();
  ASSERT_EQ(d.n(), n) << "seed " << seed;
  ASSERT_EQ(ss.n(), n) << "seed " << seed;
  const double budget = kEpsilon * static_cast<double>(n);

  // The approximation contracts, item by item against ground truth.
  const uint64_t d_slack = d.UnderSlack();
  EXPECT_LE(static_cast<double>(d_slack), budget) << "seed " << seed;
  for (const Counter& c : exact.Counters()) {
    const uint64_t truth = c.count;
    const uint64_t d_lower = d.Count(c.item);
    ASSERT_LE(d_lower, truth) << "seed " << seed << " item " << c.item;
    ASSERT_GE(d_lower + d_slack, truth)
        << "seed " << seed << " item " << c.item;
    ASSERT_LE(ss.LowerEstimate(c.item), truth)
        << "seed " << seed << " item " << c.item;
    ASSERT_GE(ss.UpperEstimate(c.item), truth)
        << "seed " << seed << " item " << c.item;
    ASSERT_LE(static_cast<double>(ss.UpperEstimate(c.item) -
                                  ss.LowerEstimate(c.item)),
              budget + 1e-9)
        << "seed " << seed << " item " << c.item;
  }
  // Items never seen: both summaries must admit they may have missed at
  // most their slack, never claim a positive lower bound.
  Rng probe(seed ^ 0xabcdef);
  for (int i = 0; i < 16; ++i) {
    const uint64_t absent = (uint64_t{1} << 40) + probe.Next() % 1000;
    if (exact.Count(absent) != 0) continue;
    EXPECT_EQ(d.Count(absent), 0u);
    EXPECT_EQ(ss.LowerEstimate(absent), 0u);
  }

  // Superset guarantee: a true heavy hitter (frequency > epsilon * n)
  // is always monitored — by D because an untracked item's frequency is
  // at most UnderSlack <= epsilon * n, and by SpaceSaving because an
  // unmonitored item's upper bound is at most its epsilon budget.
  for (const Counter& c : exact.Counters()) {
    if (static_cast<double>(c.count) <= budget) continue;
    EXPECT_GT(d.Count(c.item), 0u)
        << "D lost heavy hitter " << c.item << " seed " << seed;
    EXPECT_GT(ss.Count(c.item), 0u)
        << "SS lost heavy hitter " << c.item << " seed " << seed;
  }
}

TEST(DifferentialTest, StreamingCheckpointsHoldAcross105SeededStreams) {
  for (const StreamKind kind : kAllKinds) {
    for (int seed_index = 0; seed_index < kSeedsPerKind; ++seed_index) {
      const uint64_t seed =
          7000 + static_cast<uint64_t>(kind) * 100 +
          static_cast<uint64_t>(seed_index);
      Rng rng(seed);
      DeamortizedSpaceSaving d = DeamortizedSpaceSaving::ForEpsilon(kEpsilon);
      SpaceSaving ss = SpaceSaving::ForEpsilon(kEpsilon);
      ExactCounter exact;
      for (uint64_t step = 0; step < kStreamLength; ++step) {
        const uint64_t item = NextItem(kind, rng, step);
        d.Update(item);
        ss.Update(item);
        exact.Update(item);
        // Checkpoints at the quartiles and the end — mid-drain states
        // included, since kStreamLength is not aligned to swaps.
        if ((step + 1) % (kStreamLength / 4) == 0) {
          CheckCheckpoint(d, ss, exact, seed);
        }
      }
      ASSERT_EQ(d.maintenance_stalls(), 0u) << "seed " << seed;
    }
  }
}

TEST(DifferentialTest, PostMergeCheckpointsHoldAcrossShardings) {
  // Every stream is split round-robin across 4 shards; each shard feeds
  // its own D / SS / exact instance, and the merged results must keep
  // the same epsilon * n contract the streaming test demands —
  // mergeability means the bound survives the split, for any of the
  // summaries, on the identical stream.
  constexpr int kShards = 4;
  for (const StreamKind kind : kAllKinds) {
    for (int seed_index = 0; seed_index < kSeedsPerKind; ++seed_index) {
      const uint64_t seed =
          9000 + static_cast<uint64_t>(kind) * 100 +
          static_cast<uint64_t>(seed_index);
      Rng rng(seed);
      std::vector<DeamortizedSpaceSaving> d_shards(
          kShards, DeamortizedSpaceSaving::ForEpsilon(kEpsilon));
      std::vector<SpaceSaving> ss_shards(kShards,
                                         SpaceSaving::ForEpsilon(kEpsilon));
      std::vector<ExactCounter> exact_shards(kShards);
      for (uint64_t step = 0; step < kStreamLength; ++step) {
        const uint64_t item = NextItem(kind, rng, step);
        const int shard = static_cast<int>(step % kShards);
        d_shards[shard].Update(item);
        ss_shards[shard].Update(item);
        exact_shards[shard].Update(item);
      }
      // Balanced merge: (0+1) + (2+3), the datacenter shape.
      for (const int left : {0, 2}) {
        d_shards[left].Merge(d_shards[left + 1]);
        ss_shards[left].Merge(ss_shards[left + 1]);
        exact_shards[left].Merge(exact_shards[left + 1]);
      }
      d_shards[0].Merge(d_shards[2]);
      ss_shards[0].Merge(ss_shards[2]);
      exact_shards[0].Merge(exact_shards[2]);
      CheckCheckpoint(d_shards[0], ss_shards[0], exact_shards[0], seed);
    }
  }
}

}  // namespace
}  // namespace mergeable
