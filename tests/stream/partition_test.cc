#include "mergeable/stream/partition.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/stream/generators.h"

namespace mergeable {
namespace {

std::vector<uint64_t> TestStream() {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 5000;
  spec.universe = 128;
  return GenerateStream(spec, 11);
}

std::map<uint64_t, uint64_t> Multiset(const std::vector<uint64_t>& items) {
  std::map<uint64_t, uint64_t> counts;
  for (uint64_t item : items) ++counts[item];
  return counts;
}

class PartitionPolicyTest : public ::testing::TestWithParam<PartitionPolicy> {
};

TEST_P(PartitionPolicyTest, PreservesMultisetUnion) {
  const auto stream = TestStream();
  for (int shards : {1, 2, 7, 16}) {
    const auto parts = PartitionStream(stream, shards, GetParam(), 3);
    ASSERT_EQ(parts.size(), static_cast<size_t>(shards));
    std::vector<uint64_t> reunited;
    for (const auto& part : parts) {
      reunited.insert(reunited.end(), part.begin(), part.end());
    }
    EXPECT_EQ(Multiset(reunited), Multiset(stream));
  }
}

TEST_P(PartitionPolicyTest, ToStringIsNonEmpty) {
  EXPECT_FALSE(ToString(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PartitionPolicyTest,
                         ::testing::Values(PartitionPolicy::kContiguous,
                                           PartitionPolicy::kRoundRobin,
                                           PartitionPolicy::kRandom,
                                           PartitionPolicy::kSkewed,
                                           PartitionPolicy::kByValue));

TEST(PartitionTest, ContiguousKeepsOrderAndBalance) {
  const auto stream = TestStream();
  const auto parts =
      PartitionStream(stream, 4, PartitionPolicy::kContiguous);
  size_t offset = 0;
  for (const auto& part : parts) {
    EXPECT_NEAR(static_cast<double>(part.size()), stream.size() / 4.0, 1.0);
    for (size_t i = 0; i < part.size(); ++i) {
      ASSERT_EQ(part[i], stream[offset + i]);
    }
    offset += part.size();
  }
}

TEST(PartitionTest, RoundRobinInterleaves) {
  const std::vector<uint64_t> stream = {0, 1, 2, 3, 4, 5, 6};
  const auto parts = PartitionStream(stream, 3, PartitionPolicy::kRoundRobin);
  EXPECT_EQ(parts[0], (std::vector<uint64_t>{0, 3, 6}));
  EXPECT_EQ(parts[1], (std::vector<uint64_t>{1, 4}));
  EXPECT_EQ(parts[2], (std::vector<uint64_t>{2, 5}));
}

TEST(PartitionTest, SkewedShardSizesDecayGeometrically) {
  const auto stream = TestStream();
  const auto parts = PartitionStream(stream, 4, PartitionPolicy::kSkewed);
  EXPECT_EQ(parts[0].size(), stream.size() / 2);
  EXPECT_EQ(parts[1].size(), stream.size() / 4);
  EXPECT_GT(parts[0].size(), parts[1].size());
  EXPECT_GT(parts[1].size(), parts[2].size());
}

TEST(PartitionTest, ByValueGivesDisjointSupports) {
  const auto stream = TestStream();
  const auto parts = PartitionStream(stream, 8, PartitionPolicy::kByValue, 5);
  std::set<uint64_t> seen;
  for (const auto& part : parts) {
    std::set<uint64_t> support(part.begin(), part.end());
    for (uint64_t item : support) {
      EXPECT_TRUE(seen.insert(item).second)
          << "item " << item << " on two shards";
    }
  }
}

TEST(PartitionTest, RandomIsSeedDeterministic) {
  const auto stream = TestStream();
  const auto a = PartitionStream(stream, 5, PartitionPolicy::kRandom, 9);
  const auto b = PartitionStream(stream, 5, PartitionPolicy::kRandom, 9);
  EXPECT_EQ(a, b);
  const auto c = PartitionStream(stream, 5, PartitionPolicy::kRandom, 10);
  EXPECT_NE(a, c);
}

TEST(PartitionTest, SingleShardIsIdentity) {
  const auto stream = TestStream();
  const auto parts = PartitionStream(stream, 1, PartitionPolicy::kRandom, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(Multiset(parts[0]), Multiset(stream));
}

TEST(PartitionTest, MoreShardsThanItems) {
  const std::vector<uint64_t> stream = {1, 2};
  const auto parts = PartitionStream(stream, 5, PartitionPolicy::kContiguous);
  EXPECT_EQ(parts.size(), 5u);
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  EXPECT_EQ(total, 2u);
}

TEST(PartitionDeathTest, RejectsZeroShards) {
  EXPECT_DEATH(PartitionStream({1}, 0, PartitionPolicy::kContiguous),
               "shards >= 1");
}

}  // namespace
}  // namespace mergeable
