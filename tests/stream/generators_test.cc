#include "mergeable/stream/generators.h"

#include <cstdint>
#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

namespace mergeable {
namespace {

StreamSpec SmallSpec(StreamKind kind) {
  StreamSpec spec;
  spec.kind = kind;
  spec.n = 10000;
  spec.universe = 256;
  spec.alpha = 1.1;
  spec.heavy_items = 8;
  return spec;
}

class GeneratorsKindTest : public ::testing::TestWithParam<StreamKind> {};

TEST_P(GeneratorsKindTest, ProducesRequestedLength) {
  const auto stream = GenerateStream(SmallSpec(GetParam()), /*seed=*/1);
  EXPECT_EQ(stream.size(), 10000u);
}

TEST_P(GeneratorsKindTest, DeterministicInSeed) {
  const auto a = GenerateStream(SmallSpec(GetParam()), 5);
  const auto b = GenerateStream(SmallSpec(GetParam()), 5);
  EXPECT_EQ(a, b);
}

TEST_P(GeneratorsKindTest, ToStringIsNonEmpty) {
  EXPECT_FALSE(ToString(SmallSpec(GetParam())).empty());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GeneratorsKindTest,
                         ::testing::Values(StreamKind::kZipf,
                                           StreamKind::kUniform,
                                           StreamKind::kSequential,
                                           StreamKind::kAdversarialMg,
                                           StreamKind::kMixed));

TEST(GeneratorsTest, SequentialIsAllDistinct) {
  const auto stream = GenerateStream(SmallSpec(StreamKind::kSequential), 1);
  std::set<uint64_t> distinct(stream.begin(), stream.end());
  EXPECT_EQ(distinct.size(), stream.size());
}

TEST(GeneratorsTest, ZipfSeedsChangeStream) {
  const auto a = GenerateStream(SmallSpec(StreamKind::kZipf), 1);
  const auto b = GenerateStream(SmallSpec(StreamKind::kZipf), 2);
  EXPECT_NE(a, b);
}

TEST(GeneratorsTest, ZipfHasSkewedHead) {
  const auto stream = GenerateStream(SmallSpec(StreamKind::kZipf), 3);
  const auto counts = ExactCounts(stream);
  ASSERT_FALSE(counts.empty());
  // The most frequent item should dominate the mean count.
  const double mean =
      static_cast<double>(stream.size()) / static_cast<double>(counts.size());
  EXPECT_GT(static_cast<double>(counts.front().second), 5.0 * mean);
}

TEST(GeneratorsTest, AdversarialPlantsHeavyItems) {
  StreamSpec spec = SmallSpec(StreamKind::kAdversarialMg);
  const auto stream = GenerateStream(spec, 4);
  const auto counts = ExactCounts(stream);
  // The first heavy_items entries should each have ~n / (2 (h+1)) copies.
  const uint64_t expected = spec.n / (2 * (spec.heavy_items + 1));
  for (int i = 0; i < spec.heavy_items; ++i) {
    EXPECT_EQ(counts[static_cast<size_t>(i)].second, expected) << "rank " << i;
  }
  // Everything else is a singleton.
  EXPECT_EQ(counts[static_cast<size_t>(spec.heavy_items)].second, 1u);
}

TEST(GeneratorsTest, ExactCountsSortedAndComplete) {
  const std::vector<uint64_t> stream = {5, 5, 9, 9, 9, 1};
  const auto counts = ExactCounts(stream);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], std::make_pair(uint64_t{9}, uint64_t{3}));
  EXPECT_EQ(counts[1], std::make_pair(uint64_t{5}, uint64_t{2}));
  EXPECT_EQ(counts[2], std::make_pair(uint64_t{1}, uint64_t{1}));
}

TEST(GeneratorsTest, ExactCountsTotalMatchesLength) {
  const auto stream = GenerateStream(SmallSpec(StreamKind::kMixed), 6);
  uint64_t total = 0;
  for (const auto& [item, count] : ExactCounts(stream)) total += count;
  EXPECT_EQ(total, stream.size());
}

}  // namespace
}  // namespace mergeable
