#include "mergeable/stream/zipf.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/util/random.h"

namespace mergeable {
namespace {

TEST(AliasTableTest, SingleWeightAlwaysSampled) {
  AliasTable table({5.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  AliasTable table({1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) EXPECT_NE(table.Sample(rng), 1u);
}

TEST(AliasTableTest, MatchesWeights) {
  AliasTable table({1.0, 2.0, 3.0, 4.0});
  Rng rng(3);
  constexpr int kDraws = 200000;
  std::vector<int> histogram(4, 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[table.Sample(rng)];
  for (int i = 0; i < 4; ++i) {
    const double expected = kDraws * (i + 1) / 10.0;
    EXPECT_NEAR(histogram[i], expected, expected * 0.05) << "slot " << i;
  }
}

TEST(AliasTableDeathTest, RejectsEmptyAndNonPositive) {
  EXPECT_DEATH(AliasTable({}), "at least one weight");
  EXPECT_DEATH(AliasTable({0.0, 0.0}), "positive total weight");
  EXPECT_DEATH(AliasTable({-1.0, 2.0}), "non-negative");
}

TEST(ZipfTest, UniverseSizeRespected) {
  ZipfDistribution zipf(100, 1.0);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 100u);
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  Rng rng(5);
  constexpr int kDraws = 100000;
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[zipf.Sample(rng)];
  for (int count : histogram) EXPECT_NEAR(count, kDraws / 10, 600);
}

TEST(ZipfTest, RankFrequenciesDecay) {
  ZipfDistribution zipf(1000, 1.2);
  Rng rng(6);
  constexpr int kDraws = 200000;
  std::vector<int> histogram(1000, 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[zipf.Sample(rng)];
  EXPECT_GT(histogram[0], histogram[9]);
  EXPECT_GT(histogram[0], kDraws / 20);  // Head rank carries real mass.
  // Ratio of rank 0 to rank 1 should be near 2^1.2 ~ 2.3.
  const double ratio =
      static_cast<double>(histogram[0]) / std::max(1, histogram[1]);
  EXPECT_NEAR(ratio, std::pow(2.0, 1.2), 0.5);
}

TEST(ZipfTest, DeterministicGivenSeed) {
  ZipfDistribution zipf(64, 1.1);
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(a), zipf.Sample(b));
}

TEST(ZipfDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(ZipfDistribution(0, 1.0), "non-empty");
  EXPECT_DEATH(ZipfDistribution(10, -0.1), "non-negative");
}

}  // namespace
}  // namespace mergeable
