#include "mergeable/quantiles/exact_quantiles.h"

#include <gtest/gtest.h>

namespace mergeable {
namespace {

TEST(ExactQuantilesTest, RankCountsValuesAtMostX) {
  ExactQuantiles exact;
  for (double v : {1.0, 2.0, 2.0, 3.0, 10.0}) exact.Update(v);
  EXPECT_EQ(exact.Rank(0.5), 0u);
  EXPECT_EQ(exact.Rank(1.0), 1u);
  EXPECT_EQ(exact.Rank(2.0), 3u);
  EXPECT_EQ(exact.Rank(9.9), 4u);
  EXPECT_EQ(exact.Rank(10.0), 5u);
  EXPECT_EQ(exact.Rank(99.0), 5u);
}

TEST(ExactQuantilesTest, QuantileReturnsOrderStatistics) {
  ExactQuantiles exact;
  for (int i = 1; i <= 100; ++i) exact.Update(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(exact.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(exact.Quantile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(exact.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(exact.Quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(exact.Quantile(1.0), 100.0);
}

TEST(ExactQuantilesTest, MergeConcatenates) {
  ExactQuantiles a;
  ExactQuantiles b;
  a.Update(1.0);
  a.Update(3.0);
  b.Update(2.0);
  a.Merge(b);
  EXPECT_EQ(a.n(), 3u);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), 2.0);
}

TEST(ExactQuantilesTest, SingleElement) {
  ExactQuantiles exact;
  exact.Update(7.0);
  EXPECT_DOUBLE_EQ(exact.Quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(exact.Quantile(1.0), 7.0);
  EXPECT_EQ(exact.Rank(7.0), 1u);
}

TEST(ExactQuantilesTest, UpdatesAfterQueriesWork) {
  ExactQuantiles exact;
  exact.Update(5.0);
  EXPECT_EQ(exact.Rank(5.0), 1u);
  exact.Update(1.0);
  EXPECT_EQ(exact.Rank(1.0), 1u);
  EXPECT_EQ(exact.Rank(5.0), 2u);
}

TEST(ExactQuantilesDeathTest, QuantileOfEmptyAborts) {
  ExactQuantiles exact;
  EXPECT_DEATH(exact.Quantile(0.5), "empty");
}

}  // namespace
}  // namespace mergeable
