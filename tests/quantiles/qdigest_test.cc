#include "mergeable/quantiles/qdigest.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/core/merge_driver.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

// Exact rank over raw values: |{ y : y <= x }|.
uint64_t ExactRank(const std::vector<uint64_t>& values, uint64_t x) {
  uint64_t rank = 0;
  for (uint64_t v : values) {
    if (v <= x) ++rank;
  }
  return rank;
}

TEST(QDigestTest, SmallStreamExactRanks) {
  QDigest digest(8, 1000);  // Threshold n/k = 0: no folding happens.
  for (uint64_t v : {5u, 5u, 9u, 200u}) digest.Update(v);
  EXPECT_EQ(digest.n(), 4u);
  EXPECT_EQ(digest.Rank(4), 0u);
  EXPECT_EQ(digest.Rank(5), 2u);
  EXPECT_EQ(digest.Rank(9), 3u);
  EXPECT_EQ(digest.Rank(255), 4u);
}

TEST(QDigestTest, WeightedUpdates) {
  QDigest digest(8, 1000);
  digest.Update(10, 7);
  digest.Update(20, 3);
  EXPECT_EQ(digest.n(), 10u);
  EXPECT_EQ(digest.Rank(15), 7u);
}

TEST(QDigestTest, RankErrorWithinBound) {
  constexpr int kLogU = 16;
  constexpr uint64_t kN = 100000;
  QDigest digest = QDigest::ForEpsilon(0.02, kLogU);
  std::vector<uint64_t> values;
  Rng rng(1);
  for (uint64_t i = 0; i < kN; ++i) {
    // Skewed values: squares concentrate in the low range.
    const uint64_t r = rng.UniformInt(uint64_t{1} << (kLogU / 2));
    const uint64_t v = r * r % (uint64_t{1} << kLogU);
    values.push_back(v);
    digest.Update(v);
  }
  for (uint64_t x : {0ull, 100ull, 5000ull, 20000ull, 65535ull}) {
    const auto approx = static_cast<double>(digest.Rank(x));
    const auto exact = static_cast<double>(ExactRank(values, x));
    ASSERT_LE(std::abs(approx - exact), 0.02 * kN) << "x = " << x;
  }
}

TEST(QDigestTest, QuantileErrorWithinBound) {
  constexpr int kLogU = 16;
  constexpr uint64_t kN = 100000;
  QDigest digest = QDigest::ForEpsilon(0.02, kLogU);
  std::vector<uint64_t> values;
  Rng rng(2);
  for (uint64_t i = 0; i < kN; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{1} << kLogU);
    values.push_back(v);
    digest.Update(v);
  }
  for (double phi : {0.1, 0.5, 0.9, 0.99}) {
    const uint64_t answer = digest.Quantile(phi);
    const auto rank = static_cast<double>(ExactRank(values, answer));
    ASSERT_NEAR(rank, phi * static_cast<double>(kN), 2.5 * 0.02 * kN)
        << "phi = " << phi;
  }
}

TEST(QDigestTest, SizeStaysBounded) {
  QDigest digest = QDigest::ForEpsilon(0.01, 20);
  Rng rng(3);
  for (int i = 0; i < 300000; ++i) {
    digest.Update(rng.UniformInt(uint64_t{1} << 20));
  }
  // Theory: O(k) = O(log_u / eps) nodes after compression; allow 3k + margin.
  EXPECT_LT(digest.size(), 3 * digest.k() + 64);
}

TEST(QDigestTest, WeightConservedThroughCompression) {
  QDigest digest(12, 16);  // Aggressive folding.
  Rng rng(4);
  for (int i = 0; i < 50000; ++i) digest.Update(rng.UniformInt(uint64_t{4096}));
  EXPECT_EQ(digest.n(), 50000u);
  EXPECT_EQ(digest.Rank(4095), 50000u);
}

TEST(QDigestTest, MergeMatchesCombinedStream) {
  constexpr int kLogU = 14;
  constexpr int kShards = 16;
  std::vector<uint64_t> all;
  std::vector<QDigest> parts;
  Rng rng(5);
  for (int s = 0; s < kShards; ++s) {
    QDigest digest = QDigest::ForEpsilon(0.02, kLogU);
    for (int i = 0; i < 8000; ++i) {
      // Disjoint ranges per shard.
      const uint64_t v =
          (static_cast<uint64_t>(s) << (kLogU - 4)) +
          rng.UniformInt(uint64_t{1} << (kLogU - 4));
      all.push_back(v);
      digest.Update(v);
    }
    parts.push_back(std::move(digest));
  }
  const QDigest merged =
      MergeAll(std::move(parts), MergeTopology::kBalancedTree);
  EXPECT_EQ(merged.n(), all.size());
  const double n = static_cast<double>(all.size());
  for (uint64_t x = 0; x < (uint64_t{1} << kLogU); x += 1 << (kLogU - 5)) {
    const auto approx = static_cast<double>(merged.Rank(x));
    const auto exact = static_cast<double>(ExactRank(all, x));
    ASSERT_LE(std::abs(approx - exact), 0.02 * n) << "x = " << x;
  }
}

TEST(QDigestTest, MergeIsOrderInsensitiveOnErrorBound) {
  // Merge the same parts in chain vs balanced order; both must respect
  // the bound (results may differ, the guarantee may not).
  constexpr int kLogU = 12;
  std::vector<uint64_t> all;
  std::vector<QDigest> parts_a;
  std::vector<QDigest> parts_b;
  Rng rng(6);
  for (int s = 0; s < 8; ++s) {
    QDigest digest = QDigest::ForEpsilon(0.05, kLogU);
    for (int i = 0; i < 5000; ++i) {
      const uint64_t v = rng.UniformInt(uint64_t{1} << kLogU);
      all.push_back(v);
      digest.Update(v);
    }
    parts_a.push_back(digest);
    parts_b.push_back(digest);
  }
  const QDigest chain =
      MergeAll(std::move(parts_a), MergeTopology::kLeftDeepChain);
  const QDigest balanced =
      MergeAll(std::move(parts_b), MergeTopology::kBalancedTree);
  const double n = static_cast<double>(all.size());
  for (uint64_t x = 0; x < (uint64_t{1} << kLogU); x += 256) {
    const auto exact = static_cast<double>(ExactRank(all, x));
    ASSERT_LE(std::abs(static_cast<double>(chain.Rank(x)) - exact), 0.05 * n);
    ASSERT_LE(std::abs(static_cast<double>(balanced.Rank(x)) - exact),
              0.05 * n);
  }
}

TEST(QDigestTest, ErrorBoundFormula) {
  QDigest digest(16, 800);
  for (int i = 0; i < 8000; ++i) digest.Update(static_cast<uint64_t>(i % 100));
  EXPECT_EQ(digest.ErrorBound(), 16u * (8000u / 800u));
}

TEST(QDigestDeathTest, InvalidParameters) {
  EXPECT_DEATH(QDigest(0, 10), "log_universe");
  EXPECT_DEATH(QDigest(33, 10), "log_universe");
  EXPECT_DEATH(QDigest(8, 0), "k must be");
  EXPECT_DEATH(QDigest::ForEpsilon(0.0, 8), "epsilon");
}

TEST(QDigestDeathTest, ValueOutsideUniverse) {
  QDigest digest(8, 10);
  EXPECT_DEATH(digest.Update(256), "universe");
}

TEST(QDigestDeathTest, MergeRequiresIdenticalConfig) {
  QDigest a(8, 10);
  QDigest b(9, 10);
  EXPECT_DEATH(a.Merge(b), "identical universe");
  QDigest c(8, 20);
  EXPECT_DEATH(a.Merge(c), "identical universe");
}

}  // namespace
}  // namespace mergeable
