#include "mergeable/quantiles/reservoir.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace mergeable {
namespace {

TEST(ReservoirTest, KeepsEverythingBelowCapacity) {
  ReservoirSample sample(10, 1);
  for (int i = 0; i < 7; ++i) sample.Update(i);
  EXPECT_EQ(sample.n(), 7u);
  EXPECT_EQ(sample.size(), 7u);
  std::vector<double> values = sample.values();
  std::sort(values.begin(), values.end());
  for (int i = 0; i < 7; ++i) EXPECT_DOUBLE_EQ(values[i], i);
}

TEST(ReservoirTest, CapsAtSampleSize) {
  ReservoirSample sample(16, 2);
  for (int i = 0; i < 10000; ++i) sample.Update(i);
  EXPECT_EQ(sample.n(), 10000u);
  EXPECT_EQ(sample.size(), 16u);
}

TEST(ReservoirTest, InclusionProbabilityIsUniform) {
  // Every element should land in the final sample with probability s/n.
  constexpr int kTrials = 3000;
  constexpr int kN = 50;
  constexpr int kS = 10;
  std::vector<int> hits(kN, 0);
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSample sample(kS, static_cast<uint64_t>(t) + 1);
    for (int i = 0; i < kN; ++i) sample.Update(i);
    for (double v : sample.values()) ++hits[static_cast<size_t>(v)];
  }
  const double expected = kTrials * static_cast<double>(kS) / kN;  // 600
  for (int i = 0; i < kN; ++i) {
    EXPECT_NEAR(hits[static_cast<size_t>(i)], expected, expected * 0.25)
        << "element " << i;
  }
}

TEST(ReservoirTest, MergeTracksPopulationSize) {
  ReservoirSample a(8, 3);
  ReservoirSample b(8, 4);
  for (int i = 0; i < 100; ++i) a.Update(i);
  for (int i = 0; i < 300; ++i) b.Update(i);
  a.Merge(b);
  EXPECT_EQ(a.n(), 400u);
  EXPECT_EQ(a.size(), 8u);
}

TEST(ReservoirTest, MergeOfPartialReservoirs) {
  ReservoirSample a(10, 5);
  ReservoirSample b(10, 6);
  a.Update(1.0);
  a.Update(2.0);
  b.Update(3.0);
  a.Merge(b);
  EXPECT_EQ(a.n(), 3u);
  EXPECT_EQ(a.size(), 3u);
  std::vector<double> values = a.values();
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(ReservoirTest, MergeInclusionStaysProportional) {
  // Merge a small population into a big one: the small side should
  // contribute ~ s * nB / (nA + nB) elements on average.
  constexpr int kTrials = 2000;
  constexpr int kS = 10;
  double small_side_total = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSample a(kS, 2 * static_cast<uint64_t>(t) + 1);
    ReservoirSample b(kS, 2 * static_cast<uint64_t>(t) + 2);
    for (int i = 0; i < 900; ++i) a.Update(0.0);  // Population A: value 0.
    for (int i = 0; i < 100; ++i) b.Update(1.0);  // Population B: value 1.
    a.Merge(b);
    for (double v : a.values()) small_side_total += v;
  }
  const double mean_from_b = small_side_total / kTrials;
  EXPECT_NEAR(mean_from_b, kS * 0.1, 0.15);
}

TEST(ReservoirTest, RankScalesToPopulation) {
  ReservoirSample sample(500, 7);
  for (int i = 0; i < 100000; ++i) {
    sample.Update(static_cast<double>(i % 1000));
  }
  // Value 499.5 splits the population in half.
  const double rank = static_cast<double>(sample.Rank(499.5));
  EXPECT_NEAR(rank, 50000.0, 10000.0);
}

TEST(ReservoirTest, QuantileFromSample) {
  ReservoirSample sample(1000, 8);
  for (int i = 1; i <= 100000; ++i) sample.Update(i);
  EXPECT_NEAR(sample.Quantile(0.5), 50000.0, 8000.0);
}

TEST(ReservoirDeathTest, InvalidParameters) {
  EXPECT_DEATH(ReservoirSample(0, 1), "sample_size");
}

TEST(ReservoirDeathTest, MergeRequiresEqualSampleSize) {
  ReservoirSample a(4, 1);
  ReservoirSample b(5, 2);
  EXPECT_DEATH(a.Merge(b), "different sizes");
}

TEST(ReservoirDeathTest, QuantileOfEmptyAborts) {
  ReservoirSample sample(4, 1);
  EXPECT_DEATH(sample.Quantile(0.5), "empty");
}

}  // namespace
}  // namespace mergeable
