#include "mergeable/quantiles/mergeable_quantiles.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/core/merge_driver.h"
#include "mergeable/quantiles/exact_quantiles.h"
#include "mergeable/util/bytes.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

constexpr int kBufferSize = 256;

double MaxRankError(const MergeableQuantiles& sketch,
                    const ExactQuantiles& exact, int queries, uint64_t seed) {
  Rng rng(seed);
  double worst = 0.0;
  for (int q = 0; q < queries; ++q) {
    const double x = exact.Quantile(rng.UniformDouble());
    const auto approx = static_cast<double>(sketch.Rank(x));
    const auto truth = static_cast<double>(exact.Rank(x));
    worst = std::max(worst, std::abs(approx - truth));
  }
  return worst;
}

TEST(MergeableQuantilesTest, SmallStreamIsExact) {
  MergeableQuantiles sketch(kBufferSize, /*seed=*/1);
  for (int i = 1; i <= 100; ++i) sketch.Update(i);
  // Below one buffer, nothing was compacted.
  EXPECT_EQ(sketch.Compactions(), 0u);
  for (int i = 1; i <= 100; ++i) {
    ASSERT_EQ(sketch.Rank(i), static_cast<uint64_t>(i));
  }
}

TEST(MergeableQuantilesTest, WeightIsConservedThroughCompactions) {
  MergeableQuantiles sketch(64, 2);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) sketch.Update(rng.UniformDouble());
  EXPECT_EQ(sketch.n(), 100000u);
  EXPECT_GT(sketch.Compactions(), 0u);
  // Rank of +inf equals n: no weight was lost.
  EXPECT_EQ(sketch.Rank(2.0), 100000u);
  // Rank of -inf is zero.
  EXPECT_EQ(sketch.Rank(-1.0), 0u);
}

TEST(MergeableQuantilesTest, SpaceStaysLogarithmic) {
  MergeableQuantiles sketch(kBufferSize, 4);
  Rng rng(5);
  for (int i = 0; i < 200000; ++i) sketch.Update(rng.UniformDouble());
  // levels ~ log2(n / b), each < b values.
  const double levels =
      std::log2(200000.0 / kBufferSize) + 2.0;
  EXPECT_LT(sketch.StoredValues(),
            static_cast<size_t>(levels * kBufferSize));
}

TEST(MergeableQuantilesTest, StreamingRankErrorSmall) {
  MergeableQuantiles sketch(kBufferSize, 6);
  ExactQuantiles exact;
  Rng rng(7);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.UniformDouble();
    sketch.Update(v);
    exact.Update(v);
  }
  // b = 256 targets roughly eps ~ sqrt(log)/b; allow 4%o of n.
  EXPECT_LT(MaxRankError(sketch, exact, 200, 8), 0.02 * kN);
}

TEST(MergeableQuantilesTest, MergedSketchKeepsRankError) {
  constexpr int kShards = 16;
  constexpr int kPerShard = 8000;
  ExactQuantiles exact;
  std::vector<MergeableQuantiles> parts;
  Rng rng(9);
  for (int s = 0; s < kShards; ++s) {
    MergeableQuantiles sketch(kBufferSize, 100 + static_cast<uint64_t>(s));
    for (int i = 0; i < kPerShard; ++i) {
      // Shards see disjoint value ranges: the adversarial layout for
      // naive subsampling.
      const double v = s + rng.UniformDouble();
      sketch.Update(v);
      exact.Update(v);
    }
    parts.push_back(std::move(sketch));
  }
  MergeableQuantiles merged =
      MergeAll(std::move(parts), MergeTopology::kBalancedTree);
  EXPECT_EQ(merged.n(), static_cast<uint64_t>(kShards) * kPerShard);
  EXPECT_LT(MaxRankError(merged, exact, 200, 10),
            0.02 * kShards * kPerShard);
}

class MergeTopologyQuantileTest
    : public ::testing::TestWithParam<MergeTopology> {};

TEST_P(MergeTopologyQuantileTest, ErrorIndependentOfMergeTree) {
  constexpr int kShards = 32;
  constexpr int kPerShard = 4000;
  ExactQuantiles exact;
  std::vector<MergeableQuantiles> parts;
  Rng data_rng(11);
  for (int s = 0; s < kShards; ++s) {
    MergeableQuantiles sketch(kBufferSize, 200 + static_cast<uint64_t>(s));
    for (int i = 0; i < kPerShard; ++i) {
      const double v = data_rng.UniformDouble();
      sketch.Update(v);
      exact.Update(v);
    }
    parts.push_back(std::move(sketch));
  }
  Rng topo_rng(12);
  MergeableQuantiles merged =
      MergeAll(std::move(parts), GetParam(), &topo_rng);
  EXPECT_EQ(merged.n(), static_cast<uint64_t>(kShards) * kPerShard);
  EXPECT_LT(MaxRankError(merged, exact, 200, 13),
            0.02 * kShards * kPerShard);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MergeTopologyQuantileTest,
    ::testing::Values(MergeTopology::kLeftDeepChain,
                      MergeTopology::kBalancedTree,
                      MergeTopology::kRandomTree),
    [](const ::testing::TestParamInfo<MergeTopology>& info) {
      return ToString(info.param);
    });

TEST(MergeableQuantilesTest, QuantileAndRankAreConsistent) {
  MergeableQuantiles sketch(kBufferSize, 14);
  Rng rng(15);
  for (int i = 0; i < 50000; ++i) sketch.Update(rng.UniformDouble());
  for (double phi : {0.1, 0.5, 0.9}) {
    const double value = sketch.Quantile(phi);
    const auto rank = static_cast<double>(sketch.Rank(value));
    EXPECT_NEAR(rank / 50000.0, phi, 0.03) << "phi " << phi;
  }
}

TEST(MergeableQuantilesTest, ForEpsilonMeetsItsTarget) {
  constexpr double kEpsilon = 0.02;
  MergeableQuantiles sketch = MergeableQuantiles::ForEpsilon(kEpsilon, 16);
  ExactQuantiles exact;
  Rng rng(17);
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.UniformDouble();
    sketch.Update(v);
    exact.Update(v);
  }
  EXPECT_LT(MaxRankError(sketch, exact, 200, 18), kEpsilon * kN);
}

TEST(MergeableQuantilesTest, OddBufferSizeRoundsUpToEven) {
  MergeableQuantiles sketch(7, 19);
  EXPECT_EQ(sketch.buffer_size(), 8);
}

TEST(MergeableQuantilesTest, DeterministicPolicyStillConservesWeight) {
  MergeableQuantiles sketch(64, 20, OffsetPolicy::kAlwaysLow);
  for (int i = 0; i < 10000; ++i) sketch.Update(i);
  EXPECT_EQ(sketch.Rank(1e9), 10000u);
}

TEST(MergeableQuantilesTest, RandomBeatsDeterministicOnDeepTrees) {
  // The paper's core claim (E3): with a deep merge tree, the random
  // offset keeps errors like a random walk while the deterministic
  // offset drifts linearly. Compare worst rank error over quantiles.
  constexpr int kShards = 64;
  constexpr int kPerShard = 2000;
  const auto run = [&](OffsetPolicy policy) {
    ExactQuantiles exact;
    std::vector<MergeableQuantiles> parts;
    Rng rng(21);
    for (int s = 0; s < kShards; ++s) {
      MergeableQuantiles sketch(64, 300 + static_cast<uint64_t>(s), policy);
      for (int i = 0; i < kPerShard; ++i) {
        const double v = rng.UniformDouble();
        sketch.Update(v);
        exact.Update(v);
      }
      parts.push_back(std::move(sketch));
    }
    MergeableQuantiles merged =
        MergeAll(std::move(parts), MergeTopology::kLeftDeepChain);
    return MaxRankError(merged, exact, 100, 22);
  };
  const double random_error = run(OffsetPolicy::kRandom);
  const double deterministic_error = run(OffsetPolicy::kAlwaysLow);
  EXPECT_LT(random_error, deterministic_error);
}

TEST(MergeableQuantilesTest, WeightedUpdateMatchesRepeated) {
  MergeableQuantiles weighted(64, 30);
  MergeableQuantiles repeated(64, 31);
  Rng rng(32);
  for (int i = 0; i < 500; ++i) {
    const double value = rng.UniformDouble();
    const uint64_t weight = 1 + rng.UniformInt(uint64_t{37});
    weighted.UpdateWeighted(value, weight);
    for (uint64_t j = 0; j < weight; ++j) repeated.Update(value);
  }
  EXPECT_EQ(weighted.n(), repeated.n());
  // Both carry the same guarantee; ranks agree within the error budget.
  EXPECT_EQ(weighted.Rank(2.0), repeated.Rank(2.0));  // Total weight.
  for (double x : {0.25, 0.5, 0.75}) {
    const auto a = static_cast<double>(weighted.Rank(x));
    const auto b = static_cast<double>(repeated.Rank(x));
    EXPECT_NEAR(a, b, 0.05 * static_cast<double>(weighted.n())) << x;
  }
}

TEST(MergeableQuantilesTest, WeightedZeroIsNoOp) {
  MergeableQuantiles sketch(64, 33);
  sketch.UpdateWeighted(1.0, 0);
  EXPECT_EQ(sketch.n(), 0u);
}

TEST(MergeableQuantilesTest, LargeSingleWeight) {
  MergeableQuantiles sketch(64, 34);
  sketch.UpdateWeighted(5.0, 1u << 20);
  sketch.UpdateWeighted(10.0, 1u << 20);
  EXPECT_EQ(sketch.n(), 2u << 20);
  EXPECT_EQ(sketch.Rank(7.5), 1u << 20);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.25), 5.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.95), 10.0);
}

TEST(MergeableQuantilesTest, UpdateBatchMatchesScalarOverSortedInput) {
  // UpdateBatch sorts its input and feeds level 0 in whole runs, which
  // is byte-equivalent to per-item updates over the same sorted values:
  // identical compaction points, identical RNG consumption.
  Rng rng(40);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.UniformDouble());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  MergeableQuantiles scalar(64, /*seed=*/41);
  for (double v : sorted) scalar.Update(v);
  MergeableQuantiles batched(64, /*seed=*/41);
  batched.UpdateBatch(values.data(), values.size());
  ByteWriter scalar_bytes;
  scalar.EncodeTo(scalar_bytes);
  ByteWriter batched_bytes;
  batched.EncodeTo(batched_bytes);
  EXPECT_EQ(batched_bytes.bytes(), scalar_bytes.bytes());
  EXPECT_EQ(batched.n(), scalar.n());
}

TEST(MergeableQuantilesTest, UpdateBatchKeepsRankErrorBound) {
  Rng rng(42);
  std::vector<double> values;
  for (int i = 0; i < 50000; ++i) values.push_back(rng.UniformDouble());
  MergeableQuantiles sketch(kBufferSize, /*seed=*/43);
  ExactQuantiles exact;
  for (size_t pos = 0; pos < values.size(); pos += 1237) {
    const size_t take = std::min<size_t>(1237, values.size() - pos);
    sketch.UpdateBatch(values.data() + pos, take);
    for (size_t i = 0; i < take; ++i) exact.Update(values[pos + i]);
  }
  EXPECT_EQ(sketch.n(), values.size());
  // Same heuristic bound the scalar accuracy tests use.
  const double bound = 2.0 * static_cast<double>(values.size()) /
                       static_cast<double>(kBufferSize);
  EXPECT_LE(MaxRankError(sketch, exact, 200, 44), bound);
}

TEST(MergeableQuantilesTest, UpdateBatchBelowBufferIsExact) {
  std::vector<double> values;
  for (int i = 50; i >= 1; --i) values.push_back(i);
  MergeableQuantiles sketch(256, /*seed=*/45);
  sketch.UpdateBatch(values.data(), values.size());
  EXPECT_EQ(sketch.Compactions(), 0u);
  for (int i = 1; i <= 50; ++i) {
    ASSERT_EQ(sketch.Rank(i), static_cast<uint64_t>(i));
  }
}

TEST(MergeableQuantilesDeathTest, InvalidParameters) {
  EXPECT_DEATH(MergeableQuantiles(1, 0), "buffer_size");
  EXPECT_DEATH(MergeableQuantiles::ForEpsilon(0.0, 0), "epsilon");
}

TEST(MergeableQuantilesDeathTest, MergeRequiresEqualBufferSize) {
  MergeableQuantiles a(64, 1);
  MergeableQuantiles b(128, 2);
  EXPECT_DEATH(a.Merge(b), "different buffer sizes");
}

}  // namespace
}  // namespace mergeable
