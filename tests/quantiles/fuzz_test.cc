// Randomized differential tests for the quantile summaries against
// brute-force sorted vectors, over thousands of small random scenarios.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/quantiles/exact_quantiles.h"
#include "mergeable/quantiles/gk.h"
#include "mergeable/quantiles/mergeable_quantiles.h"
#include "mergeable/quantiles/qdigest.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

TEST(QuantileFuzzTest, MergeableQuantilesWeightConservation) {
  Rng rng(201);
  for (int trial = 0; trial < 1000; ++trial) {
    const int buffer = 2 * (1 + static_cast<int>(rng.UniformInt(uint64_t{8})));
    MergeableQuantiles merged(buffer, 500 + static_cast<uint64_t>(trial));
    uint64_t total = 0;
    const auto parts = 1 + rng.UniformInt(uint64_t{4});
    for (uint64_t p = 0; p < parts; ++p) {
      MergeableQuantiles part(buffer, 900 + trial * 10 + p);
      const auto items = rng.UniformInt(uint64_t{60});
      for (uint64_t i = 0; i < items; ++i) {
        part.Update(rng.UniformDouble());
        ++total;
      }
      merged.Merge(part);
    }
    ASSERT_EQ(merged.n(), total) << "trial " << trial;
    ASSERT_EQ(merged.Rank(2.0), total) << "trial " << trial;
    ASSERT_EQ(merged.Rank(-1.0), 0u) << "trial " << trial;
  }
}

TEST(QuantileFuzzTest, MergeableQuantilesRankMonotoneAndBounded) {
  Rng rng(202);
  for (int trial = 0; trial < 500; ++trial) {
    MergeableQuantiles sketch(32, 300 + static_cast<uint64_t>(trial));
    const auto items = 1 + rng.UniformInt(uint64_t{400});
    for (uint64_t i = 0; i < items; ++i) sketch.Update(rng.UniformDouble());
    uint64_t previous = 0;
    for (double x = 0.0; x <= 1.0; x += 0.1) {
      const uint64_t rank = sketch.Rank(x);
      ASSERT_GE(rank, previous) << "rank must be monotone";
      ASSERT_LE(rank, sketch.n());
      previous = rank;
    }
  }
}

TEST(QuantileFuzzTest, GkNeverViolatesItsBoundOnTinyStreams) {
  Rng rng(203);
  for (int trial = 0; trial < 1500; ++trial) {
    const double epsilon = 0.05 + 0.4 * rng.UniformDouble();
    GkSummary gk(epsilon);
    std::vector<double> values;
    const auto items = 1 + rng.UniformInt(uint64_t{150});
    for (uint64_t i = 0; i < items; ++i) {
      // Mixed duplicates and fresh values.
      const double v = rng.Bernoulli(0.3)
                           ? std::floor(rng.UniformDouble() * 5.0)
                           : rng.UniformDouble() * 100.0;
      values.push_back(v);
      gk.Update(v);
    }
    std::sort(values.begin(), values.end());
    const double budget =
        epsilon * static_cast<double>(values.size()) + 1.0;
    for (size_t q = 0; q < values.size(); q += 7) {
      const double x = values[q];
      const auto exact = static_cast<double>(
          std::upper_bound(values.begin(), values.end(), x) -
          values.begin());
      const auto approx = static_cast<double>(gk.Rank(x));
      ASSERT_LE(std::abs(approx - exact), budget)
          << "trial " << trial << " x " << x;
    }
  }
}

TEST(QuantileFuzzTest, QDigestRankWithinBoundOnTinyStreams) {
  Rng rng(204);
  for (int trial = 0; trial < 1000; ++trial) {
    const int log_u = 4 + static_cast<int>(rng.UniformInt(uint64_t{8}));
    const uint64_t k = 4 + rng.UniformInt(uint64_t{60});
    QDigest digest(log_u, k);
    std::vector<uint64_t> values;
    const auto items = 1 + rng.UniformInt(uint64_t{300});
    const uint64_t universe = uint64_t{1} << log_u;
    for (uint64_t i = 0; i < items; ++i) {
      const uint64_t v = rng.UniformInt(universe);
      values.push_back(v);
      digest.Update(v);
    }
    const uint64_t budget = digest.ErrorBound() + 1;
    for (uint64_t x = 0; x < universe; x += std::max<uint64_t>(1, universe / 9)) {
      uint64_t exact = 0;
      for (uint64_t v : values) {
        if (v <= x) ++exact;
      }
      const uint64_t approx = digest.Rank(x);
      const uint64_t error =
          approx > exact ? approx - exact : exact - approx;
      ASSERT_LE(error, budget)
          << "trial " << trial << " log_u " << log_u << " k " << k;
    }
  }
}

TEST(QuantileFuzzTest, QDigestMergeConservesWeight) {
  Rng rng(205);
  for (int trial = 0; trial < 800; ++trial) {
    const int log_u = 4 + static_cast<int>(rng.UniformInt(uint64_t{6}));
    const uint64_t k = 2 + rng.UniformInt(uint64_t{30});
    QDigest merged(log_u, k);
    uint64_t total = 0;
    const auto parts = 1 + rng.UniformInt(uint64_t{4});
    for (uint64_t p = 0; p < parts; ++p) {
      QDigest part(log_u, k);
      const auto items = rng.UniformInt(uint64_t{80});
      for (uint64_t i = 0; i < items; ++i) {
        part.Update(rng.UniformInt(uint64_t{1} << log_u));
        ++total;
      }
      merged.Merge(part);
    }
    ASSERT_EQ(merged.n(), total);
    ASSERT_EQ(merged.Rank((uint64_t{1} << log_u) - 1), total);
  }
}

TEST(QuantileFuzzTest, ExactQuantilesSelfConsistency) {
  Rng rng(206);
  for (int trial = 0; trial < 500; ++trial) {
    ExactQuantiles exact;
    const auto items = 1 + rng.UniformInt(uint64_t{200});
    for (uint64_t i = 0; i < items; ++i) {
      exact.Update(rng.UniformDouble() * 10.0);
    }
    for (double phi = 0.05; phi < 1.0; phi += 0.2) {
      const double value = exact.Quantile(phi);
      // Rank of the phi-quantile covers at least ceil(phi * n).
      const auto target = static_cast<uint64_t>(
          std::ceil(phi * static_cast<double>(exact.n())));
      ASSERT_GE(exact.Rank(value), target);
    }
  }
}

}  // namespace
}  // namespace mergeable
