#include "mergeable/quantiles/gk.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/quantiles/exact_quantiles.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

// Workloads that exercise different insertion orders.
enum class Order { kRandom, kSorted, kReversed, kZigzag };

std::vector<double> MakeValues(Order order, int n, uint64_t seed) {
  std::vector<double> values(static_cast<size_t>(n));
  Rng rng(seed);
  switch (order) {
    case Order::kRandom:
      for (double& v : values) v = rng.UniformDouble();
      break;
    case Order::kSorted:
      for (int i = 0; i < n; ++i) values[static_cast<size_t>(i)] = i;
      break;
    case Order::kReversed:
      for (int i = 0; i < n; ++i) values[static_cast<size_t>(i)] = n - i;
      break;
    case Order::kZigzag:
      for (int i = 0; i < n; ++i) {
        values[static_cast<size_t>(i)] = (i % 2 == 0) ? i : n - i;
      }
      break;
  }
  return values;
}

class GkOrderTest : public ::testing::TestWithParam<Order> {};

TEST_P(GkOrderTest, RankErrorWithinEpsilonN) {
  constexpr double kEpsilon = 0.01;
  constexpr int kN = 20000;
  const auto values = MakeValues(GetParam(), kN, 41);

  GkSummary gk(kEpsilon);
  ExactQuantiles exact;
  for (double v : values) {
    gk.Update(v);
    exact.Update(v);
  }
  ASSERT_EQ(gk.n(), static_cast<uint64_t>(kN));

  Rng rng(42);
  for (int q = 0; q < 200; ++q) {
    const double x = exact.Quantile(rng.UniformDouble());
    const auto approx = static_cast<double>(gk.Rank(x));
    const auto truth = static_cast<double>(exact.Rank(x));
    ASSERT_LE(std::abs(approx - truth), kEpsilon * kN)
        << "query value " << x;
  }
}

TEST_P(GkOrderTest, QuantileErrorWithinEpsilon) {
  constexpr double kEpsilon = 0.01;
  constexpr int kN = 20000;
  const auto values = MakeValues(GetParam(), kN, 43);

  GkSummary gk(kEpsilon);
  ExactQuantiles exact;
  for (double v : values) {
    gk.Update(v);
    exact.Update(v);
  }

  for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double answer = gk.Quantile(phi);
    const auto rank = static_cast<double>(exact.Rank(answer));
    ASSERT_NEAR(rank, phi * kN, 2.0 * kEpsilon * kN + 1.0) << "phi " << phi;
  }
}

TEST_P(GkOrderTest, SizeStaysFarBelowInput) {
  constexpr double kEpsilon = 0.01;
  constexpr int kN = 20000;
  const auto values = MakeValues(GetParam(), kN, 44);
  GkSummary gk(kEpsilon);
  for (double v : values) gk.Update(v);
  // O((1/eps) log(eps n)): generous allowance of 12/eps.
  EXPECT_LT(gk.size(), static_cast<size_t>(12.0 / kEpsilon));
}

INSTANTIATE_TEST_SUITE_P(Orders, GkOrderTest,
                         ::testing::Values(Order::kRandom, Order::kSorted,
                                           Order::kReversed, Order::kZigzag),
                         [](const ::testing::TestParamInfo<Order>& info) {
                           switch (info.param) {
                             case Order::kRandom:
                               return "Random";
                             case Order::kSorted:
                               return "Sorted";
                             case Order::kReversed:
                               return "Reversed";
                             case Order::kZigzag:
                               return "Zigzag";
                           }
                           return "Unknown";
                         });

TEST(GkTest, ExtremesAreExact) {
  GkSummary gk(0.05);
  for (int i = 1; i <= 1000; ++i) gk.Update(i);
  EXPECT_EQ(gk.Rank(0.0), 0u);
  EXPECT_EQ(gk.Rank(1000.0), 1000u);
  EXPECT_DOUBLE_EQ(gk.Quantile(1.0), 1000.0);
}

TEST(GkTest, DuplicateHeavyValue) {
  GkSummary gk(0.02);
  for (int i = 0; i < 5000; ++i) gk.Update(7.0);
  for (int i = 0; i < 5000; ++i) gk.Update(9.0);
  EXPECT_NEAR(static_cast<double>(gk.Rank(7.0)), 5000.0, 0.02 * 10000);
  EXPECT_NEAR(static_cast<double>(gk.Rank(8.0)), 5000.0, 0.02 * 10000);
  EXPECT_EQ(gk.Rank(9.0), 10000u);
}

TEST(GkTest, AbsorbOneWayCoversBothInputs) {
  GkSummary a(0.02);
  GkSummary b(0.02);
  for (int i = 0; i < 5000; ++i) a.Update(i);               // [0, 5000)
  for (int i = 5000; i < 10000; ++i) b.Update(i);           // [5000, 10000)
  a.AbsorbOneWay(b);
  EXPECT_EQ(a.n(), 10000u);
  // Median of the union is ~5000.
  const double median = a.Quantile(0.5);
  EXPECT_NEAR(median, 5000.0, 3.0 * 0.02 * 10000);
}

TEST(GkDeathTest, RejectsBadEpsilon) {
  EXPECT_DEATH(GkSummary(0.0), "epsilon");
  EXPECT_DEATH(GkSummary(0.6), "epsilon");
}

TEST(GkDeathTest, QuantileOfEmptyAborts) {
  GkSummary gk(0.1);
  EXPECT_DEATH(gk.Quantile(0.5), "empty");
}

}  // namespace
}  // namespace mergeable
