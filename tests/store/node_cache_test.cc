// MergedSummaryCache: LRU bookkeeping, counter exactness, and the
// single-flight guarantee under real concurrency (the StoreCache*
// concurrency suites also run under TSan in CI).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/store/node_cache.h"

namespace mergeable {
namespace {

CacheKey NodeKey(uint64_t stream, uint64_t level, uint64_t index) {
  return CacheKey{stream, CacheEntryKind::kTreeNode, level, index};
}

std::vector<uint8_t> Payload(uint8_t fill, size_t size) {
  return std::vector<uint8_t>(size, fill);
}

TEST(StoreCacheTest, MissBuildsThenHitReturnsSameBytes) {
  MergedSummaryCache cache(4);
  int builds = 0;
  const auto build = [&builds] {
    ++builds;
    return Payload(7, 3);
  };
  const auto first = cache.GetOrBuild(NodeKey(1, 0, 0), build);
  const auto second = cache.GetOrBuild(NodeKey(1, 0, 0), build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(*first, Payload(7, 3));
  EXPECT_EQ(first, second);  // Same shared payload, not a copy.
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().bytes_built, 3u);
  EXPECT_EQ(cache.stats().bytes_cached, 3u);
}

TEST(StoreCacheTest, DistinctKeyKindsDoNotCollide) {
  MergedSummaryCache cache(4);
  const CacheKey node{1, CacheEntryKind::kTreeNode, 2, 3};
  const CacheKey range{1, CacheEntryKind::kRangeResult, 2, 3};
  cache.GetOrBuild(node, [] { return Payload(1, 1); });
  cache.GetOrBuild(range, [] { return Payload(2, 1); });
  EXPECT_EQ(*cache.Peek(node), Payload(1, 1));
  EXPECT_EQ(*cache.Peek(range), Payload(2, 1));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(StoreCacheTest, EvictsLeastRecentlyUsed) {
  MergedSummaryCache cache(2);
  cache.GetOrBuild(NodeKey(0, 0, 0), [] { return Payload(0, 10); });
  cache.GetOrBuild(NodeKey(0, 0, 1), [] { return Payload(1, 10); });
  // Touch key 0 so key 1 becomes the LRU victim.
  EXPECT_NE(cache.Peek(NodeKey(0, 0, 0)), nullptr);
  cache.GetOrBuild(NodeKey(0, 0, 2), [] { return Payload(2, 10); });

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Peek(NodeKey(0, 0, 0)), nullptr);
  EXPECT_EQ(cache.Peek(NodeKey(0, 0, 1)), nullptr);
  EXPECT_NE(cache.Peek(NodeKey(0, 0, 2)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().bytes_cached, 20u);
}

TEST(StoreCacheTest, CapacityOneReplacesOnEveryNewKey) {
  MergedSummaryCache cache(1);
  for (uint64_t i = 0; i < 5; ++i) {
    cache.GetOrBuild(NodeKey(0, 0, i),
                     [i] { return Payload(static_cast<uint8_t>(i), 4); });
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 4u);
  EXPECT_EQ(cache.stats().bytes_cached, 4u);
  // Rebuilding an evicted key is a fresh miss, and must reproduce the
  // same bytes deterministically.
  const auto again =
      cache.GetOrBuild(NodeKey(0, 0, 0), [] { return Payload(0, 4); });
  EXPECT_EQ(*again, Payload(0, 4));
  EXPECT_EQ(cache.stats().misses, 6u);
}

TEST(StoreCacheTest, EvictionKeepsPayloadAliveForHolders) {
  MergedSummaryCache cache(1);
  const auto held = cache.GetOrBuild(NodeKey(0, 0, 0),
                                     [] { return Payload(9, 8); });
  cache.GetOrBuild(NodeKey(0, 0, 1), [] { return Payload(1, 8); });
  EXPECT_EQ(cache.Peek(NodeKey(0, 0, 0)), nullptr);  // Evicted...
  EXPECT_EQ(*held, Payload(9, 8));                   // ...but still alive.
}

// The single-flight contract: many threads racing for one cold key run
// the builder exactly once and all observe its result.
TEST(StoreCacheSingleFlightTest, ConcurrentMissesBuildOnce) {
  MergedSummaryCache cache(8);
  constexpr int kThreads = 8;
  std::atomic<int> builds{0};
  std::atomic<int> ready{0};
  std::vector<MergedSummaryCache::Payload> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1);
        while (ready.load() < kThreads) std::this_thread::yield();
        results[t] = cache.GetOrBuild(NodeKey(1, 3, 4), [&builds] {
          builds.fetch_add(1);
          // Widen the race window so waiters actually join the flight.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          return Payload(42, 16);
        });
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(builds.load(), 1);
  for (const auto& result : results) {
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(*result, Payload(42, 16));
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.single_flight_waits,
            static_cast<uint64_t>(kThreads - 1));
}

// Distinct keys must build concurrently — a slow build of one key cannot
// serialize the whole cache.
TEST(StoreCacheSingleFlightTest, DistinctKeysBuildInParallel) {
  MergedSummaryCache cache(8);
  constexpr int kThreads = 4;
  std::atomic<int> entered{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      cache.GetOrBuild(NodeKey(2, 0, static_cast<uint64_t>(t)), [&] {
        entered.fetch_add(1);
        // Every builder waits for all builders: deadlocks (within the
        // test timeout) if the cache held its lock across builds.
        while (entered.load() < kThreads) std::this_thread::yield();
        return Payload(static_cast<uint8_t>(t), 4);
      });
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(cache.stats().misses, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(cache.stats().single_flight_waits, 0u);
}

// Hammer one hot key and a rotating cold set from many threads; TSan
// verifies the locking, the counters verify nothing was double-built.
TEST(StoreCacheSingleFlightTest, MixedHitMissStress) {
  MergedSummaryCache cache(4);
  constexpr int kThreads = 4;
  constexpr uint64_t kIters = 300;
  std::atomic<uint64_t> builds{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kIters; ++i) {
        const uint64_t index = i % 7;
        const auto payload =
            cache.GetOrBuild(NodeKey(0, 0, index), [&builds, index] {
              builds.fetch_add(1);
              return Payload(static_cast<uint8_t>(index), 4);
            });
        ASSERT_EQ((*payload)[0], static_cast<uint8_t>(index));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, builds.load());
  EXPECT_EQ(stats.hits + stats.misses + stats.single_flight_waits,
            kThreads * kIters);
}

}  // namespace
}  // namespace mergeable
