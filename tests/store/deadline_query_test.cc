// Deadline-bounded range queries: a query that cannot afford its whole
// dyadic cover answers with the prefix it merged and an epsilon report
// widened by exactly the mass it skipped (AccumulateEpsilonPartial) —
// slow-merge injection is a virtual per-node cost, so every scenario
// here is deterministic.

#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/storage.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/store/dyadic.h"
#include "mergeable/store/epoch_meta.h"
#include "mergeable/store/summary_store.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

constexpr uint64_t kStream = 3;
constexpr uint64_t kEpochs = 32;

SpaceSaving EpochSummary(uint64_t epoch) {
  SpaceSaving summary = SpaceSaving::ForEpsilon(0.05);
  Rng rng(400 + epoch);
  for (int i = 0; i < 100; ++i) {
    summary.Update(rng.Bernoulli(0.6) ? rng.UniformInt(10)
                                      : 50 + epoch % 5);
  }
  return summary;
}

// Seals kEpochs epochs; epoch e carries n = its summary mass and a
// known pre-existing lost_mass of e (so partial answers must fold in
// both components of a skipped epoch).
void FillStore(SummaryStore<SpaceSaving>& store) {
  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    SpaceSaving summary = EpochSummary(epoch);
    EpochMeta meta;
    meta.epoch = epoch;
    meta.n = summary.n();
    meta.shards_total = 4;
    meta.shards_received = 4;
    meta.lost_mass = epoch;
    ASSERT_TRUE(store.Seal(kStream, summary, meta));
  }
}

TEST(DeadlineQueryTest, GenerousBudgetMatchesUnboundedPath) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  FillStore(store);
  const auto unbounded = store.QueryRangePayload(kStream, 3, 29);
  ASSERT_TRUE(unbounded.has_value());
  QueryDeadline deadline;
  deadline.budget_ms = 1000000;
  deadline.cost_per_node_ms = 1;
  const auto bounded =
      store.QueryRangePayloadBounded(kStream, 3, 29, deadline);
  ASSERT_TRUE(bounded.has_value());
  EXPECT_FALSE(bounded->partial);
  EXPECT_EQ(bounded->covered_hi, 29u);
  EXPECT_EQ(*bounded->payload, *unbounded->payload);
  EXPECT_DOUBLE_EQ(bounded->eps.full_stream_bound,
                   unbounded->eps.full_stream_bound);
}

TEST(DeadlineQueryTest, ZeroCostDisablesTheDeadline) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  FillStore(store);
  QueryDeadline deadline;
  deadline.budget_ms = 0;  // Irrelevant: cost 0 means nothing charges.
  deadline.cost_per_node_ms = 0;
  const auto outcome =
      store.QueryRangePayloadBounded(kStream, 0, kEpochs - 1, deadline);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->partial);
}

TEST(DeadlineQueryTest, SlowMergeForcesPartialAnswer) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  FillStore(store);
  const uint64_t t1 = 1;
  const uint64_t t2 = 30;
  const std::vector<DyadicNode> cover = DyadicCover(t1, t2);
  ASSERT_GT(cover.size(), 2u);
  // Budget affords exactly two of the covering nodes.
  QueryDeadline deadline;
  deadline.cost_per_node_ms = 10;
  deadline.budget_ms = 20;
  const auto outcome =
      store.QueryRangePayloadBounded(kStream, t1, t2, deadline);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->partial);
  EXPECT_EQ(outcome->stats.nodes_merged, 2u);
  EXPECT_EQ(outcome->covered_hi, cover[1].last());
  EXPECT_LT(outcome->covered_hi, t2);

  // The partial payload is byte-identical to an unbounded query over
  // exactly the covered prefix — a partial answer is a real answer for
  // a smaller range, not an approximation of the full one.
  const auto prefix =
      store.QueryRangePayload(kStream, t1, outcome->covered_hi);
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(*outcome->payload, *prefix->payload);
}

TEST(DeadlineQueryTest, WidenedEpsilonAccountsSkippedMassExactly) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  FillStore(store);
  const uint64_t t1 = 0;
  // Not the full power-of-two range: [0, 31] is a single dyadic node,
  // which one node of budget covers entirely. [0, 30] needs several.
  const uint64_t t2 = kEpochs - 2;
  QueryDeadline deadline;
  deadline.cost_per_node_ms = 100;
  deadline.budget_ms = 100;  // One node only.
  const auto outcome =
      store.QueryRangePayloadBounded(kStream, t1, t2, deadline);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->partial);

  const std::vector<EpochMeta>& metas = store.Metas(kStream);
  // True lost mass of the answer: everything the deadline skipped
  // (each skipped epoch's full n, plus its own pre-existing loss) on
  // top of the covered epochs' recorded loss.
  uint64_t expected_lost = 0;
  uint64_t expected_received = 0;
  for (uint64_t e = t1; e <= t2; ++e) {
    if (e <= outcome->covered_hi) {
      expected_received += metas[e].n;
      expected_lost += metas[e].lost_mass;
    } else {
      expected_lost += metas[e].n + metas[e].lost_mass;
    }
  }
  EXPECT_EQ(outcome->eps.n_received, expected_received);
  EXPECT_EQ(outcome->eps.lost_mass, expected_lost);
  EXPECT_DOUBLE_EQ(
      outcome->eps.received_bound,
      store.options().epsilon * static_cast<double>(expected_received));
  EXPECT_DOUBLE_EQ(outcome->eps.full_stream_bound,
                   outcome->eps.received_bound +
                       static_cast<double>(expected_lost));
  // Widened, never narrowed: the partial bound dominates what a full
  // answer would have reported.
  const auto full = store.QueryRangePayload(kStream, t1, t2);
  ASSERT_TRUE(full.has_value());
  EXPECT_GE(outcome->eps.full_stream_bound, full->eps.full_stream_bound);
  // Every skipped epoch counts as degraded coverage.
  EXPECT_EQ(outcome->eps.degraded_epochs, t2 - outcome->covered_hi);
  EXPECT_LT(outcome->eps.coverage, 1.0);
}

TEST(DeadlineQueryTest, AtLeastOneNodeAlwaysMerges) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  FillStore(store);
  QueryDeadline deadline;
  deadline.cost_per_node_ms = 1000;
  deadline.budget_ms = 1;  // Cannot afford even one node — one merges
                           // anyway (the floor any deadline must pay).
  const auto outcome =
      store.QueryRangePayloadBounded(kStream, 0, kEpochs - 1, deadline);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->partial);
  EXPECT_EQ(outcome->stats.nodes_merged, 1u);
}

TEST(DeadlineQueryTest, PartialAnswersBypassTheRangeCache) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  FillStore(store);
  QueryDeadline tight;
  tight.cost_per_node_ms = 100;
  tight.budget_ms = 100;
  const auto partial =
      store.QueryRangePayloadBounded(kStream, 0, kEpochs - 2, tight);
  ASSERT_TRUE(partial.has_value());
  ASSERT_TRUE(partial->partial);
  // A later unbounded query over the same range must compute the full
  // answer, not replay the partial one from the cache.
  const auto full = store.QueryRangePayload(kStream, 0, kEpochs - 2);
  ASSERT_TRUE(full.has_value());
  EXPECT_NE(*full->payload, *partial->payload);
}

TEST(DeadlineQueryTest, PartialAccountingMatchesAccumulateEpsilon) {
  // covered_hi == hi degenerates to the plain accumulation.
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  FillStore(store);
  const std::vector<EpochMeta>& metas = store.Metas(kStream);
  const EpsilonReport whole = AccumulateEpsilon(metas, 2, 20, 0.01);
  const EpsilonReport partial =
      AccumulateEpsilonPartial(metas, 2, 20, 20, 0.01);
  EXPECT_EQ(whole.n_received, partial.n_received);
  EXPECT_EQ(whole.lost_mass, partial.lost_mass);
  EXPECT_DOUBLE_EQ(whole.full_stream_bound, partial.full_stream_bound);
  EXPECT_EQ(whole.epochs, partial.epochs);
  EXPECT_EQ(whole.degraded_epochs, partial.degraded_epochs);
}

}  // namespace
}  // namespace mergeable
