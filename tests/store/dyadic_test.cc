// Dyadic decomposition math: covers are exact partitions of the range,
// never wider than 2 * log n, and the carry chain completes each node
// exactly once.

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/store/dyadic.h"

namespace mergeable {
namespace {

TEST(DyadicNodeTest, SpansMatchLevelAndIndex) {
  const DyadicNode leaf{0, 7};
  EXPECT_EQ(leaf.first(), 7u);
  EXPECT_EQ(leaf.last(), 7u);
  EXPECT_EQ(leaf.width(), 1u);

  const DyadicNode node{3, 2};
  EXPECT_EQ(node.width(), 8u);
  EXPECT_EQ(node.first(), 16u);
  EXPECT_EQ(node.last(), 23u);
}

TEST(DyadicCoverTest, SingleEpochIsOneLeaf) {
  const std::vector<DyadicNode> cover = DyadicCover(5, 5);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (DyadicNode{0, 5}));
}

TEST(DyadicCoverTest, AlignedPowerOfTwoIsOneNode) {
  const std::vector<DyadicNode> cover = DyadicCover(0, 1023);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0], (DyadicNode{10, 0}));
}

// Every range [lo, hi] decomposes into disjoint nodes that cover exactly
// the range, in ascending epoch order.
TEST(DyadicCoverTest, ExactPartitionForAllSmallRanges) {
  constexpr uint64_t kEpochs = 128;
  for (uint64_t lo = 0; lo < kEpochs; ++lo) {
    for (uint64_t hi = lo; hi < kEpochs; ++hi) {
      const std::vector<DyadicNode> cover = DyadicCover(lo, hi);
      uint64_t next = lo;
      for (const DyadicNode& node : cover) {
        ASSERT_EQ(node.first(), next) << "gap or overlap at [" << lo << ","
                                      << hi << "]";
        next = node.last() + 1;
      }
      ASSERT_EQ(next, hi + 1) << "cover stops short of hi";
    }
  }
}

// The acceptance bound: any range over 1024 sealed epochs is covered by
// at most 20 nodes (2 * log2(1024)).
TEST(DyadicCoverTest, CoverOf1024EpochRangeIsAtMost20Nodes) {
  constexpr uint64_t kEpochs = 1024;
  size_t worst = 0;
  for (uint64_t lo = 0; lo < kEpochs; ++lo) {
    const std::vector<DyadicNode> cover = DyadicCover(lo, kEpochs - 1);
    worst = std::max(worst, cover.size());
  }
  // Sweep the other boundary too.
  for (uint64_t hi = 0; hi < kEpochs; ++hi) {
    const std::vector<DyadicNode> cover = DyadicCover(0, hi);
    worst = std::max(worst, cover.size());
  }
  // And the classically worst range shape: [1, 2^k - 2].
  worst = std::max(worst, DyadicCover(1, kEpochs - 2).size());
  EXPECT_LE(worst, 20u);
  EXPECT_GE(worst, 10u);  // The bound is tight enough to be meaningful.
}

// Cover nodes are usable by the store only when they are complete: every
// node must lie within the sealed prefix [0, hi].
TEST(DyadicCoverTest, NodesNeverReachPastTheRange) {
  for (uint64_t lo = 0; lo < 200; ++lo) {
    for (uint64_t hi = lo; hi < 200; ++hi) {
      for (const DyadicNode& node : DyadicCover(lo, hi)) {
        ASSERT_GE(node.first(), lo);
        ASSERT_LE(node.last(), hi);
      }
    }
  }
}

TEST(DyadicCoverTest, HandlesRangesNearUint64Max) {
  const uint64_t hi = ~uint64_t{0} - 1;
  const std::vector<DyadicNode> cover = DyadicCover(hi - 5, hi);
  uint64_t next = hi - 5;
  for (const DyadicNode& node : cover) {
    ASSERT_EQ(node.first(), next);
    next = node.last() + 1;
  }
  EXPECT_EQ(next, hi + 1);
}

// Sealing epoch e completes exactly the internal nodes whose last epoch
// is e — the binary carry chain of e + 1.
TEST(NodesCompletedBySealTest, CarryChainMatchesNodeSpans) {
  for (uint64_t epoch = 0; epoch < 512; ++epoch) {
    const std::vector<DyadicNode> completed = NodesCompletedBySeal(epoch);
    uint32_t expected_level = 1;
    for (const DyadicNode& node : completed) {
      EXPECT_EQ(node.level, expected_level++);
      EXPECT_EQ(node.last(), epoch);
    }
  }
}

TEST(NodesCompletedBySealTest, ExamplesAreExact) {
  EXPECT_TRUE(NodesCompletedBySeal(0).empty());
  EXPECT_EQ(NodesCompletedBySeal(1),
            (std::vector<DyadicNode>{{1, 0}}));
  EXPECT_TRUE(NodesCompletedBySeal(2).empty());
  EXPECT_EQ(NodesCompletedBySeal(3),
            (std::vector<DyadicNode>{{1, 1}, {2, 0}}));
  EXPECT_EQ(NodesCompletedBySeal(7),
            (std::vector<DyadicNode>{{1, 3}, {2, 1}, {3, 0}}));
}

// Every internal node is completed exactly once over a seal sequence,
// and the completed set at any prefix matches TotalNodes.
TEST(NodesCompletedBySealTest, EachNodeCompletesOnceAndCountsMatch) {
  std::set<std::pair<uint32_t, uint64_t>> seen;
  uint64_t internal_nodes = 0;
  for (uint64_t epoch = 0; epoch < 300; ++epoch) {
    for (const DyadicNode& node : NodesCompletedBySeal(epoch)) {
      const bool inserted = seen.insert({node.level, node.index}).second;
      ASSERT_TRUE(inserted) << "node completed twice";
      ++internal_nodes;
    }
    const uint64_t sealed = epoch + 1;
    // TotalNodes counts leaves + internal nodes.
    ASSERT_EQ(TotalNodes(sealed), sealed + internal_nodes);
  }
}

// Amortized O(1) node builds per seal: n epochs create fewer than n
// internal nodes in total.
TEST(NodesCompletedBySealTest, AmortizedConstantBuildsPerSeal) {
  uint64_t builds = 0;
  constexpr uint64_t kEpochs = 4096;
  for (uint64_t epoch = 0; epoch < kEpochs; ++epoch) {
    builds += NodesCompletedBySeal(epoch).size();
  }
  EXPECT_LT(builds, kEpochs);
}

}  // namespace
}  // namespace mergeable
