// DurableStore acceptance: kill-at-every-crash-point restart answers
// byte-identically to an uninterrupted run over real files; a
// bit-flipped segment record is quarantined by the scrubber and its
// mass folded into the error bound exactly; internal-node rot
// self-repairs from the warm tier; the background scrubber thread runs
// clean alongside seals and queries (TSan covers this suite).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/fault.h"
#include "mergeable/aggregate/file_storage.h"
#include "mergeable/aggregate/storage.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/store/durable_store.h"
#include "mergeable/store/segment.h"
#include "mergeable/util/random.h"
#include "../aggregate/storage_backends.h"

namespace mergeable {
namespace {

constexpr uint64_t kStream = 1;
constexpr double kEpsilon = 0.1;

SpaceSaving MakeEpochSummary(uint64_t epoch) {
  SpaceSaving summary = SpaceSaving::ForEpsilon(kEpsilon);
  Rng rng(700 + epoch);
  for (int i = 0; i < 80; ++i) summary.Update(rng.UniformInt(30));
  return summary;
}

EpochMeta MetaFor(uint64_t epoch, const SpaceSaving& summary) {
  EpochMeta meta;
  meta.epoch = epoch;
  meta.n = summary.n();
  meta.shards_total = 2;
  meta.shards_received = 2;
  return meta;
}

DurableStoreOptions Options() {
  DurableStoreOptions options;
  options.store.epsilon = kEpsilon;
  return options;
}

// Seals `epochs` summaries; returns how many Seal() calls succeeded
// before the first failure.
uint64_t SealUpTo(DurableStore<SpaceSaving>& store, uint64_t epochs) {
  for (uint64_t e = 0; e < epochs; ++e) {
    const SpaceSaving summary = MakeEpochSummary(e);
    if (!store.Seal(kStream, summary, MetaFor(e, summary))) return e;
  }
  return epochs;
}

// Every range payload over [0, count).
std::vector<std::vector<uint8_t>> AllRangePayloads(
    DurableStore<SpaceSaving>& store, uint64_t count) {
  std::vector<std::vector<uint8_t>> payloads;
  for (uint64_t lo = 0; lo < count; ++lo) {
    for (uint64_t hi = lo; hi < count; ++hi) {
      const auto outcome = store.QueryRangePayload(kStream, lo, hi);
      EXPECT_TRUE(outcome.has_value()) << "[" << lo << ", " << hi << "]";
      if (outcome.has_value()) payloads.push_back(*outcome->payload);
    }
  }
  return payloads;
}

TEST(DurableStoreTest, RestartOverFilesAnswersByteIdentically) {
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make();
  constexpr uint64_t kEpochs = 9;
  std::vector<std::vector<uint8_t>> reference;
  {
    DurableStore<SpaceSaving> store(storage.get(), Options());
    ASSERT_EQ(SealUpTo(store, kEpochs), kEpochs);
    reference = AllRangePayloads(store, kEpochs);
  }
  DurableStore<SpaceSaving> reopened(storage.get(), Options());
  const OpenReport report = reopened.Open();
  EXPECT_EQ(report.streams, 1u);
  EXPECT_EQ(report.epochs, kEpochs);
  EXPECT_EQ(report.corrupt_records, 0u);
  EXPECT_EQ(report.torn_tails, 0u);
  EXPECT_GT(report.nodes_prewarmed, 0u);
  EXPECT_EQ(reopened.EpochCount(kStream), kEpochs);
  EXPECT_EQ(AllRangePayloads(reopened, kEpochs), reference);
}

TEST(DurableStoreTest, SegmentRollKeepsEveryRecordRecoverable) {
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make();
  DurableStoreOptions options = Options();
  options.segment_bytes = 256;  // Tiny: force many rolls.
  constexpr uint64_t kEpochs = 12;
  std::vector<std::vector<uint8_t>> reference;
  {
    DurableStore<SpaceSaving> store(storage.get(), options);
    ASSERT_EQ(SealUpTo(store, kEpochs), kEpochs);
    reference = AllRangePayloads(store, kEpochs);
  }
  // Many segment files actually exist.
  uint64_t segments = 0;
  for (const std::string& name : storage->List()) {
    if (name.rfind("durable/seg/", 0) == 0) ++segments;
  }
  EXPECT_GT(segments, 2u);
  DurableStore<SpaceSaving> reopened(storage.get(), options);
  const OpenReport report = reopened.Open();
  EXPECT_EQ(report.segments, segments);
  EXPECT_EQ(report.epochs, kEpochs);
  EXPECT_EQ(AllRangePayloads(reopened, kEpochs), reference);
}

// The tentpole acceptance: a crash injected at EVERY durable write
// boundary, in every mode, over REAL FILES — restart recovers a
// contiguous epoch prefix that answers byte-identically to the
// uninterrupted run, with at least every epoch whose Seal() was
// acknowledged present.
TEST(DurableStoreTest, KillAtEveryCrashPointRestartsByteIdentically) {
  constexpr uint64_t kEpochs = 8;

  // Reference: uninterrupted run over files.
  BackendFactory factory(BackendKind::kFile);
  uint64_t total_writes = 0;
  std::vector<std::vector<uint8_t>> reference;
  {
    auto storage = factory.Make();
    DurableStore<SpaceSaving> store(storage.get(), Options());
    ASSERT_EQ(SealUpTo(store, kEpochs), kEpochs);
    reference = AllRangePayloads(store, kEpochs);
    total_writes = storage->writes_attempted();
  }
  ASSERT_GE(total_writes, kEpochs);

  for (const CrashPoint& point : CrashMatrix(total_writes, /*seed=*/17)) {
    SCOPED_TRACE(std::string("crash ") + ToString(point.mode) +
                 " at write " + std::to_string(point.write_index));
    auto storage = factory.Make(point);
    uint64_t acknowledged = 0;
    {
      DurableStore<SpaceSaving> store(storage.get(), Options());
      acknowledged = SealUpTo(store, kEpochs);
    }
    ASSERT_TRUE(storage->crashed());

    storage->Restart();
    DurableStore<SpaceSaving> reopened(storage.get(), Options());
    const OpenReport report = reopened.Open();
    if (!reopened.HasStream(kStream)) {
      // Nothing recovered: legal only when nothing was ever acknowledged.
      EXPECT_EQ(acknowledged, 0u);
      continue;
    }
    const uint64_t recovered = reopened.EpochCount(kStream);
    // Leaf-first sealing: every acknowledged epoch is durable. A crash
    // mid-seal may additionally leave the in-flight leaf durable.
    EXPECT_GE(recovered, acknowledged);
    EXPECT_LE(recovered, kEpochs);
    EXPECT_EQ(reopened.BaseEpoch(kStream), 0u);
    // Byte-identical answers over everything recovered.
    size_t at = 0;
    for (uint64_t lo = 0; lo < recovered; ++lo) {
      for (uint64_t hi = lo; hi < kEpochs; ++hi) {
        const size_t reference_index = at++;
        if (hi >= recovered) continue;
        const auto outcome = reopened.QueryRangePayload(kStream, lo, hi);
        ASSERT_TRUE(outcome.has_value())
            << "[" << lo << ", " << hi << "]";
        EXPECT_EQ(*outcome->payload, reference[reference_index])
            << "[" << lo << ", " << hi << "]";
      }
    }
    (void)report;
  }
}

// Scrub detects a bit-flipped LEAF record, quarantines the epoch, and
// the query bound widens by exactly the quarantined mass — the same
// arithmetic as AccumulateEpsilonPartial, asserted field by field.
TEST(DurableStoreTest, BitFlippedLeafIsQuarantinedWithExactEpsilon) {
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make();
  constexpr uint64_t kEpochs = 6;
  constexpr uint64_t kRotten = 3;
  DurableStore<SpaceSaving> store(storage.get(), Options());
  ASSERT_EQ(SealUpTo(store, kEpochs), kEpochs);
  const auto healthy = store.QueryRangePayload(kStream, 0, kEpochs - 1);
  ASSERT_TRUE(healthy.has_value());
  EXPECT_FALSE(healthy->partial);

  // Flip one payload bit inside epoch kRotten's leaf record on disk.
  const std::string segment_file = "durable/seg/00000000";
  auto bytes = storage->Read(segment_file);
  ASSERT_TRUE(bytes.has_value());
  const SegmentScan scan = ScanSegment(*bytes);
  bool flipped = false;
  for (const SegmentEntry& entry : scan.entries) {
    if (entry.record.level == 0 && entry.record.index == kRotten) {
      (*bytes)[entry.offset + entry.length / 2] ^= 0x04;
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped);
  ASSERT_TRUE(storage->Rewrite(segment_file, *bytes));

  // One synchronous scrub pass finds it.
  EXPECT_GT(store.ScrubOnce(), 0u);
  const ScrubStats stats = store.scrub_stats();
  EXPECT_EQ(stats.corrupt_found, 1u);
  EXPECT_EQ(stats.epochs_quarantined, 1u);
  EXPECT_EQ(stats.nodes_repaired, 0u);
  EXPECT_EQ(store.QuarantinedLeaves(kStream),
            std::vector<uint64_t>({kRotten}));

  // A range crossing the quarantined epoch clamps to the prefix and
  // carries the EXACT widened bound.
  const auto outcome = store.QueryRangePayload(kStream, 0, kEpochs - 1);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->partial);
  EXPECT_EQ(outcome->covered_hi, kRotten - 1);
  const EpsilonReport expected = AccumulateEpsilonPartial(
      store.Metas(kStream), 0, kEpochs - 1, kRotten - 1, kEpsilon);
  EXPECT_EQ(outcome->eps.lost_mass, expected.lost_mass);
  EXPECT_FALSE(outcome->eps.lost_mass_estimated);
  EXPECT_EQ(outcome->eps.n_received, expected.n_received);
  EXPECT_EQ(outcome->eps.received_bound, expected.received_bound);
  EXPECT_EQ(outcome->eps.full_stream_bound, expected.full_stream_bound);
  // The uncovered mass is every byte of epochs [kRotten, kEpochs):
  // nothing estimated, counted to the byte.
  uint64_t uncovered = 0;
  const auto& metas = store.Metas(kStream);
  for (uint64_t e = kRotten; e < kEpochs; ++e) uncovered += metas[e].n;
  EXPECT_EQ(outcome->eps.lost_mass, uncovered);
  // And the answered prefix is byte-identical to querying it directly.
  const auto prefix = store.QueryRangePayload(kStream, 0, kRotten - 1);
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(*outcome->payload, *prefix->payload);

  // A range STARTING on the quarantined epoch is refused; ranges
  // strictly before it stay full-fidelity.
  EXPECT_FALSE(
      store.QueryRangePayload(kStream, kRotten, kEpochs - 1).has_value());
  const auto before = store.QueryRangePayload(kStream, 0, kRotten - 1);
  ASSERT_TRUE(before.has_value());
  EXPECT_FALSE(before->partial);
}

// Internal-node rot is derived data: the scrubber re-appends the warm
// copy, the repair survives restart, and nothing is quarantined.
TEST(DurableStoreTest, RottedInternalNodeSelfRepairsFromWarmTier) {
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make();
  constexpr uint64_t kEpochs = 8;
  std::vector<std::vector<uint8_t>> reference;
  DurableStoreOptions options = Options();
  {
    DurableStore<SpaceSaving> store(storage.get(), options);
    ASSERT_EQ(SealUpTo(store, kEpochs), kEpochs);
    reference = AllRangePayloads(store, kEpochs);

    const std::string segment_file = "durable/seg/00000000";
    auto bytes = storage->Read(segment_file);
    ASSERT_TRUE(bytes.has_value());
    const SegmentScan scan = ScanSegment(*bytes);
    bool flipped = false;
    for (const SegmentEntry& entry : scan.entries) {
      if (entry.record.level >= 1) {
        (*bytes)[entry.offset + entry.length / 2] ^= 0x20;
        flipped = true;
        break;
      }
    }
    ASSERT_TRUE(flipped);
    ASSERT_TRUE(storage->Rewrite(segment_file, *bytes));

    EXPECT_GT(store.ScrubOnce(), 0u);
    const ScrubStats stats = store.scrub_stats();
    EXPECT_EQ(stats.corrupt_found, 1u);
    EXPECT_EQ(stats.nodes_repaired, 1u);
    EXPECT_EQ(stats.epochs_quarantined, 0u);
    EXPECT_TRUE(store.QuarantinedLeaves(kStream).empty());
    // Serving is untouched by derived-data rot.
    EXPECT_EQ(AllRangePayloads(store, kEpochs), reference);
    // A second pass over the repaired manifest is clean.
    store.ScrubOnce();
    EXPECT_EQ(store.scrub_stats().corrupt_found, 1u);
  }
  // Restart: latest-wins replays the repair over the rotted original.
  DurableStore<SpaceSaving> reopened(storage.get(), options);
  const OpenReport report = reopened.Open();
  EXPECT_EQ(report.corrupt_records, 1u);  // The rotted original, skipped.
  EXPECT_EQ(report.epochs, kEpochs);
  EXPECT_EQ(AllRangePayloads(reopened, kEpochs), reference);
}

// The background scrubber thread verifies records while seals and
// queries keep running — the TSan job runs this suite with the real
// thread active.
TEST(DurableStoreTest, BackgroundScrubberRunsCleanAlongsideSealsAndQueries) {
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make();
  DurableStoreOptions options = Options();
  options.scrub.interval_ms = 1;
  DurableStore<SpaceSaving> store(storage.get(), options);
  ASSERT_EQ(SealUpTo(store, 4), 4u);

  store.StartScrubber();
  for (uint64_t e = 4; e < 24; ++e) {
    const SpaceSaving summary = MakeEpochSummary(e);
    ASSERT_TRUE(store.Seal(kStream, summary, MetaFor(e, summary)));
    const auto outcome = store.QueryRangePayload(kStream, 0, e);
    ASSERT_TRUE(outcome.has_value());
  }
  store.StopScrubber();
  const ScrubStats stats = store.scrub_stats();
  EXPECT_GT(stats.passes, 0u);
  EXPECT_EQ(stats.corrupt_found, 0u);
  EXPECT_EQ(store.EpochCount(kStream), 24u);
}

// Disk-full during a seal: the failed epoch is NOT half-sealed — the
// store still serves everything durable, and the SAME epoch seals
// cleanly once space returns.
TEST(DurableStoreTest, EnospcSealFailsCleanAndRetries) {
  FaultFd faults;
  BackendFactory factory(BackendKind::kFile);
  auto storage = factory.Make({}, &faults);
  DurableStore<SpaceSaving> store(storage.get(), Options());
  ASSERT_EQ(SealUpTo(store, 3), 3u);

  faults.SetSticky(FaultFd::Kind::kENOSPC);
  const SpaceSaving summary = MakeEpochSummary(3);
  EXPECT_FALSE(store.Seal(kStream, summary, MetaFor(3, summary)));
  EXPECT_EQ(store.EpochCount(kStream), 3u);  // Nothing half-applied.
  const auto during = store.QueryRangePayload(kStream, 0, 2);
  ASSERT_TRUE(during.has_value());  // Queries keep serving.

  faults.Clear();
  EXPECT_TRUE(store.Seal(kStream, summary, MetaFor(3, summary)));
  EXPECT_EQ(store.EpochCount(kStream), 4u);
  const auto after = store.QueryRangePayload(kStream, 0, 3);
  ASSERT_TRUE(after.has_value());
  EXPECT_FALSE(after->partial);
}

// MemStorage works as the durable backend too (the test double the
// chaos harness uses); the two-tier store is backend-agnostic.
TEST(DurableStoreTest, MemBackendRoundTrips) {
  BackendFactory factory(BackendKind::kMem);
  auto storage = factory.Make();
  constexpr uint64_t kEpochs = 5;
  std::vector<std::vector<uint8_t>> reference;
  {
    DurableStore<SpaceSaving> store(storage.get(), Options());
    ASSERT_EQ(SealUpTo(store, kEpochs), kEpochs);
    reference = AllRangePayloads(store, kEpochs);
  }
  DurableStore<SpaceSaving> reopened(storage.get(), Options());
  reopened.Open();
  EXPECT_EQ(AllRangePayloads(reopened, kEpochs), reference);
}

}  // namespace
}  // namespace mergeable
