// Sliding-window serving (store/window.h): the resident ring must be
// indistinguishable from the store answering the same suffix — the
// acceptance bar is byte-identity, not approximate agreement — and its
// epsilon reports must widen on degraded epochs exactly as the store's
// do. The server-level window path (EpochService + QRY1 window field)
// is exercised end-to-end through encoded frames.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/storage.h"
#include "mergeable/aggregate/wire.h"
#include "mergeable/frequency/deamortized_space_saving.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/quantiles/mergeable_quantiles.h"
#include "mergeable/server/epoch_service.h"
#include "mergeable/store/summary_store.h"
#include "mergeable/store/window.h"
#include "mergeable/util/bytes.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

constexpr uint64_t kStream = 7;

template <typename S>
std::vector<uint8_t> Encode(const S& summary) {
  ByteWriter writer;
  summary.EncodeTo(writer);
  return writer.TakeBytes();
}

SpaceSaving EpochSummary(uint64_t epoch) {
  SpaceSaving summary = SpaceSaving::ForEpsilon(0.05);
  Rng rng(900 + epoch);
  for (int i = 0; i < 200; ++i) {
    summary.Update(rng.Bernoulli(0.5) ? rng.UniformInt(12) : 40 + epoch % 7);
  }
  return summary;
}

EpochMeta MetaFor(uint64_t epoch, const SpaceSaving& summary) {
  EpochMeta meta;
  meta.epoch = epoch;
  meta.n = summary.n();
  meta.shards_total = 4;
  meta.shards_received = 4;
  return meta;
}

// Seals `epochs` summaries into both the store and the ring, as the
// serving tier would: same summary, same meta, same relative index.
void FillBoth(SummaryStore<SpaceSaving>& store,
              SlidingWindowRing<SpaceSaving>& ring, uint64_t epochs) {
  for (uint64_t epoch = 0; epoch < epochs; ++epoch) {
    const SpaceSaving summary = EpochSummary(epoch);
    const EpochMeta meta = MetaFor(epoch, summary);
    ASSERT_TRUE(store.Seal(kStream, summary, meta));
    ring.OnSeal(epoch, summary, meta);
  }
}

TEST(WindowTest, EveryWindowMatchesTheStoreByteForByte) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  constexpr uint64_t kEpochs = 40;
  SlidingWindowRing<SpaceSaving> ring(kEpochs, store.options().epsilon);
  FillBoth(store, ring, kEpochs);
  for (uint64_t w = 1; w <= kEpochs; ++w) {
    const auto window = ring.Query(w);
    ASSERT_TRUE(window.has_value()) << w;
    EXPECT_EQ(window->lo, kEpochs - w);
    EXPECT_EQ(window->hi, kEpochs - 1);
    const auto range = store.QueryRangePayload(kStream, kEpochs - w,
                                               kEpochs - 1);
    ASSERT_TRUE(range.has_value()) << w;
    EXPECT_EQ(window->payload, *range->payload) << "w=" << w;
    EXPECT_DOUBLE_EQ(window->eps.received_bound, range->eps.received_bound);
    EXPECT_EQ(window->eps.n_received, range->eps.n_received);
    EXPECT_EQ(window->eps.epochs, w);
  }
}

TEST(WindowTest, WindowAnswerEqualsExplicitLeafMerge) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  constexpr uint64_t kEpochs = 21;
  SlidingWindowRing<SpaceSaving> ring(kEpochs, store.options().epsilon);
  FillBoth(store, ring, kEpochs);
  for (const uint64_t w : {1u, 2u, 5u, 13u, 21u}) {
    const auto window = ring.Query(w);
    ASSERT_TRUE(window.has_value());
    // The finest possible regrouping: merge the covered leaves one by
    // one, left-deep, with the canonical merge. Byte-stability across
    // regroupings is the store's core invariant; the window's answer
    // must sit on the same canonical point.
    std::optional<SpaceSaving> merged;
    for (uint64_t epoch = kEpochs - w; epoch < kEpochs; ++epoch) {
      const SpaceSaving leaf = EpochSummary(epoch);
      if (merged.has_value()) {
        CanonicalMergeInto(*merged, leaf);
      } else {
        merged = CanonicalForm(leaf);
      }
    }
    // w == 1 serves the sealed leaf verbatim (no canonicalization), so
    // compare through a round-trip on both sides.
    const SpaceSaving decoded =
        DecodeSummaryOrDie<SpaceSaving>(window->payload);
    EXPECT_EQ(Encode(CanonicalForm(decoded)), Encode(*merged)) << "w=" << w;
  }
}

TEST(WindowTest, DegradedEpochInsideWindowWidensTheBound) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  SlidingWindowRing<SpaceSaving> ring(32, store.options().epsilon);
  for (uint64_t epoch = 0; epoch < 12; ++epoch) {
    const SpaceSaving summary = EpochSummary(epoch);
    EpochMeta meta = MetaFor(epoch, summary);
    if (epoch == 8) {
      meta.shards_received = 3;  // One shard lost.
      meta.lost_mass = 500;
    }
    ASSERT_TRUE(store.Seal(kStream, summary, meta));
    ring.OnSeal(epoch, summary, meta);
  }
  // Window [8, 11] includes the degraded epoch: bound widens by its
  // lost mass, exactly as the store reports it.
  const auto wide = ring.Query(4);
  ASSERT_TRUE(wide.has_value());
  EXPECT_EQ(wide->eps.degraded_epochs, 1u);
  EXPECT_EQ(wide->eps.lost_mass, 500u);
  EXPECT_LT(wide->eps.coverage, 1.0);
  EXPECT_DOUBLE_EQ(wide->eps.full_stream_bound,
                   wide->eps.received_bound + 500.0);
  const auto store_wide = store.QueryRangePayload(kStream, 8, 11);
  ASSERT_TRUE(store_wide.has_value());
  EXPECT_DOUBLE_EQ(wide->eps.full_stream_bound,
                   store_wide->eps.full_stream_bound);
  // Window [9, 11] excludes it: clean bound.
  const auto clean = ring.Query(3);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(clean->eps.degraded_epochs, 0u);
  EXPECT_EQ(clean->eps.lost_mass, 0u);
  EXPECT_DOUBLE_EQ(clean->eps.full_stream_bound, clean->eps.received_bound);
}

TEST(WindowTest, WarmAttachServesOnlyWhatItWasFed) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  SlidingWindowRing<SpaceSaving> ring(64, store.options().epsilon);
  // The store has 20 epochs of history; the ring attaches at epoch 12
  // (a warm restart that lost the resident suffix).
  for (uint64_t epoch = 0; epoch < 20; ++epoch) {
    const SpaceSaving summary = EpochSummary(epoch);
    const EpochMeta meta = MetaFor(epoch, summary);
    ASSERT_TRUE(store.Seal(kStream, summary, meta));
    if (epoch >= 12) ring.OnSeal(epoch, summary, meta);
  }
  // Windows inside the fed suffix serve, byte-identical to the store.
  for (uint64_t w = 1; w <= 8; ++w) {
    ASSERT_TRUE(ring.Covers(w)) << w;
    const auto window = ring.Query(w);
    ASSERT_TRUE(window.has_value());
    const auto range = store.QueryRangePayload(kStream, 20 - w, 19);
    ASSERT_TRUE(range.has_value());
    EXPECT_EQ(window->payload, *range->payload) << w;
  }
  // A window reaching past the attach point refuses — the caller falls
  // back to the store instead of getting a silently-short answer.
  EXPECT_FALSE(ring.Covers(9));
  EXPECT_FALSE(ring.Query(9).has_value());
  EXPECT_FALSE(ring.Query(0).has_value());
  EXPECT_FALSE(ring.Query(65).has_value());
}

TEST(WindowTest, PruningKeepsResidencyBoundedAndAnswersExact) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  constexpr uint64_t kCapacity = 16;
  SlidingWindowRing<SpaceSaving> ring(kCapacity, store.options().epsilon);
  FillBoth(store, ring, 200);
  // Residency stays ~2W regardless of stream length: W leaves plus the
  // internal suffix nodes (at most W/2 + W/4 + ... + slack per level).
  EXPECT_LE(ring.resident_nodes(), 2 * kCapacity + 2 * 5);
  for (uint64_t w = 1; w <= kCapacity; ++w) {
    const auto window = ring.Query(w);
    ASSERT_TRUE(window.has_value()) << w;
    const auto range = store.QueryRangePayload(kStream, 200 - w, 199);
    ASSERT_TRUE(range.has_value());
    EXPECT_EQ(window->payload, *range->payload) << w;
  }
}

TEST(WindowTest, DeamortizedSummariesServeWindowsUnchanged) {
  // The deamortized summary drops into the window layer exactly as
  // SpaceSaving does: same wire format, same canonical merges.
  MemStorage storage;
  StoreOptions options;
  options.epsilon = 0.05;
  SummaryStore<DeamortizedSpaceSaving> store(&storage, options);
  SlidingWindowRing<DeamortizedSpaceSaving> ring(24, options.epsilon);
  for (uint64_t epoch = 0; epoch < 24; ++epoch) {
    DeamortizedSpaceSaving summary = DeamortizedSpaceSaving::ForEpsilon(0.05);
    Rng rng(31 + epoch);
    for (int i = 0; i < 300; ++i) {
      summary.Update(rng.Bernoulli(0.5) ? rng.UniformInt(9) : 77 + epoch % 3);
    }
    EpochMeta meta;
    meta.epoch = epoch;
    meta.n = summary.n();
    meta.shards_total = 1;
    meta.shards_received = 1;
    ASSERT_TRUE(store.Seal(kStream, summary, meta));
    ring.OnSeal(epoch, summary, meta);
  }
  for (const uint64_t w : {1u, 3u, 8u, 17u, 24u}) {
    const auto window = ring.Query(w);
    ASSERT_TRUE(window.has_value()) << w;
    const auto range = store.QueryRangePayload(kStream, 24 - w, 23);
    ASSERT_TRUE(range.has_value());
    EXPECT_EQ(window->payload, *range->payload) << w;
  }
}

TEST(WindowTest, PlannerSugarForwardsAndClamps) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  for (uint64_t epoch = 0; epoch < 10; ++epoch) {
    const SpaceSaving summary = EpochSummary(epoch);
    ASSERT_TRUE(store.Seal(kStream, summary, MetaFor(epoch, summary)));
  }
  const auto resolved = ResolveWindow(store, kStream, 4);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->first, 6u);
  EXPECT_EQ(resolved->second, 9u);

  const auto window_topk = QueryWindowTopK(store, kStream, 4, 5);
  const auto range_topk = QueryTopK(store, kStream, 6, 9, size_t{5});
  ASSERT_TRUE(window_topk.has_value());
  ASSERT_TRUE(range_topk.has_value());
  ASSERT_EQ(window_topk->items.size(), range_topk->items.size());
  for (size_t i = 0; i < range_topk->items.size(); ++i) {
    EXPECT_EQ(window_topk->items[i].item, range_topk->items[i].item);
    EXPECT_EQ(window_topk->items[i].count, range_topk->items[i].count);
  }

  // w larger than the history clamps to the full sealed range.
  const auto clamped = QueryWindowPointFrequency(store, kStream, 1000, 3);
  const auto full = QueryPointFrequency(store, kStream, 0, 9, uint64_t{3});
  ASSERT_TRUE(clamped.has_value());
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(clamped->estimate, full->estimate);
  EXPECT_EQ(clamped->lower, full->lower);
  EXPECT_EQ(clamped->upper, full->upper);

  EXPECT_FALSE(QueryWindowTopK(store, kStream, 0, 5).has_value());
  EXPECT_FALSE(QueryWindowTopK(store, kStream + 1, 4, 5).has_value());
}

TEST(WindowTest, QuantilePlannerServesWindows) {
  MemStorage storage;
  StoreOptions options;
  options.epsilon = 0.02;
  SummaryStore<MergeableQuantiles> store(&storage, options);
  for (uint64_t epoch = 0; epoch < 8; ++epoch) {
    MergeableQuantiles summary = MergeableQuantiles::ForEpsilon(0.02, 5);
    Rng rng(60 + epoch);
    for (int i = 0; i < 500; ++i) {
      summary.Update(static_cast<double>(epoch * 1000 + rng.UniformInt(1000)));
    }
    EpochMeta meta;
    meta.epoch = epoch;
    meta.n = summary.n();
    ASSERT_TRUE(store.Seal(kStream, summary, meta));
  }
  const auto window = QueryWindowQuantile(store, kStream, 2, 0.5);
  const auto range = QueryQuantile(store, kStream, 6, 7, 0.5);
  ASSERT_TRUE(window.has_value());
  ASSERT_TRUE(range.has_value());
  EXPECT_DOUBLE_EQ(window->value, range->value);
  // The last two epochs hold values in [6000, 8000): the window median
  // must come from them, not from the stream's full history.
  EXPECT_GE(window->value, 6000.0);
}

// ---- Server path: QRY1 window queries end to end ----

class WindowServiceTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kShards = 2;

  WindowServiceTest()
      : store_(&storage_, StoreOptions{}), service_(&store_, Config()) {}

  static EpochServiceConfig Config() {
    EpochServiceConfig config;
    config.stream = 1;
    config.shards_per_epoch = kShards;
    config.window_capacity = 8;
    return config;
  }

  // Reports one summary per shard for `epoch` and seals it.
  void RunEpoch(uint64_t epoch) {
    uint64_t offered = 0;
    for (uint64_t shard = 0; shard < kShards; ++shard) {
      SpaceSaving summary = SpaceSaving::ForEpsilon(0.05);
      Rng rng(epoch * 10 + shard);
      for (int i = 0; i < 150; ++i) summary.Update(rng.UniformInt(30));
      offered += summary.n();
      WireReport report;
      report.shard_id = shard;
      report.epoch = epoch;
      report.payload = Encode(summary);
      const auto verdict =
          DecodeControlFrame(service_.HandleReport(EncodeReportFrame(report)));
      ASSERT_TRUE(verdict.has_value());
      ASSERT_EQ(verdict->code, ControlCode::kAccepted);
    }
    ASSERT_TRUE(service_.SealEpoch(epoch, offered));
  }

  WireAnswer Ask(uint64_t window) {
    WireQuery query;
    query.stream = 1;
    query.window = window;
    const auto answer =
        DecodeAnswerFrame(service_.HandleQuery(EncodeQueryFrame(query)));
    EXPECT_TRUE(answer.has_value());
    return *answer;
  }

  MemStorage storage_;
  SummaryStore<SpaceSaving> store_;
  EpochService<SpaceSaving> service_;
};

TEST_F(WindowServiceTest, WindowQueryResolvesToSuffixAndMatchesRange) {
  for (uint64_t epoch = 0; epoch < 12; ++epoch) RunEpoch(epoch);
  const WireAnswer window = Ask(5);
  ASSERT_EQ(window.status, AnswerStatus::kOk);
  EXPECT_EQ(window.t1, 7u);
  EXPECT_EQ(window.t2, 11u);
  EXPECT_EQ(window.epochs_covered, 5u);

  WireQuery range;
  range.stream = 1;
  range.t1 = 7;
  range.t2 = 11;
  const auto explicit_range =
      DecodeAnswerFrame(service_.HandleQuery(EncodeQueryFrame(range)));
  ASSERT_TRUE(explicit_range.has_value());
  ASSERT_EQ(explicit_range->status, AnswerStatus::kOk);
  // The acceptance bar: a ring-served window answer is byte-identical
  // to the store-served absolute range.
  EXPECT_EQ(window.payload, explicit_range->payload);
  EXPECT_DOUBLE_EQ(window.full_stream_bound,
                   explicit_range->full_stream_bound);
  const EpochServiceStats stats = service_.stats();
  EXPECT_EQ(stats.queries_window, 1u);
  EXPECT_EQ(stats.queries_window_ring, 1u);
}

TEST_F(WindowServiceTest, OversizedWindowFallsBackToStoreByteIdentically) {
  for (uint64_t epoch = 0; epoch < 12; ++epoch) RunEpoch(epoch);
  // w = 10 exceeds the ring capacity of 8: the store path answers.
  const WireAnswer fallback = Ask(10);
  ASSERT_EQ(fallback.status, AnswerStatus::kOk);
  EXPECT_EQ(fallback.t1, 2u);
  EXPECT_EQ(fallback.t2, 11u);

  WireQuery range;
  range.stream = 1;
  range.t1 = 2;
  range.t2 = 11;
  const auto explicit_range =
      DecodeAnswerFrame(service_.HandleQuery(EncodeQueryFrame(range)));
  ASSERT_TRUE(explicit_range.has_value());
  EXPECT_EQ(fallback.payload, explicit_range->payload);
  const EpochServiceStats stats = service_.stats();
  EXPECT_EQ(stats.queries_window, 1u);
  EXPECT_EQ(stats.queries_window_ring, 0u);
}

TEST_F(WindowServiceTest, WindowClampsToHistoryAndRefusesEmptyStream) {
  // No epochs sealed yet: refused, not aborted.
  const WireAnswer empty = Ask(4);
  EXPECT_EQ(empty.status, AnswerStatus::kUnknownRange);

  for (uint64_t epoch = 0; epoch < 3; ++epoch) RunEpoch(epoch);
  const WireAnswer clamped = Ask(100);
  ASSERT_EQ(clamped.status, AnswerStatus::kOk);
  EXPECT_EQ(clamped.t1, 0u);
  EXPECT_EQ(clamped.t2, 2u);
  EXPECT_EQ(clamped.epochs_covered, 3u);
}

}  // namespace
}  // namespace mergeable
