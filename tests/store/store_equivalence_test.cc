// The store equivalence suite: every [t1, t2] range answer served from
// the dyadic tree + cache must be byte-identical to a from-scratch
// recomputation over the raw epoch payloads, for every summary family,
// tree size, and cache pressure.
//
// "From scratch" means: no store, no persistence, no cache, no
// incremental state — the reference below re-derives every range answer
// directly from the sealed leaf payloads using only the store's two
// defining equations (node = canonical(merge(left, right)); range =
// balanced canonical merge of the dyadic cover). For an associative
// family (CountMinSketch) the reference provably equals a plain
// left-deep fold of the raw epochs, which is asserted separately — so
// the tree is not just self-consistent, it computes *the* merge.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/storage.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/quantiles/mergeable_quantiles.h"
#include "mergeable/sketch/count_min.h"
#include "mergeable/store/dyadic.h"
#include "mergeable/store/query.h"
#include "mergeable/store/summary_store.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

// Per-family construction and deterministic per-epoch streams. Epoch
// streams overlap heavily across epochs (same skewed universe) so that
// merges actually contend — distinct universes would make every merge
// trivially disjoint.
template <typename T>
struct Family;

template <>
struct Family<SpaceSaving> {
  static SpaceSaving Make() { return SpaceSaving::ForEpsilon(0.05); }
  static void Feed(SpaceSaving& summary, uint64_t epoch) {
    Rng rng(9000 + epoch);
    for (int i = 0; i < 150; ++i) {
      // Skew: low items are hot everywhere, plus an epoch-local band.
      const uint64_t item = rng.Bernoulli(0.7) ? rng.UniformInt(12)
                                               : 100 + epoch % 7;
      summary.Update(item);
    }
  }
};

template <>
struct Family<MergeableQuantiles> {
  static MergeableQuantiles Make() {
    return MergeableQuantiles::ForEpsilon(0.1, /*seed=*/77);
  }
  static void Feed(MergeableQuantiles& summary, uint64_t epoch) {
    Rng rng(500 + epoch);
    for (int i = 0; i < 120; ++i) {
      summary.Update(static_cast<double>(rng.UniformInt(10000)));
    }
  }
};

template <>
struct Family<CountMinSketch> {
  static CountMinSketch Make() {
    return CountMinSketch::ForEpsilonDelta(0.02, 0.05, /*seed=*/5);
  }
  static void Feed(CountMinSketch& summary, uint64_t epoch) {
    Rng rng(3000 + epoch);
    for (int i = 0; i < 150; ++i) summary.Update(rng.UniformInt(64));
  }
};

template <typename T>
EpochMeta FullCoverageMeta(uint64_t epoch, const T& summary) {
  EpochMeta meta;
  meta.epoch = epoch;
  meta.n = summary.n();
  meta.shards_total = 4;
  meta.shards_received = 4;
  return meta;
}

// The sealed epochs of a synthetic stream, plus their raw payloads for
// the reference computation.
template <typename T>
struct SealedStream {
  std::vector<T> summaries;
  std::vector<std::vector<uint8_t>> payloads;
  std::vector<EpochMeta> metas;
};

template <typename T>
SealedStream<T> MakeStream(uint64_t epochs, uint64_t base_epoch = 0) {
  SealedStream<T> stream;
  for (uint64_t e = 0; e < epochs; ++e) {
    T summary = Family<T>::Make();
    Family<T>::Feed(summary, e);
    stream.payloads.push_back(EncodeSummary(summary));
    stream.metas.push_back(FullCoverageMeta(base_epoch + e, summary));
    stream.summaries.push_back(std::move(summary));
  }
  return stream;
}

// Reference range answer, recomputed from the leaf payloads alone.
template <typename T>
std::vector<uint8_t> ReferenceRange(
    const std::vector<std::vector<uint8_t>>& leaves, uint64_t lo,
    uint64_t hi) {
  std::function<std::vector<uint8_t>(const DyadicNode&)> value =
      [&](const DyadicNode& node) -> std::vector<uint8_t> {
    if (node.level == 0) return leaves[node.index];
    T merged = DecodeSummaryOrDie<T>(
        value(DyadicNode{node.level - 1, node.index * 2}));
    const T sibling = DecodeSummaryOrDie<T>(
        value(DyadicNode{node.level - 1, node.index * 2 + 1}));
    CanonicalMergeInto(merged, sibling);
    return EncodeSummary(merged);
  };
  std::vector<T> parts;
  for (const DyadicNode& node : DyadicCover(lo, hi)) {
    parts.push_back(DecodeSummaryOrDie<T>(value(node)));
  }
  if (parts.size() == 1) return EncodeSummary(parts.front());
  T merged =
      MergeAllWith(std::move(parts), MergeTopology::kBalancedTree,
                   [](T& into, const T& from) { CanonicalMergeInto(into, from); });
  return EncodeSummary(merged);
}

template <typename T>
class StoreEquivalenceTest : public ::testing::Test {};

using Families =
    ::testing::Types<SpaceSaving, MergeableQuantiles, CountMinSketch>;
TYPED_TEST_SUITE(StoreEquivalenceTest, Families);

// The core guarantee at several tree sizes (balanced and ragged): every
// possible range, byte-identical payloads, identical epsilon reports.
TYPED_TEST(StoreEquivalenceTest, AllRangesMatchFromScratchRecomputation) {
  for (const uint64_t epochs : {1u, 6u, 16u, 33u}) {
    const SealedStream<TypeParam> stream = MakeStream<TypeParam>(epochs);
    MemStorage storage;
    StoreOptions options;
    options.epsilon = 0.05;
    options.cache_capacity = 64;
    SummaryStore<TypeParam> store(&storage, options);
    for (uint64_t e = 0; e < epochs; ++e) {
      ASSERT_TRUE(store.Seal(1, stream.summaries[e], stream.metas[e]));
    }
    for (uint64_t lo = 0; lo < epochs; ++lo) {
      for (uint64_t hi = lo; hi < epochs; ++hi) {
        const auto outcome = store.QueryRangePayload(1, lo, hi);
        ASSERT_TRUE(outcome.has_value());
        const std::vector<uint8_t> reference =
            ReferenceRange<TypeParam>(stream.payloads, lo, hi);
        ASSERT_EQ(*outcome->payload, reference)
            << "range [" << lo << ", " << hi << "] of " << epochs;
        // The epsilon report must match direct accumulation over the
        // covered metas.
        const EpsilonReport direct =
            AccumulateEpsilon(stream.metas, lo, hi, options.epsilon);
        EXPECT_EQ(outcome->eps.epochs, direct.epochs);
        EXPECT_EQ(outcome->eps.n_received, direct.n_received);
        EXPECT_EQ(outcome->eps.lost_mass, direct.lost_mass);
        EXPECT_EQ(outcome->eps.degraded_epochs, direct.degraded_epochs);
        EXPECT_DOUBLE_EQ(outcome->eps.received_bound, direct.received_bound);
        EXPECT_DOUBLE_EQ(outcome->eps.full_stream_bound,
                         direct.full_stream_bound);
        // Cost bound: a range of length L merges at most 2*log2(L) + 2
        // nodes.
        uint64_t log2_len = 0;
        while ((uint64_t{1} << (log2_len + 1)) <= hi - lo + 1) ++log2_len;
        EXPECT_LE(outcome->stats.nodes_merged, 2 * log2_len + 2);
      }
    }
  }
}

// A 1-entry cache forces an eviction on nearly every node fetch; cold
// reconstruction after eviction must reproduce identical bytes, query
// after query.
TYPED_TEST(StoreEquivalenceTest, OneEntryCacheIsByteIdenticalToLargeCache) {
  constexpr uint64_t kEpochs = 17;
  const SealedStream<TypeParam> stream = MakeStream<TypeParam>(kEpochs);

  MemStorage tiny_storage;
  MemStorage large_storage;
  StoreOptions tiny_options;
  tiny_options.cache_capacity = 1;
  StoreOptions large_options;
  large_options.cache_capacity = 256;
  SummaryStore<TypeParam> tiny(&tiny_storage, tiny_options);
  SummaryStore<TypeParam> large(&large_storage, large_options);
  for (uint64_t e = 0; e < kEpochs; ++e) {
    ASSERT_TRUE(tiny.Seal(1, stream.summaries[e], stream.metas[e]));
    ASSERT_TRUE(large.Seal(1, stream.summaries[e], stream.metas[e]));
  }
  for (uint64_t lo = 0; lo < kEpochs; ++lo) {
    for (uint64_t hi = lo; hi < kEpochs; ++hi) {
      const auto cold = tiny.QueryRangePayload(1, lo, hi);
      const auto warm = large.QueryRangePayload(1, lo, hi);
      ASSERT_TRUE(cold.has_value());
      ASSERT_TRUE(warm.has_value());
      ASSERT_EQ(*cold->payload, *warm->payload)
          << "range [" << lo << ", " << hi << "]";
      // Same query again on the thrashing store: still identical.
      const auto again = tiny.QueryRangePayload(1, lo, hi);
      ASSERT_TRUE(again.has_value());
      ASSERT_EQ(*again->payload, *cold->payload);
    }
  }
  EXPECT_GT(tiny.cache_stats().evictions, 0u);
}

// The warm-cache acceptance criterion: a repeated range query is a pure
// cache hit — zero nodes fetched, zero merges performed — and the hit
// counters say so.
TYPED_TEST(StoreEquivalenceTest, WarmCacheAnswersRepeatsWithZeroMerges) {
  constexpr uint64_t kEpochs = 21;
  const SealedStream<TypeParam> stream = MakeStream<TypeParam>(kEpochs);
  MemStorage storage;
  SummaryStore<TypeParam> store(&storage);
  for (uint64_t e = 0; e < kEpochs; ++e) {
    ASSERT_TRUE(store.Seal(1, stream.summaries[e], stream.metas[e]));
  }

  const auto cold = store.QueryRangePayload(1, 3, 18);
  ASSERT_TRUE(cold.has_value());
  EXPECT_FALSE(cold->stats.range_cache_hit);
  EXPECT_GT(cold->stats.nodes_merged, 1u);
  EXPECT_GT(cold->stats.merges_performed, 0u);

  const CacheStats before = store.cache_stats();
  const auto warm = store.QueryRangePayload(1, 3, 18);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->stats.range_cache_hit);
  EXPECT_EQ(warm->stats.nodes_merged, 0u);
  EXPECT_EQ(warm->stats.merges_performed, 0u);
  EXPECT_EQ(warm->stats.node_cache_misses, 0u);
  EXPECT_EQ(warm->stats.bytes_read, 0u);
  EXPECT_EQ(*warm->payload, *cold->payload);
  EXPECT_EQ(store.cache_stats().hits, before.hits + 1);
}

// Parallel query execution (num_threads > 1) must not change a single
// byte relative to the sequential store.
TYPED_TEST(StoreEquivalenceTest, ParallelQueriesAreByteIdentical) {
  constexpr uint64_t kEpochs = 19;
  const SealedStream<TypeParam> stream = MakeStream<TypeParam>(kEpochs);
  MemStorage seq_storage;
  MemStorage par_storage;
  StoreOptions par_options;
  par_options.num_threads = 4;
  SummaryStore<TypeParam> sequential(&seq_storage);
  SummaryStore<TypeParam> parallel(&par_storage, par_options);
  for (uint64_t e = 0; e < kEpochs; ++e) {
    ASSERT_TRUE(sequential.Seal(1, stream.summaries[e], stream.metas[e]));
    ASSERT_TRUE(parallel.Seal(1, stream.summaries[e], stream.metas[e]));
  }
  for (uint64_t lo = 0; lo < kEpochs; lo += 3) {
    for (uint64_t hi = lo; hi < kEpochs; ++hi) {
      const auto a = sequential.QueryRangePayload(1, lo, hi);
      const auto b = parallel.QueryRangePayload(1, lo, hi);
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      ASSERT_EQ(*a->payload, *b->payload);
    }
  }
}

// SealBatch must be byte-identical to sealing one epoch at a time.
TYPED_TEST(StoreEquivalenceTest, BatchSealMatchesSequentialSeal) {
  constexpr uint64_t kEpochs = 24;
  const SealedStream<TypeParam> stream = MakeStream<TypeParam>(kEpochs);
  MemStorage one_storage;
  MemStorage batch_storage;
  SummaryStore<TypeParam> one(&one_storage);
  StoreOptions batch_options;
  batch_options.num_threads = 4;
  SummaryStore<TypeParam> batch(&batch_storage, batch_options);

  std::vector<std::pair<TypeParam, EpochMeta>> items;
  for (uint64_t e = 0; e < kEpochs; ++e) {
    ASSERT_TRUE(one.Seal(1, stream.summaries[e], stream.metas[e]));
    items.emplace_back(stream.summaries[e], stream.metas[e]);
  }
  ASSERT_TRUE(batch.SealBatch(1, std::move(items)));

  // Every persisted file must match, leaf and internal alike.
  const std::vector<std::string> files = one_storage.List();
  ASSERT_EQ(files, batch_storage.List());
  for (const std::string& file : files) {
    ASSERT_EQ(*one_storage.Read(file), *batch_storage.Read(file)) << file;
  }
}

// Degraded-coverage epochs widen the reported bound; complete ranges
// keep the native one.
TYPED_TEST(StoreEquivalenceTest, DegradedEpochsWidenTheReportedBound) {
  constexpr uint64_t kEpochs = 8;
  SealedStream<TypeParam> stream = MakeStream<TypeParam>(kEpochs);
  stream.metas[5].shards_received = 3;  // Of 4.
  stream.metas[5].lost_mass = 500;
  stream.metas[5].lost_mass_estimated = true;
  MemStorage storage;
  SummaryStore<TypeParam> store(&storage);
  for (uint64_t e = 0; e < kEpochs; ++e) {
    ASSERT_TRUE(store.Seal(1, stream.summaries[e], stream.metas[e]));
  }

  const auto clean = store.QueryRangePayload(1, 0, 4);
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(clean->eps.degraded_epochs, 0u);
  EXPECT_DOUBLE_EQ(clean->eps.full_stream_bound, clean->eps.received_bound);
  EXPECT_DOUBLE_EQ(clean->eps.coverage, 1.0);

  const auto degraded = store.QueryRangePayload(1, 2, 7);
  ASSERT_TRUE(degraded.has_value());
  EXPECT_EQ(degraded->eps.degraded_epochs, 1u);
  EXPECT_EQ(degraded->eps.lost_mass, 500u);
  EXPECT_TRUE(degraded->eps.lost_mass_estimated);
  EXPECT_DOUBLE_EQ(degraded->eps.full_stream_bound,
                   degraded->eps.received_bound + 500.0);
  EXPECT_LT(degraded->eps.coverage, 1.0);
}

// Out-of-range and unknown-stream queries refuse, never abort.
TYPED_TEST(StoreEquivalenceTest, InvalidRangesAreRefused) {
  const SealedStream<TypeParam> stream = MakeStream<TypeParam>(4, 100);
  MemStorage storage;
  SummaryStore<TypeParam> store(&storage);
  for (uint64_t e = 0; e < 4; ++e) {
    ASSERT_TRUE(store.Seal(1, stream.summaries[e], stream.metas[e]));
  }
  EXPECT_TRUE(store.QueryRangePayload(1, 100, 103).has_value());
  EXPECT_FALSE(store.QueryRangePayload(1, 99, 101).has_value());
  EXPECT_FALSE(store.QueryRangePayload(1, 102, 104).has_value());
  EXPECT_FALSE(store.QueryRangePayload(1, 103, 102).has_value());
  EXPECT_FALSE(store.QueryRangePayload(2, 100, 101).has_value());
}

// The sublinear-serving acceptance criterion, end to end: 1024 sealed
// epochs, a worst-case-shaped range, at most 20 nodes merged — and the
// answer still equals the plain left-deep fold of all 1022 raw epochs
// (CountMin merges are component-wise sums, so every topology agrees).
TEST(StoreAcceptanceTest, Query1024EpochsMergesAtMost20Nodes) {
  constexpr uint64_t kEpochs = 1024;
  MemStorage storage;
  StoreOptions options;
  options.cache_capacity = 512;
  SummaryStore<CountMinSketch> store(&storage, options);
  std::optional<CountMinSketch> naive;
  for (uint64_t e = 0; e < kEpochs; ++e) {
    CountMinSketch summary = CountMinSketch::ForEpsilonDelta(0.05, 0.1, 5);
    Rng rng(e);
    for (int i = 0; i < 20; ++i) summary.Update(rng.UniformInt(32));
    ASSERT_TRUE(store.Seal(1, summary, FullCoverageMeta(e, summary)));
    if (e >= 1 && e <= kEpochs - 2) {
      if (!naive.has_value()) {
        naive = summary;
      } else {
        naive->Merge(summary);
      }
    }
  }
  // [1, 1022] avoids both aligned boundaries — the worst decomposition.
  const auto outcome = store.QueryRangePayload(1, 1, kEpochs - 2);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_LE(outcome->stats.nodes_merged, 20u);
  EXPECT_GT(outcome->stats.nodes_merged, 10u);
  EXPECT_EQ(*outcome->payload, EncodeSummary(*naive));
}

}  // namespace
}  // namespace mergeable
