// The summary codec registry: one entry per wire format, correct
// capability flags, working type-erased probes and merges, and the
// tagged-payload envelope built on top of it.

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/summary_registry.h"
#include "mergeable/aggregate/wire.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/quantiles/gk.h"

namespace mergeable {
namespace {

TEST(SummaryRegistryTest, CoversAllSixteenCodecsInTagOrder) {
  const std::vector<SummaryCodecInfo>& registry = SummaryRegistry();
  ASSERT_EQ(registry.size(), 16u);
  std::set<uint32_t> tags;
  uint32_t previous = 0;
  for (const SummaryCodecInfo& info : registry) {
    const uint32_t raw = static_cast<uint32_t>(info.tag);
    EXPECT_GT(raw, previous) << "registry must be in ascending tag order";
    previous = raw;
    tags.insert(raw);
    EXPECT_NE(info.name, nullptr);
    EXPECT_NE(info.probe, nullptr);
    EXPECT_NE(info.corpus, nullptr);
    EXPECT_NE(info.merge_payloads, nullptr);
    EXPECT_NE(info.fuzz, nullptr);
  }
  EXPECT_EQ(tags.size(), 16u);
}

TEST(SummaryRegistryTest, LookupByTagAndNameAgree) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    const SummaryCodecInfo* by_tag = FindSummaryCodec(info.tag);
    const SummaryCodecInfo* by_name = FindSummaryCodec(info.name);
    ASSERT_NE(by_tag, nullptr);
    EXPECT_EQ(by_tag, by_name);
  }
  EXPECT_EQ(FindSummaryCodec(static_cast<SummaryTag>(999)), nullptr);
  EXPECT_EQ(FindSummaryCodec("NoSuchSummary"), nullptr);
  EXPECT_TRUE(IsRegisteredSummaryTag(1));
  EXPECT_TRUE(IsRegisteredSummaryTag(14));
  EXPECT_TRUE(IsRegisteredSummaryTag(16));
  EXPECT_FALSE(IsRegisteredSummaryTag(0));
  EXPECT_FALSE(IsRegisteredSummaryTag(17));
}

TEST(SummaryRegistryTest, TraitsMatchRegistryEntries) {
  EXPECT_EQ(SummaryTraits<SpaceSaving>::kTag, SummaryTag::kSpaceSaving);
  const SummaryCodecInfo* info =
      FindSummaryCodec(SummaryTraits<SpaceSaving>::kTag);
  ASSERT_NE(info, nullptr);
  EXPECT_STREQ(info->name, SummaryTraits<SpaceSaving>::kName);
  EXPECT_EQ(SummaryTraits<GkSummary>::kTag, SummaryTag::kGkSummary);
}

TEST(SummaryRegistryTest, CorporaAreDeterministicNonEmptyAndProbeClean) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    const auto corpus_a = info.corpus(42);
    const auto corpus_b = info.corpus(42);
    EXPECT_EQ(corpus_a, corpus_b) << info.name << " corpus not deterministic";
    ASSERT_GE(corpus_a.size(), 2u) << info.name;
    for (const std::vector<uint8_t>& payload : corpus_a) {
      EXPECT_TRUE(info.probe(payload))
          << info.name << " rejects its own corpus";
    }
  }
}

TEST(SummaryRegistryTest, ProbeRejectsGarbage) {
  const std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 0x01};
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    EXPECT_FALSE(info.probe(garbage)) << info.name;
  }
}

TEST(SummaryRegistryTest, MergePayloadsWorksExactlyForMergeableCodecs) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    const auto corpus = info.corpus(7);
    ASSERT_GE(corpus.size(), 2u);
    const auto merged = info.merge_payloads(corpus[0], corpus[1]);
    if (info.mergeable) {
      ASSERT_TRUE(merged.has_value()) << info.name;
      EXPECT_TRUE(info.probe(*merged)) << info.name;
      // The merge result is canonical: merging with itself decodes too.
      const auto merged_twice = info.merge_payloads(*merged, *merged);
      ASSERT_TRUE(merged_twice.has_value()) << info.name;
    } else {
      EXPECT_FALSE(merged.has_value())
          << info.name << " is one-way; MergePayloads must refuse";
    }
  }
  // GK is the library's only one-way summary.
  const SummaryCodecInfo* gk = FindSummaryCodec(SummaryTag::kGkSummary);
  ASSERT_NE(gk, nullptr);
  EXPECT_FALSE(gk->mergeable);
}

TEST(SummaryRegistryTest, OnlyCountMinToleratesTrailingBytes) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    EXPECT_EQ(info.rejects_trailing, info.tag != SummaryTag::kCountMin)
        << info.name;
  }
}

TEST(SummaryRegistryTest, MergePayloadsRejectsForeignBytes) {
  const SummaryCodecInfo* space_saving =
      FindSummaryCodec(SummaryTag::kSpaceSaving);
  ASSERT_NE(space_saving, nullptr);
  const auto corpus = space_saving->corpus(3);
  const std::vector<uint8_t> garbage = {1, 2, 3};
  EXPECT_FALSE(space_saving->merge_payloads(corpus[0], garbage).has_value());
  EXPECT_FALSE(space_saving->merge_payloads(garbage, corpus[0]).has_value());
}

// ---- The tagged-payload envelope (wire.h) over the registry ----

TEST(TaggedPayloadTest, RoundTripsEveryRegisteredTag) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    const auto corpus = info.corpus(11);
    const std::vector<uint8_t> envelope =
        EncodeTaggedPayload(info.tag, corpus[0]);
    const auto decoded = DecodeTaggedPayload(envelope);
    ASSERT_TRUE(decoded.has_value()) << info.name;
    EXPECT_EQ(decoded->tag, info.tag);
    EXPECT_EQ(decoded->payload, corpus[0]);
  }
}

TEST(TaggedPayloadTest, RejectsCorruptEnvelopes) {
  const SummaryCodecInfo* info = FindSummaryCodec(SummaryTag::kSpaceSaving);
  ASSERT_NE(info, nullptr);
  const std::vector<uint8_t> envelope =
      EncodeTaggedPayload(info->tag, info->corpus(1)[0]);

  // Truncations at every length must be rejected.
  for (size_t len = 0; len < envelope.size(); ++len) {
    const std::vector<uint8_t> truncated(envelope.begin(),
                                         envelope.begin() + len);
    EXPECT_FALSE(DecodeTaggedPayload(truncated).has_value()) << len;
  }
  // Trailing garbage.
  std::vector<uint8_t> extended = envelope;
  extended.push_back(0);
  EXPECT_FALSE(DecodeTaggedPayload(extended).has_value());
  // A flipped payload byte breaks the checksum.
  std::vector<uint8_t> flipped = envelope;
  flipped[10] ^= 0xff;
  EXPECT_FALSE(DecodeTaggedPayload(flipped).has_value());
  // An unregistered tag is refused even with a fixed-up frame.
  std::vector<uint8_t> bad_tag = envelope;
  bad_tag[4] = 200;  // Tag is the little-endian u32 after the magic.
  EXPECT_FALSE(DecodeTaggedPayload(bad_tag).has_value());
}

TEST(RegistryFuzzTest, FuzzAllRegisteredCodecsSmoke) {
  const std::vector<NamedFuzzStats> results =
      FuzzAllRegisteredCodecs(/*iterations_per_codec=*/300, /*seed=*/1);
  ASSERT_EQ(results.size(), SummaryRegistry().size());
  for (const NamedFuzzStats& result : results) {
    EXPECT_EQ(result.stats.iterations, 300u) << result.name;
    EXPECT_EQ(result.stats.reencode_failures, 0u) << result.name;
    EXPECT_EQ(result.stats.index_rebuild_violations, 0u) << result.name;
    EXPECT_EQ(result.stats.accepted + result.stats.rejected, 300u)
        << result.name;
  }
}

}  // namespace
}  // namespace mergeable
