// Store persistence: Open() recovery after restarts and injected
// crashes, lazy rebuild of torn internal nodes, and the coordinator /
// checkpoint ingestion paths.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/coordinator.h"
#include "mergeable/aggregate/fault.h"
#include "mergeable/aggregate/snapshot.h"
#include "mergeable/aggregate/storage.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/store/summary_store.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

SpaceSaving MakeEpochSummary(uint64_t epoch) {
  SpaceSaving summary = SpaceSaving::ForEpsilon(0.1);
  Rng rng(400 + epoch);
  for (int i = 0; i < 80; ++i) summary.Update(rng.UniformInt(30));
  return summary;
}

EpochMeta MetaFor(uint64_t epoch, const SpaceSaving& summary) {
  EpochMeta meta;
  meta.epoch = epoch;
  meta.n = summary.n();
  meta.shards_total = 2;
  meta.shards_received = 2;
  return meta;
}

// Seals `epochs` summaries into a fresh store over `storage`; returns
// how many seals succeeded before the first failure.
uint64_t SealUpTo(Storage* storage, uint64_t epochs, uint64_t base = 0) {
  SummaryStore<SpaceSaving> store(storage);
  for (uint64_t e = 0; e < epochs; ++e) {
    const SpaceSaving summary = MakeEpochSummary(e);
    if (!store.Seal(1, summary, MetaFor(base + e, summary))) return e;
  }
  return epochs;
}

TEST(StoreRecoveryTest, OpenRestoresStreamsAndAnswersIdentically) {
  MemStorage storage;
  constexpr uint64_t kEpochs = 13;
  std::vector<std::vector<uint8_t>> reference;
  {
    SummaryStore<SpaceSaving> store(&storage);
    for (uint64_t e = 0; e < kEpochs; ++e) {
      const SpaceSaving summary = MakeEpochSummary(e);
      ASSERT_TRUE(store.Seal(7, summary, MetaFor(100 + e, summary)));
    }
    for (uint64_t lo = 0; lo < kEpochs; ++lo) {
      const auto outcome =
          store.QueryRangePayload(7, 100 + lo, 100 + kEpochs - 1);
      ASSERT_TRUE(outcome.has_value());
      reference.push_back(*outcome->payload);
    }
  }

  // "Restart": a fresh store over the same storage.
  SummaryStore<SpaceSaving> reopened(&storage);
  ASSERT_EQ(reopened.Open(), 1u);
  ASSERT_TRUE(reopened.HasStream(7));
  EXPECT_EQ(reopened.EpochCount(7), kEpochs);
  EXPECT_EQ(reopened.BaseEpoch(7), 100u);
  ASSERT_EQ(reopened.Metas(7).size(), kEpochs);
  for (uint64_t lo = 0; lo < kEpochs; ++lo) {
    const auto outcome =
        reopened.QueryRangePayload(7, 100 + lo, 100 + kEpochs - 1);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(*outcome->payload, reference[lo]) << "suffix from " << lo;
  }
}

TEST(StoreRecoveryTest, OpenRecoversMultipleStreams) {
  MemStorage storage;
  {
    SummaryStore<SpaceSaving> store(&storage);
    for (uint64_t e = 0; e < 5; ++e) {
      const SpaceSaving summary = MakeEpochSummary(e);
      ASSERT_TRUE(store.Seal(1, summary, MetaFor(e, summary)));
      ASSERT_TRUE(store.Seal(2, summary, MetaFor(50 + e, summary)));
    }
  }
  SummaryStore<SpaceSaving> reopened(&storage);
  EXPECT_EQ(reopened.Open(), 2u);
  EXPECT_EQ(reopened.EpochCount(1), 5u);
  EXPECT_EQ(reopened.EpochCount(2), 5u);
  EXPECT_EQ(reopened.BaseEpoch(2), 50u);
}

// A torn or corrupted internal node is rebuilt from its children,
// byte-identically, and re-persisted for the next restart.
TEST(StoreRecoveryTest, TornInternalNodeIsRebuiltByteIdentically) {
  MemStorage storage;
  constexpr uint64_t kEpochs = 8;
  std::vector<uint8_t> healthy_answer;
  {
    SummaryStore<SpaceSaving> store(&storage);
    for (uint64_t e = 0; e < kEpochs; ++e) {
      const SpaceSaving summary = MakeEpochSummary(e);
      ASSERT_TRUE(store.Seal(1, summary, MetaFor(e, summary)));
    }
    healthy_answer = *store.QueryRangePayload(1, 0, kEpochs - 1)->payload;
  }

  // Smash the level-3 root node and one level-1 node on storage (the
  // documented layout: <prefix>/s<stream>/n<level>.<index>).
  const std::vector<uint8_t> junk = {0xba, 0xad};
  ASSERT_TRUE(storage.Read("store/s1/n3.0").has_value());
  ASSERT_TRUE(storage.Rewrite("store/s1/n3.0", junk));
  ASSERT_TRUE(storage.Rewrite("store/s1/n1.1", junk));

  SummaryStore<SpaceSaving> reopened(&storage);
  ASSERT_EQ(reopened.Open(), 1u);
  const auto outcome = reopened.QueryRangePayload(1, 0, kEpochs - 1);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome->payload, healthy_answer);
  EXPECT_GT(outcome->stats.merges_performed, 0u);  // Rebuilds happened.

  // The rebuilt nodes were re-persisted: a further restart reads them
  // without rebuilding.
  SummaryStore<SpaceSaving> third(&storage);
  ASSERT_EQ(third.Open(), 1u);
  const auto again = third.QueryRangePayload(1, 0, kEpochs - 1);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again->payload, healthy_answer);
  EXPECT_EQ(again->stats.merges_performed,
            again->stats.nodes_merged - 1);  // Only the query's own fold.
}

// A torn *leaf* ends the recovered prefix: epochs before it stay
// queryable, epochs after it are not admitted.
TEST(StoreRecoveryTest, TornLeafTruncatesTheRecoveredPrefix) {
  MemStorage storage;
  {
    SummaryStore<SpaceSaving> store(&storage);
    for (uint64_t e = 0; e < 6; ++e) {
      const SpaceSaving summary = MakeEpochSummary(e);
      ASSERT_TRUE(store.Seal(1, summary, MetaFor(e, summary)));
    }
  }
  std::vector<uint8_t> torn = *storage.Read("store/s1/n0.3");
  torn.resize(torn.size() / 2);
  ASSERT_TRUE(storage.Rewrite("store/s1/n0.3", torn));

  SummaryStore<SpaceSaving> reopened(&storage);
  ASSERT_EQ(reopened.Open(), 1u);
  EXPECT_EQ(reopened.EpochCount(1), 3u);
  EXPECT_TRUE(reopened.QueryRangePayload(1, 0, 2).has_value());
  EXPECT_FALSE(reopened.QueryRangePayload(1, 0, 3).has_value());
}

// The crash matrix: die at every write boundary in every mode; after
// restart, Open() recovers a consistent prefix whose answers are
// byte-identical to a healthy store's over the same epochs.
TEST(StoreRecoveryTest, CrashMatrixRecoversConsistentPrefix) {
  constexpr uint64_t kEpochs = 6;
  // Dry run: count the writes and capture healthy per-prefix answers.
  MemStorage healthy;
  const uint64_t total_writes = [&] {
    SealUpTo(&healthy, kEpochs);
    return healthy.writes_attempted();
  }();
  SummaryStore<SpaceSaving> healthy_store(&healthy);
  ASSERT_EQ(healthy_store.Open(), 1u);

  for (const CrashPoint& crash : CrashMatrix(total_writes, /*seed=*/9)) {
    MemStorage storage(crash);
    SealUpTo(&storage, kEpochs);
    storage.Restart();

    SummaryStore<SpaceSaving> recovered(&storage);
    const size_t streams = recovered.Open();
    if (streams == 0) continue;  // Crashed before the first durable leaf.
    const uint64_t epochs = recovered.EpochCount(1);
    ASSERT_LE(epochs, kEpochs);
    for (uint64_t hi = 0; hi < epochs; ++hi) {
      const auto got = recovered.QueryRangePayload(1, 0, hi);
      const auto want = healthy_store.QueryRangePayload(1, 0, hi);
      ASSERT_TRUE(got.has_value());
      ASSERT_TRUE(want.has_value());
      ASSERT_EQ(*got->payload, *want->payload)
          << "write " << crash.write_index << " mode "
          << ToString(crash.mode) << " range [0, " << hi << "]";
    }
    // Sealing can resume where recovery left off.
    const SpaceSaving next = MakeEpochSummary(epochs);
    ASSERT_TRUE(recovered.Seal(1, next, MetaFor(epochs, next)));
  }
}

// ---- Ingestion from the aggregation pipeline ----

TEST(StoreIngestTest, SealResultRecordsCoverageAndLostMass) {
  MemStorage storage;
  StoreOptions options;
  options.epsilon = 0.1;
  SummaryStore<SpaceSaving> store(&storage, options);

  AggregationResult<SpaceSaving> result;
  result.summary = MakeEpochSummary(0);
  result.shards_total = 4;
  result.shards_received = 3;
  ASSERT_TRUE(store.SealResult(1, /*epoch=*/10, result));

  ASSERT_EQ(store.EpochCount(1), 1u);
  const EpochMeta& meta = store.Metas(1)[0];
  EXPECT_EQ(meta.epoch, 10u);
  EXPECT_EQ(meta.n, result.summary->n());
  EXPECT_EQ(meta.shards_total, 4u);
  EXPECT_EQ(meta.shards_received, 3u);
  EXPECT_TRUE(meta.degraded());
  const ErrorAccounting accounting =
      AccountErrors(options.epsilon, 4, 3, result.summary->n(), 0);
  EXPECT_EQ(meta.lost_mass, accounting.lost_mass);
  EXPECT_EQ(meta.lost_mass_estimated, accounting.lost_mass_estimated);

  const auto outcome = store.QueryRangePayload(1, 10, 10);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->eps.degraded_epochs, 1u);
}

TEST(StoreIngestTest, SealResultRefusesCrashedOrEmptyResults) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  AggregationResult<SpaceSaving> empty;
  empty.shards_total = 4;
  EXPECT_FALSE(store.SealResult(1, 0, empty));

  AggregationResult<SpaceSaving> crashed;
  crashed.summary = MakeEpochSummary(0);
  crashed.crashed = true;
  EXPECT_FALSE(store.SealResult(1, 0, crashed));
  EXPECT_FALSE(store.HasStream(1));
}

TEST(StoreIngestTest, SealFromCheckpointIngestsLatestSnapshot) {
  // Write two snapshot checkpoints; the store must ingest the newest.
  MemStorage checkpoints;
  const SpaceSaving old_summary = MakeEpochSummary(1);
  const SpaceSaving new_summary = MakeEpochSummary(2);
  Snapshot old_snapshot;
  old_snapshot.epoch = 6;
  old_snapshot.n_shards = 4;
  old_snapshot.received_shards = {0, 1, 2, 3};
  old_snapshot.summary_payload = EncodeSummary(old_summary);
  ASSERT_TRUE(WriteSnapshotFile(&checkpoints, 1, old_snapshot));
  Snapshot new_snapshot;
  new_snapshot.epoch = 7;
  new_snapshot.n_shards = 4;
  new_snapshot.received_shards = {0, 2, 3};
  new_snapshot.summary_payload = EncodeSummary(new_summary);
  ASSERT_TRUE(WriteSnapshotFile(&checkpoints, 2, new_snapshot));

  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  ASSERT_TRUE(store.SealFromCheckpoint(3, checkpoints));
  ASSERT_EQ(store.EpochCount(3), 1u);
  EXPECT_EQ(store.BaseEpoch(3), 7u);
  const EpochMeta& meta = store.Metas(3)[0];
  EXPECT_EQ(meta.shards_total, 4u);
  EXPECT_EQ(meta.shards_received, 3u);
  EXPECT_EQ(meta.n, new_summary.n());

  const auto outcome = store.QueryRangePayload(3, 7, 7);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome->payload, EncodeSummary(new_summary));
}

TEST(StoreIngestTest, SealFromCheckpointRefusesEmptyStorage) {
  MemStorage empty;
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  EXPECT_FALSE(store.SealFromCheckpoint(1, empty));
}

TEST(StoreIngestTest, StoreStatsCountSealsAndBuilds) {
  MemStorage storage;
  SummaryStore<SpaceSaving> store(&storage);
  for (uint64_t e = 0; e < 8; ++e) {
    const SpaceSaving summary = MakeEpochSummary(e);
    ASSERT_TRUE(store.Seal(1, summary, MetaFor(e, summary)));
  }
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.epochs_sealed, 8u);
  EXPECT_EQ(stats.nodes_built, 7u);  // 8 leaves -> 7 internal nodes.
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_GT(stats.bytes_read, 0u);
}

}  // namespace
}  // namespace mergeable
