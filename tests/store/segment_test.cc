// SEG1 record framing: checksum coverage, torn-tail detection, corrupt
// record skipping, and in-place verification — the integrity layer the
// durable store and scrubber stand on.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/store/segment.h"

namespace mergeable {
namespace {

SegmentRecord Record(uint64_t stream, uint32_t level, uint64_t index,
                     std::initializer_list<uint8_t> payload) {
  return SegmentRecord{stream, level, index,
                       std::vector<uint8_t>(payload)};
}

TEST(SegmentTest, RoundTripsRecordsInOrder) {
  std::vector<uint8_t> file;
  for (const auto& record :
       {Record(1, 0, 0, {1, 2, 3}), Record(1, 0, 1, {}),
        Record(2, 3, 7, {9, 9, 9, 9})}) {
    const auto frame = EncodeSegmentRecord(record);
    file.insert(file.end(), frame.begin(), frame.end());
  }
  const SegmentScan scan = ScanSegment(file);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.corrupt_records, 0u);
  EXPECT_EQ(scan.valid_bytes, file.size());
  ASSERT_EQ(scan.entries.size(), 3u);
  EXPECT_TRUE(scan.entries[0].intact);
  EXPECT_EQ(scan.entries[0].record.stream, 1u);
  EXPECT_EQ(scan.entries[0].record.level, 0u);
  EXPECT_EQ(scan.entries[0].record.index, 0u);
  EXPECT_EQ(scan.entries[0].record.payload, std::vector<uint8_t>({1, 2, 3}));
  EXPECT_EQ(scan.entries[1].record.payload.size(), 0u);
  EXPECT_EQ(scan.entries[2].record.stream, 2u);
  EXPECT_EQ(scan.entries[2].record.level, 3u);
  EXPECT_EQ(scan.entries[2].record.index, 7u);
  // Offsets and lengths tile the file exactly.
  EXPECT_EQ(scan.entries[0].offset, 0u);
  EXPECT_EQ(scan.entries[1].offset, scan.entries[0].length);
  EXPECT_EQ(scan.entries[2].offset + scan.entries[2].length, file.size());
}

TEST(SegmentTest, EmptyFileScansClean) {
  const SegmentScan scan = ScanSegment({});
  EXPECT_TRUE(scan.entries.empty());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, 0u);
}

TEST(SegmentTest, EveryTruncationOfFinalRecordIsTornNeverMisread) {
  const auto first = EncodeSegmentRecord(Record(1, 0, 0, {1, 2}));
  const auto second = EncodeSegmentRecord(Record(1, 0, 1, {3, 4, 5}));
  std::vector<uint8_t> file = first;
  file.insert(file.end(), second.begin(), second.end());

  for (size_t cut = first.size() + 1; cut < file.size(); ++cut) {
    const std::vector<uint8_t> torn(file.begin(), file.begin() + cut);
    const SegmentScan scan = ScanSegment(torn);
    EXPECT_TRUE(scan.torn_tail) << "cut=" << cut;
    EXPECT_EQ(scan.valid_bytes, first.size()) << "cut=" << cut;
    ASSERT_EQ(scan.entries.size(), 1u) << "cut=" << cut;
    EXPECT_TRUE(scan.entries[0].intact);
    EXPECT_EQ(scan.entries[0].record.index, 0u);
  }
}

TEST(SegmentTest, EveryBitFlipIsCaughtByTheChecksum) {
  const auto first = EncodeSegmentRecord(Record(1, 0, 0, {1, 2}));
  const auto second = EncodeSegmentRecord(Record(1, 0, 1, {3, 4, 5, 6}));
  std::vector<uint8_t> file = first;
  file.insert(file.end(), second.begin(), second.end());

  for (size_t byte = 0; byte < file.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = file;
      flipped[byte] ^= static_cast<uint8_t>(1u << bit);
      const SegmentScan scan = ScanSegment(flipped);
      // The flip lands in exactly one record: that record must come
      // back corrupt (or unframeable — a flip in a magic/length field),
      // and never as a silently different intact record.
      uint64_t intact_unchanged = 0;
      for (const SegmentEntry& entry : scan.entries) {
        if (!entry.intact) continue;
        const auto reencoded = EncodeSegmentRecord(entry.record);
        ASSERT_EQ(
            std::vector<uint8_t>(file.begin() + entry.offset,
                                 file.begin() + entry.offset + entry.length),
            reencoded)
            << "byte=" << byte << " bit=" << bit;
        ++intact_unchanged;
      }
      EXPECT_LT(intact_unchanged, 2u) << "byte=" << byte << " bit=" << bit;
      EXPECT_TRUE(scan.torn_tail || scan.corrupt_records > 0)
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(SegmentTest, CorruptMiddleRecordIsSkippedNotFatal) {
  const auto a = EncodeSegmentRecord(Record(1, 0, 0, {1}));
  const auto b = EncodeSegmentRecord(Record(1, 0, 1, {2}));
  const auto c = EncodeSegmentRecord(Record(1, 0, 2, {3}));
  std::vector<uint8_t> file = a;
  // Flip one payload bit inside the middle record (the last byte before
  // its trailing checksum is payload).
  auto rotted = b;
  rotted[rotted.size() - 9] ^= 0x01;
  file.insert(file.end(), rotted.begin(), rotted.end());
  file.insert(file.end(), c.begin(), c.end());

  const SegmentScan scan = ScanSegment(file);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.corrupt_records, 1u);
  ASSERT_EQ(scan.entries.size(), 3u);
  EXPECT_TRUE(scan.entries[0].intact);
  EXPECT_FALSE(scan.entries[1].intact);
  EXPECT_TRUE(scan.entries[2].intact);  // Framing recovers past the rot.
  EXPECT_EQ(scan.entries[2].record.index, 2u);
}

TEST(SegmentTest, VerifyAtDetectsRotInPlace) {
  const auto a = EncodeSegmentRecord(Record(1, 0, 0, {1, 2, 3}));
  const auto b = EncodeSegmentRecord(Record(1, 1, 0, {4, 5}));
  std::vector<uint8_t> file = a;
  file.insert(file.end(), b.begin(), b.end());

  EXPECT_TRUE(VerifySegmentRecordAt(file, 0, a.size()));
  EXPECT_TRUE(VerifySegmentRecordAt(file, a.size(), b.size()));
  // Wrong length, out-of-range, and rotted bytes all fail closed.
  EXPECT_FALSE(VerifySegmentRecordAt(file, 0, a.size() - 1));
  EXPECT_FALSE(VerifySegmentRecordAt(file, file.size(), 8));
  EXPECT_FALSE(VerifySegmentRecordAt(file, a.size(), b.size() + 1));
  auto rotted = file;
  rotted[a.size() + 6] ^= 0x10;
  EXPECT_FALSE(VerifySegmentRecordAt(rotted, a.size(), b.size()));
  EXPECT_TRUE(VerifySegmentRecordAt(rotted, 0, a.size()));
}

}  // namespace
}  // namespace mergeable
