#include "mergeable/core/merge_driver.h"

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/core/concepts.h"
#include "mergeable/frequency/misra_gries.h"
#include "mergeable/sketch/count_min.h"
#include "mergeable/stream/generators.h"
#include "mergeable/stream/partition.h"
#include "mergeable/util/bytes.h"

namespace mergeable {
namespace {

// A trivially mergeable exact summary used to verify driver mechanics:
// any topology must produce identical results.
struct ExactSum {
  std::map<uint64_t, uint64_t> counts;
  uint64_t n = 0;

  void Update(uint64_t item) {
    ++counts[item];
    ++n;
  }
  void Merge(const ExactSum& other) {
    for (const auto& [item, count] : other.counts) counts[item] += count;
    n += other.n;
  }
};

static_assert(Mergeable<ExactSum>);
static_assert(StreamSummary<ExactSum, uint64_t>);
static_assert(StreamSummary<MisraGries, uint64_t>);

std::vector<ExactSum> MakeParts(int count) {
  std::vector<ExactSum> parts;
  for (int i = 0; i < count; ++i) {
    ExactSum part;
    for (int j = 0; j <= i; ++j) part.Update(static_cast<uint64_t>(j));
    parts.push_back(std::move(part));
  }
  return parts;
}

class MergeTopologyTest : public ::testing::TestWithParam<MergeTopology> {};

TEST_P(MergeTopologyTest, AllTopologiesProduceTheSameExactResult) {
  Rng rng(1);
  const ExactSum merged = MergeAll(MakeParts(13), GetParam(), &rng);
  EXPECT_EQ(merged.n, 13u * 14u / 2u);
  // Item j appears in parts j..12, so 13 - j times.
  for (uint64_t j = 0; j < 13; ++j) {
    ASSERT_EQ(merged.counts.at(j), 13 - j) << "item " << j;
  }
}

TEST_P(MergeTopologyTest, SinglePartIsIdentity) {
  Rng rng(2);
  const ExactSum merged = MergeAll(MakeParts(1), GetParam(), &rng);
  EXPECT_EQ(merged.n, 1u);
}

TEST_P(MergeTopologyTest, ToStringIsNonEmpty) {
  EXPECT_FALSE(ToString(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, MergeTopologyTest,
    ::testing::ValuesIn(kAllTopologies),
    [](const ::testing::TestParamInfo<MergeTopology>& info) {
      return ToString(info.param);
    });

TEST(MergeDriverTest, MergeAllWithCustomFunction) {
  auto parts = MakeParts(5);
  int calls = 0;
  const ExactSum merged = MergeAllWith(
      std::move(parts), MergeTopology::kLeftDeepChain,
      [&calls](ExactSum& into, const ExactSum& from) {
        into.Merge(from);
        ++calls;
      });
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(merged.n, 15u);
}

TEST(MergeDriverTest, BalancedTreeHandlesOddCounts) {
  Rng rng(3);
  for (int count : {2, 3, 5, 9, 17}) {
    const ExactSum merged =
        MergeAll(MakeParts(count), MergeTopology::kBalancedTree, &rng);
    uint64_t expected = 0;
    for (int i = 1; i <= count; ++i) expected += static_cast<uint64_t>(i);
    EXPECT_EQ(merged.n, expected) << "count " << count;
  }
}

TEST(MergeDriverTest, RandomTreeIsSeedDeterministic) {
  // With an exact summary any tree gives the same result; determinism is
  // observable through a counting merge function.
  const auto order_of = [](uint64_t seed) {
    Rng rng(seed);
    std::vector<uint64_t> merged_ns;
    MergeAllWith(
        MakeParts(8), MergeTopology::kRandomTree,
        [&merged_ns](ExactSum& into, const ExactSum& from) {
          into.Merge(from);
          merged_ns.push_back(into.n);
        },
        &rng);
    return merged_ns;
  };
  EXPECT_EQ(order_of(7), order_of(7));
}

TEST(MergeDriverTest, SummarizeShardsBuildsOneSummaryPerShard) {
  StreamSpec spec;
  spec.kind = StreamKind::kUniform;
  spec.n = 1000;
  spec.universe = 64;
  const auto stream = GenerateStream(spec, 4);
  const auto shards = PartitionStream(stream, 4, PartitionPolicy::kRoundRobin);

  const auto summaries =
      SummarizeShards(shards, [] { return ExactSum{}; });
  ASSERT_EQ(summaries.size(), 4u);
  uint64_t total = 0;
  for (const ExactSum& summary : summaries) total += summary.n;
  EXPECT_EQ(total, stream.size());
}

TEST(MergeDriverTest, SummarizeShardsWorksWithRealSummaries) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 5000;
  spec.universe = 256;
  const auto stream = GenerateStream(spec, 5);
  const auto shards =
      PartitionStream(stream, 8, PartitionPolicy::kContiguous);

  auto summaries = SummarizeShards(shards, [] { return MisraGries(16); });
  const MisraGries merged =
      MergeAll(std::move(summaries), MergeTopology::kBalancedTree);
  EXPECT_EQ(merged.n(), stream.size());
  EXPECT_LE(merged.size(), 16u);
}

// Degenerate input shapes. The paper's guarantee is about arbitrary
// merge trees, which includes the trivial ones: a single shard must be
// the identity, and duplicated shards must aggregate exactly like the
// equivalent single stream.

std::vector<uint8_t> Encoded(const CountMinSketch& sketch) {
  ByteWriter writer;
  sketch.EncodeTo(writer);
  return writer.TakeBytes();
}

TEST(MergeDriverDegenerateTest, ZeroShardsSummarizeToNothing) {
  const std::vector<std::vector<uint64_t>> no_shards;
  const auto summaries =
      SummarizeShards(no_shards, [] { return ExactSum{}; });
  EXPECT_TRUE(summaries.empty());
  // And the merge of nothing is a programmer error, not a silent empty.
  EXPECT_DEATH(MergeAll(std::move(summaries), MergeTopology::kBalancedTree),
               "at least one summary");
}

TEST(MergeDriverDegenerateTest, OneShardEqualsDirectSummary) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 4000;
  spec.universe = 512;
  const auto stream = GenerateStream(spec, 9);
  const auto factory = [] {
    return CountMinSketch::ForEpsilonDelta(0.01, 0.01, 77);
  };

  CountMinSketch direct = factory();
  for (uint64_t item : stream) direct.Update(item);

  for (MergeTopology topology : kAllTopologies) {
    Rng rng(11);
    auto summaries = SummarizeShards(
        std::vector<std::vector<uint64_t>>{stream}, factory);
    ASSERT_EQ(summaries.size(), 1u);
    const CountMinSketch merged =
        MergeAll(std::move(summaries), topology, &rng);
    EXPECT_EQ(Encoded(merged), Encoded(direct)) << ToString(topology);
  }
}

TEST(MergeDriverDegenerateTest, AllDuplicateShardsEqualDirectSummary) {
  // Every shard is the same report. Merging k copies must behave exactly
  // like one stream that repeats the data k times — a linear sketch
  // makes the comparison byte-exact.
  StreamSpec spec;
  spec.kind = StreamKind::kUniform;
  spec.n = 1000;
  spec.universe = 128;
  const auto stream = GenerateStream(spec, 13);
  constexpr size_t kCopies = 5;
  const std::vector<std::vector<uint64_t>> shards(kCopies, stream);
  const auto factory = [] {
    return CountMinSketch::ForEpsilonDelta(0.02, 0.01, 33);
  };

  CountMinSketch direct = factory();
  for (size_t copy = 0; copy < kCopies; ++copy) {
    for (uint64_t item : stream) direct.Update(item);
  }

  for (MergeTopology topology : kAllTopologies) {
    Rng rng(17);
    const CountMinSketch merged =
        MergeAll(SummarizeShards(shards, factory), topology, &rng);
    EXPECT_EQ(merged.n(), stream.size() * kCopies);
    EXPECT_EQ(Encoded(merged), Encoded(direct)) << ToString(topology);
  }
}

TEST(MergeDriverDegenerateTest, AllDuplicateShardsExactCounts) {
  // Same shape with an exact summary: counts must be exactly k-fold.
  std::vector<uint64_t> data = {1, 2, 2, 3, 3, 3};
  const std::vector<std::vector<uint64_t>> shards(4, data);
  const ExactSum merged = MergeAll(
      SummarizeShards(shards, [] { return ExactSum{}; }),
      MergeTopology::kBalancedTree);
  EXPECT_EQ(merged.n, 24u);
  EXPECT_EQ(merged.counts.at(1), 4u);
  EXPECT_EQ(merged.counts.at(2), 8u);
  EXPECT_EQ(merged.counts.at(3), 12u);
}

TEST(MergeDriverDeathTest, EmptyInputAborts) {
  EXPECT_DEATH(MergeAll(std::vector<ExactSum>{},
                        MergeTopology::kLeftDeepChain),
               "at least one summary");
}

TEST(MergeDriverDeathTest, RandomTreeRequiresRng) {
  EXPECT_DEATH(MergeAll(MakeParts(3), MergeTopology::kRandomTree),
               "needs an Rng");
}

}  // namespace
}  // namespace mergeable
