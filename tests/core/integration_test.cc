// Integration tests: whole pipelines over one workload, combining
// several summaries, topologies and the wire format — the way a real
// deployment composes the library. Also pins down golden values for the
// deterministic components so accidental behavior changes surface here.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/mergeable.h"

namespace mergeable {
namespace {

// A fixed workload shared by the pipeline tests.
std::vector<uint64_t> Workload() {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 100000;
  spec.universe = 8192;
  spec.alpha = 1.1;
  return GenerateStream(spec, 4242);
}

TEST(IntegrationTest, GeneratorIsStableAcrossRuns) {
  // Golden values: the deterministic generator must never drift, or
  // every seeded experiment in EXPERIMENTS.md silently changes.
  const auto stream = Workload();
  ASSERT_EQ(stream.size(), 100000u);
  EXPECT_EQ(stream, Workload());
  const auto counts = ExactCounts(stream);
  // The head of the distribution is a stable property of (spec, seed).
  EXPECT_GT(counts.front().second, 5000u);
  EXPECT_EQ(counts.front().first, MixHash(0, 42));  // Rank 0 item id.
}

TEST(IntegrationTest, FullFrequencyPipelineAgainstExact) {
  const auto stream = Workload();
  const auto shards = PartitionStream(stream, 16, PartitionPolicy::kByValue, 1);

  // Per-shard: bucket-list SpaceSaving (O(1) hot path), converted and
  // merged with the Cafaro algorithm, queried through TopK.
  ExactCounter exact;
  SpaceSaving merged(200);
  bool first = true;
  for (const auto& shard : shards) {
    SpaceSavingBucket local(200);
    for (uint64_t item : shard) {
      local.Update(item);
      exact.Update(item);
    }
    if (first) {
      merged = local.ToSpaceSaving();
      first = false;
    } else {
      merged.MergeCafaro(local.ToSpaceSaving());
    }
  }
  ASSERT_EQ(merged.n(), exact.n());

  // Every guaranteed top-10 item must truly be top-10.
  const auto exact_top = exact.Counters();
  const auto top = TopK(merged, 10);
  for (const auto& entry : top) {
    if (!entry.guaranteed) continue;
    bool in_true_top = false;
    for (size_t i = 0; i < 10 && i < exact_top.size(); ++i) {
      in_true_top |= exact_top[i].item == entry.item;
    }
    EXPECT_TRUE(in_true_top) << "item " << entry.item;
  }
  // And intervals always contain the truth.
  for (const auto& entry : top) {
    const uint64_t truth = exact.Count(entry.item);
    EXPECT_LE(entry.lower, truth);
    EXPECT_GE(entry.upper, truth);
  }
}

TEST(IntegrationTest, QuantilePipelineThroughWireFormat) {
  const auto stream = Workload();
  const auto shards =
      PartitionStream(stream, 12, PartitionPolicy::kContiguous);

  // Shard -> sketch -> bytes -> decode -> merge, mimicking a network hop.
  MergeableQuantiles merged = MergeableQuantiles::ForEpsilon(0.01, 900);
  ExactQuantiles exact;
  for (size_t s = 0; s < shards.size(); ++s) {
    MergeableQuantiles local =
        MergeableQuantiles::ForEpsilon(0.01, 901 + s);
    for (uint64_t item : shards[s]) {
      const auto value = static_cast<double>(item % 10000);
      local.Update(value);
      exact.Update(value);
    }
    ByteWriter writer;
    local.EncodeTo(writer);
    const auto bytes = writer.TakeBytes();
    ByteReader reader(bytes);
    const auto decoded = MergeableQuantiles::DecodeFrom(reader);
    ASSERT_TRUE(decoded.has_value()) << "shard " << s;
    merged.Merge(*decoded);
  }
  ASSERT_EQ(merged.n(), stream.size());
  for (double phi : {0.25, 0.5, 0.9, 0.99}) {
    const double answer = merged.Quantile(phi);
    const auto rank = static_cast<double>(exact.Rank(answer));
    EXPECT_NEAR(rank, phi * static_cast<double>(stream.size()),
                0.02 * static_cast<double>(stream.size()))
        << "phi " << phi;
  }
}

TEST(IntegrationTest, MixedSketchDashboard) {
  // One pass filling four sketches; cross-check their answers against
  // each other where they overlap.
  const auto stream = Workload();
  CountMinSketch cm(5, 4096, 77);
  SpaceSaving ss(500);
  KmvSketch kmv(1024, 78);
  BloomFilter bloom = BloomFilter::ForExpectedItems(10000, 0.01, 79);
  for (uint64_t item : stream) {
    cm.Update(item);
    ss.Update(item);
    kmv.Add(item);
    bloom.Add(item);
  }
  const auto counts = ExactCounts(stream);
  // CM upper bound >= SS lower bound for the top items.
  for (size_t i = 0; i < 20; ++i) {
    const uint64_t item = counts[i].first;
    EXPECT_GE(cm.Estimate(item), ss.LowerEstimate(item));
    EXPECT_TRUE(bloom.MayContain(item));
  }
  EXPECT_NEAR(kmv.EstimateDistinct() / static_cast<double>(counts.size()),
              1.0, 0.15);
}

TEST(IntegrationTest, AllTopologiesAgreeOnGuarantees) {
  const auto stream = Workload();
  const auto truth = ExactCounts(stream);
  const auto shards = PartitionStream(stream, 32, PartitionPolicy::kRandom, 2);
  for (MergeTopology topology : kAllTopologies) {
    auto parts = SummarizeShards(
        shards, [] { return MisraGries::ForEpsilon(0.005); });
    Rng rng(3);
    const MisraGries merged = MergeAll(std::move(parts), topology, &rng);
    const uint64_t error = merged.ErrorBound();
    EXPECT_LE(error, static_cast<uint64_t>(0.005 * 100000)) << ToString(topology);
    for (size_t i = 0; i < 10; ++i) {
      const auto [item, count] = truth[i];
      EXPECT_LE(merged.LowerEstimate(item), count);
      EXPECT_LE(count, merged.LowerEstimate(item) + error);
    }
  }
}

}  // namespace
}  // namespace mergeable
