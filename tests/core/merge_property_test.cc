// Algebraic merge laws, driven through the summary registry: which
// codecs' merges commute and associate at the byte level, and what the
// weaker error-level laws guarantee for the ones that do not.
//
// Byte-level laws run over the registry's own corpus payloads through
// merge_payloads — the exact type-erased path the store and the
// coordinator use — so a codec added to the registry is automatically
// screened. The classification (commutative / associative / identity)
// is part of each codec's contract: linear sketches (Count-Min, Count
// Sketch, AMS, Bloom, KMV, dyadic Count-Min, and the elastic variants,
// whose width folds are exact linear maps) are exact under any
// regrouping; counter summaries (Misra-Gries, SpaceSaving) commute
// byte-for-byte thanks to their canonical sorted encodings but
// associate only at the error level (each merge step prunes, so
// different groupings may keep different near-threshold counters while
// both staying inside epsilon * n); sampling and randomized-compaction
// types (reservoir, mergeable quantiles) promise only distributional
// laws and are exercised by their own suites.
//
// The elastic corpora deliberately mix widths (the empty entry is
// wider than the filled one), so every pairing below also exercises the
// fold-to-min mismatched merge at the byte level.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/summary_registry.h"
#include "mergeable/elastic/elastic_count_min.h"
#include "mergeable/elastic/elastic_count_sketch.h"
#include "mergeable/frequency/deamortized_space_saving.h"
#include "mergeable/frequency/exact_counter.h"
#include "mergeable/frequency/misra_gries.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/util/bytes.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

// Tags whose merge is byte-commutative: merge_payloads(a, b) ==
// merge_payloads(b, a) for any two compatible payloads.
bool IsByteCommutative(SummaryTag tag) {
  switch (tag) {
    // SpaceSaving qualifies because its merge rebuilds every survivor
    // from the symmetric MG-domain combine (over = 0, slack and n
    // symmetric) and its encoding is canonical — entries are written
    // sorted by (count desc, item asc), so equal states are equal
    // bytes. KMV likewise: set-union semantics plus a sorted canonical
    // encoding of the retained set.
    case SummaryTag::kMisraGries:
    case SummaryTag::kSpaceSaving:
    case SummaryTag::kCountMin:
    case SummaryTag::kCountSketch:
    case SummaryTag::kAms:
    case SummaryTag::kBloom:
    case SummaryTag::kKmv:
    case SummaryTag::kDyadicCountMin:
    case SummaryTag::kElasticCountMin:
    case SummaryTag::kElasticCountSketch:
      return true;
    default:
      return false;
  }
}

// Tags whose merge is byte-associative (linear / set-union semantics:
// the merged state is a pure function of the multiset of inputs).
bool IsByteAssociative(SummaryTag tag) {
  switch (tag) {
    case SummaryTag::kCountMin:
    case SummaryTag::kCountSketch:
    case SummaryTag::kAms:
    case SummaryTag::kBloom:
    case SummaryTag::kKmv:
    case SummaryTag::kDyadicCountMin:
    // The elastic sketches stay associative across mixed widths: a
    // level of width l always lands at min(l, final target) no matter
    // how the merges group, and folds compose exactly
    // (fold(fold(x, w), w') == fold(x, w') for w' | w).
    case SummaryTag::kElasticCountMin:
    case SummaryTag::kElasticCountSketch:
      return true;
    default:
      return false;
  }
}

// Tags for which the corpus's empty instance is a byte-level identity:
// merge_payloads(x, empty) == canonical(x).
bool HasByteIdentity(SummaryTag tag) {
  switch (tag) {
    case SummaryTag::kMisraGries:
    case SummaryTag::kCountMin:
    case SummaryTag::kCountSketch:
    case SummaryTag::kAms:
    case SummaryTag::kBloom:
    case SummaryTag::kKmv:
    case SummaryTag::kDyadicCountMin:
    // The elastic corpora put their empty instance at the WIDEST width
    // in the corpus, so merging it in folds only itself (exactly, to
    // zero counters) and never the other operand — the identity law
    // holds bytewise across the mixed-width entries. (SpaceSaving has
    // no byte identity: merging re-expresses a streamed summary in the
    // MG domain, changing bytes without changing estimates.)
    case SummaryTag::kElasticCountMin:
    case SummaryTag::kElasticCountSketch:
      return true;
    default:
      return false;
  }
}

// canonical(x): what merge-with-canonical-self-0 would produce — the
// encode(decode(x)) fixed point the store serves. For corpus entries
// (freshly encoded) this is x itself; asserted, not assumed.
template <typename T>
std::vector<uint8_t> Encode(const T& summary) {
  ByteWriter writer;
  summary.EncodeTo(writer);
  return writer.TakeBytes();
}

TEST(CoreMergePropertyTest, MergePayloadsDefinedExactlyForMergeableCodecs) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    const auto corpus = info.corpus(11);
    ASSERT_GE(corpus.size(), 2u) << info.name;
    const auto merged = info.merge_payloads(corpus[1], corpus[1]);
    EXPECT_EQ(merged.has_value(), info.mergeable) << info.name;
  }
}

TEST(CoreMergePropertyTest, CommutativityHoldsWhereCodecsAreCanonical) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    if (!info.mergeable || !IsByteCommutative(info.tag)) continue;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const auto corpus = info.corpus(seed);
      for (size_t i = 0; i < corpus.size(); ++i) {
        for (size_t j = i; j < corpus.size(); ++j) {
          const auto ab = info.merge_payloads(corpus[i], corpus[j]);
          const auto ba = info.merge_payloads(corpus[j], corpus[i]);
          ASSERT_TRUE(ab.has_value()) << info.name << " seed " << seed;
          ASSERT_TRUE(ba.has_value()) << info.name << " seed " << seed;
          EXPECT_EQ(*ab, *ba)
              << info.name << " seed " << seed << " (" << i << "," << j << ")";
        }
      }
    }
  }
}

TEST(CoreMergePropertyTest, AssociativityIsByteExactForLinearSketches) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    if (!info.mergeable || !IsByteAssociative(info.tag)) continue;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      // Three distinct contents of the same shape. Entries across
      // different corpus seeds are NOT compatible (hash seeds differ),
      // so the third operand is derived from the same corpus.
      const auto corpus = info.corpus(seed);
      const std::vector<uint8_t>& a = corpus[1];
      const std::vector<uint8_t>& b = corpus.back();
      const auto c_opt = info.merge_payloads(corpus[1], corpus.back());
      ASSERT_TRUE(c_opt.has_value()) << info.name;
      const std::vector<uint8_t>& c = *c_opt;
      const auto ab = info.merge_payloads(a, b);
      ASSERT_TRUE(ab.has_value()) << info.name;
      const auto ab_c = info.merge_payloads(*ab, c);
      const auto bc = info.merge_payloads(b, c);
      ASSERT_TRUE(bc.has_value()) << info.name;
      const auto a_bc = info.merge_payloads(a, *bc);
      ASSERT_TRUE(ab_c.has_value()) << info.name;
      ASSERT_TRUE(a_bc.has_value()) << info.name;
      EXPECT_EQ(*ab_c, *a_bc) << info.name << " seed " << seed;
    }
  }
}

TEST(CoreMergePropertyTest, EmptyInstanceIsTheMergeIdentityWhereClaimed) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    if (!info.mergeable || !HasByteIdentity(info.tag)) continue;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const auto corpus = info.corpus(seed);
      const std::vector<uint8_t>& empty = corpus[0];
      for (size_t i = 0; i < corpus.size(); ++i) {
        // canonical(x) spelled through the registry itself: merging the
        // empty on the left canonicalizes without adding content, so
        // left- and right-identity must agree with each other and with
        // the corpus payload (which is freshly encoded, i.e. canonical).
        const auto left = info.merge_payloads(empty, corpus[i]);
        const auto right = info.merge_payloads(corpus[i], empty);
        ASSERT_TRUE(left.has_value()) << info.name;
        ASSERT_TRUE(right.has_value()) << info.name;
        EXPECT_EQ(*right, corpus[i]) << info.name << " seed " << seed
                                     << " entry " << i;
        EXPECT_EQ(*left, corpus[i]) << info.name << " seed " << seed
                                    << " entry " << i;
      }
    }
  }
}

// ---- Error-level laws for the counter summaries ----
//
// Counter merges prune at each step, so regrouping can change which
// near-threshold counters survive — associativity holds at the level
// that matters for serving: every grouping obeys the epsilon * n
// bracket against the true stream, and the total mass n is grouping-
// independent.

template <typename S>
void CheckBracket(const S& summary, const ExactCounter& exact,
                  double epsilon) {
  const double budget = epsilon * static_cast<double>(exact.n());
  ASSERT_EQ(summary.n(), exact.n());
  for (const Counter& c : exact.Counters()) {
    const uint64_t lower = summary.LowerEstimate(c.item);
    const uint64_t upper = summary.UpperEstimate(c.item);
    ASSERT_LE(lower, c.count);
    ASSERT_GE(upper, c.count);
    ASSERT_LE(static_cast<double>(upper - lower), budget + 1e-9);
  }
}

template <typename S>
class CounterGroupingTest : public ::testing::Test {};

using CounterTypes =
    ::testing::Types<MisraGries, SpaceSaving, DeamortizedSpaceSaving>;
TYPED_TEST_SUITE(CounterGroupingTest, CounterTypes);

template <typename S>
S CounterForEpsilon(double epsilon) {
  return S::ForEpsilon(epsilon);
}

TYPED_TEST(CounterGroupingTest, EveryGroupingKeepsTheEpsilonBracket) {
  constexpr double kEpsilon = 0.05;
  for (uint64_t seed = 40; seed < 48; ++seed) {
    Rng rng(seed);
    std::vector<TypeParam> shards;
    std::vector<ExactCounter> exact_shards(3);
    for (int s = 0; s < 3; ++s) {
      shards.push_back(CounterForEpsilon<TypeParam>(kEpsilon));
    }
    for (int step = 0; step < 6000; ++step) {
      uint64_t item = rng.UniformInt(uint64_t{40});
      item = rng.UniformInt(item + 1);
      const int s = step % 3;
      shards[s].Update(item);
      exact_shards[s].Update(item);
    }
    ExactCounter exact;
    for (const ExactCounter& e : exact_shards) exact.Merge(e);

    // (a + b) + c.
    TypeParam left_assoc = shards[0];
    left_assoc.Merge(shards[1]);
    left_assoc.Merge(shards[2]);
    CheckBracket(left_assoc, exact, kEpsilon);

    // a + (b + c).
    TypeParam right_inner = shards[1];
    right_inner.Merge(shards[2]);
    TypeParam right_assoc = shards[0];
    right_assoc.Merge(right_inner);
    CheckBracket(right_assoc, exact, kEpsilon);

    // (b + a) + c: operand order within a merge is also free at the
    // error level, whatever the bytes do.
    TypeParam commuted = shards[1];
    commuted.Merge(shards[0]);
    commuted.Merge(shards[2]);
    CheckBracket(commuted, exact, kEpsilon);

    // Mass is grouping-independent even though pruning is not.
    EXPECT_EQ(left_assoc.n(), right_assoc.n());
    EXPECT_EQ(left_assoc.n(), commuted.n());
    EXPECT_EQ(left_assoc.n(), exact.n());
  }
}

// ---- Mismatched-size merge laws ----
//
// Elasticity makes operands of different sizes mergeable: sketches fold
// the wider operand to the narrower power-of-two lattice (an exact
// linear map), counters fold the larger capacity down via Resize. The
// laws here pin the contract: byte-commutativity and associativity
// across width pairs {2^a, 2^b}, and an analytic widened-epsilon budget
// for the counter folds.

template <typename E>
void CheckElasticMergeLaws(int depth, uint64_t seed) {
  const uint32_t widths[] = {32, 64, 256, 1024};
  for (uint32_t wa : widths) {
    for (uint32_t wb : widths) {
      E a(depth, wa, seed);
      E b(depth, wb, seed);
      Rng rng(seed ^ (wa * 131) ^ wb);
      for (int i = 0; i < 3000; ++i) a.Update(rng.UniformInt(uint64_t{400}));
      for (int i = 0; i < 2000; ++i) b.Update(rng.UniformInt(uint64_t{300}));

      E ab = a;
      ab.Merge(b);
      E ba = b;
      ba.Merge(a);
      EXPECT_EQ(ab.width(), std::min(wa, wb));
      EXPECT_EQ(Encode(ab), Encode(ba)) << wa << "x" << wb;

      // Associativity with a third width: ((a+b)+c) == (a+(b+c)).
      E c(depth, 128, seed);
      for (int i = 0; i < 1000; ++i) c.Update(rng.UniformInt(uint64_t{200}));
      E abc = ab;
      abc.Merge(c);
      E bc = b;
      bc.Merge(c);
      E a_bc = a;
      a_bc.Merge(bc);
      EXPECT_EQ(Encode(abc), Encode(a_bc)) << wa << "x" << wb << "x128";

      // The merged bound must equal the bound of the pre-folded
      // equivalent: folding is exact, so merging into the narrower
      // width costs exactly the narrow width's epsilon on the combined
      // mass — the "widened epsilon" is a statement about masses and
      // widths, not about which operand folded.
      E narrow(depth, std::min(wa, wb), seed);
      Rng replay(seed ^ (wa * 131) ^ wb);
      for (int i = 0; i < 3000; ++i) {
        narrow.Update(replay.UniformInt(uint64_t{400}));
      }
      for (int i = 0; i < 2000; ++i) {
        narrow.Update(replay.UniformInt(uint64_t{300}));
      }
      EXPECT_EQ(Encode(ab), Encode(narrow)) << wa << "x" << wb;
      EXPECT_DOUBLE_EQ(ab.ErrorBound(), narrow.ErrorBound());
    }
  }
}

TEST(CoreMergePropertyTest, ElasticCountMinMismatchedWidthLaws) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    CheckElasticMergeLaws<ElasticCountMin>(4, seed);
  }
}

TEST(CoreMergePropertyTest, ElasticCountSketchMismatchedWidthLaws) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    CheckElasticMergeLaws<ElasticCountSketch>(5, seed);
  }
}

// Mismatched-capacity counter merges: fold-to-min with an analytically
// widened budget. Folding a capacity-k1 summary to k2 < k1 adds at most
// n1/k1 (the subtracted minimum) + n1/k2 (the pruning order statistic)
// of slack; the equal-capacity merge then adds its own minima and
// order statistic. Summed, the result's two-sided uncertainty stays
// under eps1 * n1 + eps2 * (3 n1 + 2 n2) — loose, but analytic, and
// far below the naive "all mass is slack" fallback.
template <typename S>
void CheckMismatchedCounterMerge(int k_small, int k_large, uint64_t seed) {
  Rng rng(seed);
  S small(k_small);
  S large(k_large);
  std::map<uint64_t, uint64_t> exact;
  for (int i = 0; i < 4000; ++i) {
    uint64_t item = rng.UniformInt(uint64_t{50});
    item = rng.UniformInt(item + 1);
    small.Update(item);
    ++exact[item];
  }
  for (int i = 0; i < 6000; ++i) {
    uint64_t item = rng.UniformInt(uint64_t{50});
    item = rng.UniformInt(item + 1);
    large.Update(item);
    ++exact[item];
  }
  const double n_small = 4000.0;
  const double n_large = 6000.0;
  // Effective epsilon per type: SpaceSaving guarantees n/capacity,
  // DeamortizedSpaceSaving n/guarantee (guarantee = capacity/2).
  const auto effective_epsilon = [](const S& s) {
    if constexpr (requires { s.guarantee(); }) {
      return 1.0 / s.guarantee();
    } else {
      return 1.0 / s.capacity();
    }
  };
  const double eps_small = effective_epsilon(small);  // The NARROW budget.
  const double eps_large = effective_epsilon(large);

  // Both orders: fold-to-min must make them byte-identical.
  S merged = small;
  merged.Merge(large);
  S reversed = large;
  reversed.Merge(small);
  EXPECT_EQ(merged.capacity(), k_small);
  EXPECT_EQ(reversed.capacity(), k_small);
  EXPECT_EQ(Encode(merged), Encode(reversed))
      << "k " << k_small << "x" << k_large << " seed " << seed;

  EXPECT_EQ(merged.n(), 10000u);
  const double budget =
      eps_large * n_large + eps_small * (3 * n_large + 2 * n_small);
  EXPECT_LE(static_cast<double>(merged.UnderSlack()), budget + 1e-9);
  for (const auto& [item, f] : exact) {
    EXPECT_LE(merged.LowerEstimate(item), f) << "item " << item;
    EXPECT_GE(merged.UpperEstimate(item), f) << "item " << item;
  }
}

TEST(CoreMergePropertyTest, SpaceSavingMismatchedCapacityMergeLaws) {
  for (uint64_t seed = 60; seed < 66; ++seed) {
    CheckMismatchedCounterMerge<SpaceSaving>(16, 64, seed);
    CheckMismatchedCounterMerge<SpaceSaving>(20, 33, seed);
  }
}

TEST(CoreMergePropertyTest, DeamortizedMismatchedCapacityMergeLaws) {
  for (uint64_t seed = 60; seed < 66; ++seed) {
    CheckMismatchedCounterMerge<DeamortizedSpaceSaving>(16, 64, seed);
    CheckMismatchedCounterMerge<DeamortizedSpaceSaving>(20, 33, seed);
  }
}

TYPED_TEST(CounterGroupingTest, MergingAnEmptySummaryPreservesTheBracket) {
  constexpr double kEpsilon = 0.05;
  Rng rng(77);
  TypeParam summary = CounterForEpsilon<TypeParam>(kEpsilon);
  ExactCounter exact;
  for (int step = 0; step < 5000; ++step) {
    uint64_t item = rng.UniformInt(uint64_t{30});
    item = rng.UniformInt(item + 1);
    summary.Update(item);
    exact.Update(item);
  }
  const uint64_t n_before = summary.n();
  summary.Merge(CounterForEpsilon<TypeParam>(kEpsilon));
  EXPECT_EQ(summary.n(), n_before);
  CheckBracket(summary, exact, kEpsilon);
}

}  // namespace
}  // namespace mergeable
