// Table-driven corrupt-input rejection across every summary wire format.
//
// One table row per EncodeTo/DecodeFrom pair; every row is subjected to
// the same battery: all truncations must be rejected (every format
// either demands exhaustion or an exact payload size), every single-bit
// flip must decode without crashing (acceptance is allowed only for
// don't-care bits), and the universal must-reject cases (empty input,
// smashed magic, trailing garbage) hold. Labeled `fuzz` so it runs under
// sanitizers via `ctest -L fuzz`, where "without leaking" is enforced.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/approx/eps_approximation.h"
#include "mergeable/approx/eps_kernel.h"
#include "mergeable/frequency/misra_gries.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/quantiles/gk.h"
#include "mergeable/quantiles/mergeable_quantiles.h"
#include "mergeable/quantiles/qdigest.h"
#include "mergeable/quantiles/reservoir.h"
#include "mergeable/sketch/ams.h"
#include "mergeable/sketch/bloom.h"
#include "mergeable/sketch/count_min.h"
#include "mergeable/sketch/count_sketch.h"
#include "mergeable/sketch/dyadic_count_min.h"
#include "mergeable/sketch/kmv.h"
#include "mergeable/stream/generators.h"
#include "mergeable/util/bytes.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

struct Format {
  std::string name;
  std::vector<uint8_t> bytes;
  // Returns whether DecodeFrom accepted (used only for no-crash sweeps
  // and must-reject assertions).
  std::function<bool(const std::vector<uint8_t>&)> decodes;
  // Count-Min deliberately tolerates trailing bytes (it is embedded in
  // composite formats); every other format must reject them.
  bool rejects_trailing = true;
};

template <typename T>
Format MakeFormat(const std::string& name, const T& summary,
                  bool rejects_trailing = true) {
  Format format;
  format.name = name;
  ByteWriter writer;
  summary.EncodeTo(writer);
  format.bytes = writer.TakeBytes();
  format.decodes = [](const std::vector<uint8_t>& bytes) {
    ByteReader reader(bytes);
    return T::DecodeFrom(reader).has_value();
  };
  format.rejects_trailing = rejects_trailing;
  return format;
}

std::vector<uint64_t> TableStream(uint64_t seed) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 3000;
  spec.universe = 512;
  return GenerateStream(spec, seed);
}

std::vector<Format> AllFormats() {
  std::vector<Format> formats;

  MisraGries mg(24);
  for (uint64_t item : TableStream(1)) mg.Update(item);
  formats.push_back(MakeFormat("MisraGries", mg));

  SpaceSaving ss(24);
  for (uint64_t item : TableStream(2)) ss.Update(item);
  SpaceSaving ss_other(24);
  for (uint64_t item : TableStream(3)) ss_other.Update(item);
  ss.MergeCafaro(ss_other);
  formats.push_back(MakeFormat("SpaceSaving", ss));

  GkSummary gk(0.05);
  Rng gk_rng(4);
  for (int i = 0; i < 2000; ++i) gk.Update(gk_rng.UniformDouble());
  formats.push_back(MakeFormat("GkSummary", gk));

  MergeableQuantiles mq(32, 5);
  Rng mq_rng(6);
  for (int i = 0; i < 4000; ++i) mq.Update(mq_rng.UniformDouble());
  formats.push_back(MakeFormat("MergeableQuantiles", mq));

  QDigest qd(10, 32);
  Rng qd_rng(7);
  for (int i = 0; i < 3000; ++i) qd.Update(qd_rng.UniformInt(1u << 10));
  formats.push_back(MakeFormat("QDigest", qd));

  ReservoirSample reservoir(32, 8);
  for (int i = 0; i < 2000; ++i) reservoir.Update(i * 0.5);
  formats.push_back(MakeFormat("Reservoir", reservoir));

  CountMinSketch cm(4, 64, 9);
  for (uint64_t item : TableStream(10)) cm.Update(item);
  formats.push_back(MakeFormat("CountMin", cm, /*rejects_trailing=*/false));

  CountSketch cs(4, 64, 11);
  for (uint64_t item : TableStream(12)) cs.Update(item);
  formats.push_back(MakeFormat("CountSketch", cs));

  AmsSketch ams(5, 32, 13);
  for (uint64_t item : TableStream(14)) ams.Update(item);
  formats.push_back(MakeFormat("Ams", ams));

  BloomFilter bloom(512, 3, 15);
  for (uint64_t item = 0; item < 300; ++item) bloom.Add(item);
  formats.push_back(MakeFormat("Bloom", bloom));

  KmvSketch kmv(64, 16);
  for (uint64_t item = 0; item < 4000; ++item) kmv.Add(item);
  formats.push_back(MakeFormat("Kmv", kmv));

  DyadicCountMin dyadic(10, 3, 32, 17);
  Rng dy_rng(18);
  for (int i = 0; i < 2000; ++i) dyadic.Update(dy_rng.UniformInt(1u << 10));
  formats.push_back(MakeFormat("DyadicCountMin", dyadic));

  EpsApproximation approx(32, 19, HalvingPolicy::kMorton);
  Rng ap_rng(20);
  for (int i = 0; i < 3000; ++i) {
    approx.Update(Point2{ap_rng.UniformDouble(), ap_rng.UniformDouble()});
  }
  formats.push_back(MakeFormat("EpsApproximation", approx));

  EpsKernel kernel(16);
  Rng k_rng(21);
  for (int i = 0; i < 1000; ++i) {
    kernel.Update(Point2{k_rng.UniformDouble(), k_rng.UniformDouble()});
  }
  formats.push_back(MakeFormat("EpsKernel", kernel));

  return formats;
}

TEST(CorruptInputTest, PristineBytesDecode) {
  for (const Format& format : AllFormats()) {
    EXPECT_TRUE(format.decodes(format.bytes)) << format.name;
  }
}

TEST(CorruptInputTest, EveryTruncationIsRejected) {
  for (const Format& format : AllFormats()) {
    for (size_t cut = 0; cut < format.bytes.size(); ++cut) {
      const std::vector<uint8_t> truncated(
          format.bytes.begin(),
          format.bytes.begin() + static_cast<long>(cut));
      EXPECT_FALSE(format.decodes(truncated))
          << format.name << " accepted truncation at " << cut;
    }
  }
}

TEST(CorruptInputTest, EveryBitFlipDecodesWithoutCrashing) {
  // Acceptance is allowed (don't-care bits exist); UB, aborts and leaks
  // are not — this sweep runs under ASan/UBSan in the fuzz suite.
  for (const Format& format : AllFormats()) {
    for (size_t bit = 0; bit < format.bytes.size() * 8; ++bit) {
      std::vector<uint8_t> flipped = format.bytes;
      flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      (void)format.decodes(flipped);
    }
  }
}

TEST(CorruptInputTest, EmptyInputIsRejected) {
  for (const Format& format : AllFormats()) {
    EXPECT_FALSE(format.decodes({})) << format.name;
  }
}

TEST(CorruptInputTest, SmashedMagicIsRejected) {
  for (const Format& format : AllFormats()) {
    std::vector<uint8_t> wrong_magic = format.bytes;
    wrong_magic[0] ^= 0xff;
    EXPECT_FALSE(format.decodes(wrong_magic)) << format.name;
  }
}

TEST(CorruptInputTest, TrailingGarbageIsRejected) {
  for (const Format& format : AllFormats()) {
    if (!format.rejects_trailing) continue;
    std::vector<uint8_t> trailing = format.bytes;
    trailing.push_back(0);
    EXPECT_FALSE(format.decodes(trailing)) << format.name;
  }
}

TEST(CorruptInputTest, HugeLengthFieldsDoNotAllocate) {
  // Saturate every 32-bit aligned field with 0xffffffff, one at a time.
  // Decoders must reject (or cleanly accept) without attempting the
  // multi-gigabyte allocations the smashed counts used to imply.
  for (const Format& format : AllFormats()) {
    for (size_t at = 0; at + 4 <= format.bytes.size(); at += 4) {
      std::vector<uint8_t> smashed = format.bytes;
      smashed[at] = 0xff;
      smashed[at + 1] = 0xff;
      smashed[at + 2] = 0xff;
      smashed[at + 3] = 0xff;
      (void)format.decodes(smashed);
    }
  }
}

}  // namespace
}  // namespace mergeable
