// Registry-driven corrupt-input rejection across every summary wire
// format.
//
// The summary codec registry (aggregate/summary_registry.h) supplies
// the probe, the corpus and the capability flags for all 14 formats;
// every format is subjected to the same battery: all truncations must
// be rejected (every format either demands exhaustion or an exact
// payload size), every single-bit flip must decode without crashing
// (acceptance is allowed only for don't-care bits), and the universal
// must-reject cases (empty input, smashed magic, trailing garbage)
// hold. Labeled `fuzz` so it runs under sanitizers via `ctest -L fuzz`,
// where "without leaking" is enforced.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/aggregate/summary_registry.h"
#include "mergeable/aggregate/wire.h"

namespace mergeable {
namespace {

constexpr uint64_t kCorpusSeed = 1;

// The heaviest corpus entry — the filled/merged instance every factory
// places last — used for the byte-level sweeps, matching the old
// hand-rolled table that corrupted one well-populated encoding per
// format.
std::vector<uint8_t> FilledEncoding(const SummaryCodecInfo& info) {
  const auto corpus = info.corpus(kCorpusSeed);
  return corpus.back();
}

TEST(CorruptInputTest, PristineBytesDecode) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    for (const std::vector<uint8_t>& payload : info.corpus(kCorpusSeed)) {
      EXPECT_TRUE(info.probe(payload)) << info.name;
    }
  }
}

TEST(CorruptInputTest, EveryTruncationIsRejected) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    const std::vector<uint8_t> bytes = FilledEncoding(info);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::vector<uint8_t> truncated(
          bytes.begin(), bytes.begin() + static_cast<long>(cut));
      EXPECT_FALSE(info.probe(truncated))
          << info.name << " accepted truncation at " << cut;
    }
  }
}

TEST(CorruptInputTest, EveryBitFlipDecodesWithoutCrashing) {
  // Acceptance is allowed (don't-care bits exist); UB, aborts and leaks
  // are not — this sweep runs under ASan/UBSan in the fuzz suite.
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    const std::vector<uint8_t> bytes = FilledEncoding(info);
    for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
      std::vector<uint8_t> flipped = bytes;
      flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      (void)info.probe(flipped);
    }
  }
}

TEST(CorruptInputTest, EmptyInputIsRejected) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    EXPECT_FALSE(info.probe({})) << info.name;
  }
}

TEST(CorruptInputTest, SmashedMagicIsRejected) {
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    std::vector<uint8_t> wrong_magic = FilledEncoding(info);
    wrong_magic[0] ^= 0xff;
    EXPECT_FALSE(info.probe(wrong_magic)) << info.name;
  }
}

TEST(CorruptInputTest, TrailingGarbageIsRejected) {
  // Count-Min deliberately tolerates trailing bytes (it is embedded in
  // composite formats); the registry flag excludes it from this case.
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    if (!info.rejects_trailing) continue;
    std::vector<uint8_t> trailing = FilledEncoding(info);
    trailing.push_back(0);
    EXPECT_FALSE(info.probe(trailing)) << info.name;
  }
}

TEST(CorruptInputTest, HugeLengthFieldsDoNotAllocate) {
  // Saturate every 32-bit aligned field with 0xffffffff, one at a time.
  // Decoders must reject (or cleanly accept) without attempting the
  // multi-gigabyte allocations the smashed counts used to imply.
  for (const SummaryCodecInfo& info : SummaryRegistry()) {
    const std::vector<uint8_t> bytes = FilledEncoding(info);
    for (size_t at = 0; at + 4 <= bytes.size(); at += 4) {
      std::vector<uint8_t> smashed = bytes;
      smashed[at] = 0xff;
      smashed[at + 1] = 0xff;
      smashed[at + 2] = 0xff;
      smashed[at + 3] = 0xff;
      (void)info.probe(smashed);
    }
  }
}

// ---- Frame codecs (wire.h FrameRegistry) ----
//
// The wire frames the socket server routes get the identical battery,
// driven by the frame registry: report, tagged payload, control, query
// and answer framings are all parsers of untrusted network bytes.

std::vector<uint8_t> FilledFrame(const FrameCodecInfo& info) {
  const auto corpus = info.corpus(kCorpusSeed);
  return corpus.back();
}

TEST(CorruptInputTest, FramePristineBytesDecode) {
  for (const FrameCodecInfo& info : FrameRegistry()) {
    for (const std::vector<uint8_t>& frame : info.corpus(kCorpusSeed)) {
      EXPECT_TRUE(info.probe(frame)) << info.name;
    }
  }
}

TEST(CorruptInputTest, FrameEveryTruncationIsRejected) {
  for (const FrameCodecInfo& info : FrameRegistry()) {
    const std::vector<uint8_t> frame = FilledFrame(info);
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      const std::vector<uint8_t> truncated(
          frame.begin(), frame.begin() + static_cast<long>(cut));
      EXPECT_FALSE(info.probe(truncated))
          << info.name << " accepted truncation at " << cut;
    }
  }
}

TEST(CorruptInputTest, FrameEveryBitFlipIsRejected) {
  // Frames carry a whole-body checksum, so unlike the raw summary
  // codecs there are no don't-care bits: every flip must be refused.
  for (const FrameCodecInfo& info : FrameRegistry()) {
    const std::vector<uint8_t> frame = FilledFrame(info);
    for (size_t bit = 0; bit < frame.size() * 8; ++bit) {
      std::vector<uint8_t> corrupted = frame;
      corrupted[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      EXPECT_FALSE(info.probe(corrupted))
          << info.name << " accepted bit flip " << bit;
    }
  }
}

TEST(CorruptInputTest, FrameEmptyInputIsRejected) {
  for (const FrameCodecInfo& info : FrameRegistry()) {
    EXPECT_FALSE(info.probe({})) << info.name;
  }
}

TEST(CorruptInputTest, FrameTrailingGarbageIsRejected) {
  for (const FrameCodecInfo& info : FrameRegistry()) {
    std::vector<uint8_t> frame = FilledFrame(info);
    frame.push_back(0x00);
    EXPECT_FALSE(info.probe(frame)) << info.name;
  }
}

TEST(CorruptInputTest, FrameHugeLengthFieldsDoNotAllocate) {
  // Saturate the body-length field of each frame: the decoder must
  // reject by bounds-checking against the actual bytes, not by
  // attempting a 4 GiB allocation (GetBytes validates length first).
  for (const FrameCodecInfo& info : FrameRegistry()) {
    std::vector<uint8_t> frame = FilledFrame(info);
    ASSERT_GE(frame.size(), 8u) << info.name;
    frame[4] = 0xff;
    frame[5] = 0xff;
    frame[6] = 0xff;
    frame[7] = 0xff;
    EXPECT_FALSE(info.probe(frame)) << info.name;
  }
}

}  // namespace
}  // namespace mergeable
