#include "mergeable/core/thread_pool.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mergeable {
namespace {

TEST(ThreadPoolTest, StartsAndStopsCleanly) {
  for (int threads = 1; threads <= 8; ++threads) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
  }
  // Destruction with queued-but-finished work and zero submitted work must
  // both join cleanly; reaching the end of this test is the assertion.
}

TEST(ThreadPoolTest, DestructionWithoutWorkDoesNotHang) {
  ThreadPool pool(4);
  // No tasks at all.
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&hits](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads "
                                     << threads;
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForRunsInlineOnSingleThreadPool) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> executors(64);
  pool.ParallelFor(64, [&](size_t i) {
    executors[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : executors) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ParallelForUsesMultipleThreadsWhenAvailable) {
  // With enough slow iterations, a 4-thread pool should execute on more
  // than one distinct thread. (Not guaranteed per-run by the API, but
  // with 64 iterations each yielding, a single thread doing all of them
  // while three workers spin idle is not a plausible schedule.)
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  pool.ParallelFor(64, [&](size_t) {
    std::this_thread::yield();
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [](size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionOnSingleThreadPoolPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(3,
                                [](size_t i) {
                                  if (i == 1) throw std::logic_error("x");
                                }),
              std::logic_error);
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(10, [](size_t) { throw std::runtime_error("first"); }),
      std::runtime_error);
  std::atomic<size_t> done{0};
  pool.ParallelFor(10, [&done](size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 10u);
}

TEST(ThreadPoolTest, TaskGroupWaitRethrowsFirstException) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group(pool);
  group.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(ThreadPoolTest, TaskGroupWaitIsIdempotent) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group(pool);
  std::atomic<int> ran{0};
  group.Submit([&ran] { ran.fetch_add(1); });
  group.Wait();
  group.Wait();  // Nothing pending: returns immediately.
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A task that itself runs a ParallelFor on the same pool: waiters help
  // drain the queue, so the inner loop's tasks can run even when every
  // worker is blocked in an outer Wait.
  ThreadPool pool(4);
  std::atomic<size_t> inner_total{0};
  pool.ParallelFor(8, [&pool, &inner_total](size_t) {
    pool.ParallelFor(8, [&inner_total](size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 64u);
}

TEST(ThreadPoolTest, NestedTaskGroupSubmitDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> leaf_runs{0};
  ThreadPool::TaskGroup outer(pool);
  for (int i = 0; i < 4; ++i) {
    outer.Submit([&pool, &leaf_runs] {
      ThreadPool::TaskGroup inner(pool);
      for (int j = 0; j < 4; ++j) {
        inner.Submit([&leaf_runs] { leaf_runs.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(leaf_runs.load(), 16);
}

TEST(ThreadPoolDeathTest, ZeroThreadsAborts) {
  EXPECT_DEATH(ThreadPool pool(0), "ThreadPool needs >= 1 thread");
}

}  // namespace
}  // namespace mergeable
