// Round-trip and corruption tests for the summary wire formats.
//
// Every decoder must (a) reproduce the summary exactly from its own
// bytes, (b) reject malformed input by returning std::nullopt — never by
// crashing — since serialized summaries arrive over the network.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/approx/eps_approximation.h"
#include "mergeable/approx/eps_kernel.h"
#include "mergeable/approx/range_counting.h"
#include "mergeable/frequency/misra_gries.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/quantiles/gk.h"
#include "mergeable/quantiles/mergeable_quantiles.h"
#include "mergeable/quantiles/qdigest.h"
#include "mergeable/quantiles/reservoir.h"
#include "mergeable/sketch/bloom.h"
#include "mergeable/sketch/ams.h"
#include "mergeable/sketch/count_min.h"
#include "mergeable/sketch/count_sketch.h"
#include "mergeable/sketch/dyadic_count_min.h"
#include "mergeable/sketch/kmv.h"
#include "mergeable/stream/generators.h"
#include "mergeable/util/bytes.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

std::vector<uint64_t> TestStream(uint64_t seed) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 20000;
  spec.universe = 2048;
  return GenerateStream(spec, seed);
}

template <typename T>
std::vector<uint8_t> Encode(const T& summary) {
  ByteWriter writer;
  summary.EncodeTo(writer);
  return writer.TakeBytes();
}

template <typename T>
std::optional<T> Decode(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  return T::DecodeFrom(reader);
}

// Exhaustive robustness sweep: truncations at every length and single
// byte flips at every position must either decode to *something* valid
// or return nullopt — never crash. (The decoded-valid case is possible
// only for flips in don't-care bits; the point is absence of UB.)
template <typename T>
void CorruptionSweep(const std::vector<uint8_t>& bytes) {
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<long>(cut));
    ByteReader reader(truncated);
    (void)T::DecodeFrom(reader);
  }
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> flipped = bytes;
    flipped[i] ^= 0x41;
    ByteReader reader(flipped);
    (void)T::DecodeFrom(reader);
  }
}

TEST(SerializationTest, MisraGriesRoundTrip) {
  MisraGries original(64);
  for (uint64_t item : TestStream(1)) original.Update(item);
  const auto bytes = Encode(original);
  const auto decoded = Decode<MisraGries>(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->n(), original.n());
  EXPECT_EQ(decoded->capacity(), original.capacity());
  EXPECT_EQ(decoded->ErrorBound(), original.ErrorBound());
  for (const Counter& c : original.Counters()) {
    EXPECT_EQ(decoded->LowerEstimate(c.item), c.count);
  }
}

TEST(SerializationTest, MisraGriesDecodedMergesCorrectly) {
  MisraGries a(32);
  MisraGries b(32);
  for (uint64_t item : TestStream(2)) a.Update(item);
  for (uint64_t item : TestStream(3)) b.Update(item);

  MisraGries direct = a;
  direct.Merge(b);

  auto decoded_a = Decode<MisraGries>(Encode(a));
  const auto decoded_b = Decode<MisraGries>(Encode(b));
  ASSERT_TRUE(decoded_a.has_value() && decoded_b.has_value());
  decoded_a->Merge(*decoded_b);
  EXPECT_EQ(decoded_a->n(), direct.n());
  for (const Counter& c : direct.Counters()) {
    EXPECT_EQ(decoded_a->LowerEstimate(c.item), c.count);
  }
}

TEST(SerializationTest, MisraGriesRejectsCorruption) {
  MisraGries original(16);
  for (uint64_t item : TestStream(4)) original.Update(item);
  const auto bytes = Encode(original);
  CorruptionSweep<MisraGries>(bytes);

  // Specific must-reject cases.
  {
    std::vector<uint8_t> wrong_magic = bytes;
    wrong_magic[0] ^= 0xff;
    EXPECT_FALSE(Decode<MisraGries>(wrong_magic).has_value());
  }
  {
    std::vector<uint8_t> trailing = bytes;
    trailing.push_back(0);
    EXPECT_FALSE(Decode<MisraGries>(trailing).has_value());
  }
  {
    EXPECT_FALSE(Decode<MisraGries>({}).has_value());
  }
}

TEST(SerializationTest, SpaceSavingRoundTrip) {
  SpaceSaving original(48);
  for (uint64_t item : TestStream(5)) original.Update(item);
  SpaceSaving other(48);
  for (uint64_t item : TestStream(6)) other.Update(item);
  original.MergeCafaro(other);  // Populate under_slack_ and overs.

  const auto decoded = Decode<SpaceSaving>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->n(), original.n());
  EXPECT_EQ(decoded->UnderSlack(), original.UnderSlack());
  EXPECT_EQ(decoded->MinCount(), original.MinCount());
  for (const Counter& c : original.Counters()) {
    EXPECT_EQ(decoded->Count(c.item), c.count);
    EXPECT_EQ(decoded->LowerEstimate(c.item), original.LowerEstimate(c.item));
    EXPECT_EQ(decoded->UpperEstimate(c.item), original.UpperEstimate(c.item));
  }
}

TEST(SerializationTest, SpaceSavingRejectsCorruption) {
  SpaceSaving original(16);
  for (uint64_t item : TestStream(7)) original.Update(item);
  CorruptionSweep<SpaceSaving>(Encode(original));
  EXPECT_FALSE(Decode<SpaceSaving>({1, 2, 3}).has_value());
}

TEST(SerializationTest, MergeableQuantilesRoundTrip) {
  MergeableQuantiles original(128, 8);
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) original.Update(rng.UniformDouble());

  const auto decoded = Decode<MergeableQuantiles>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->n(), original.n());
  EXPECT_EQ(decoded->buffer_size(), original.buffer_size());
  EXPECT_EQ(decoded->Compactions(), original.Compactions());
  EXPECT_EQ(decoded->StoredValues(), original.StoredValues());
  for (double x : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(decoded->Rank(x), original.Rank(x));
  }
}

TEST(SerializationTest, MergeableQuantilesRejectsWeightMismatch) {
  MergeableQuantiles original(64, 10);
  for (int i = 0; i < 1000; ++i) original.Update(i);
  auto bytes = Encode(original);
  // Tamper with n (bytes 12..19: after magic, buffer_size, policy).
  bytes[12] ^= 1;
  EXPECT_FALSE(Decode<MergeableQuantiles>(bytes).has_value());
  CorruptionSweep<MergeableQuantiles>(Encode(original));
}

TEST(SerializationTest, QDigestRoundTrip) {
  QDigest original = QDigest::ForEpsilon(0.02, 16);
  Rng rng(11);
  for (int i = 0; i < 40000; ++i) {
    original.Update(rng.UniformInt(uint64_t{1} << 16));
  }
  const auto decoded = Decode<QDigest>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->n(), original.n());
  EXPECT_EQ(decoded->k(), original.k());
  EXPECT_EQ(decoded->size(), original.size());
  for (uint64_t x : {100ull, 30000ull, 65535ull}) {
    EXPECT_EQ(decoded->Rank(x), original.Rank(x));
  }
}

TEST(SerializationTest, QDigestRejectsCorruption) {
  QDigest original(10, 64);
  for (int i = 0; i < 5000; ++i) original.Update(static_cast<uint64_t>(i % 1024));
  CorruptionSweep<QDigest>(Encode(original));
}

TEST(SerializationTest, CountMinRoundTripIsExact) {
  CountMinSketch original(5, 512, 13);
  for (uint64_t item : TestStream(12)) original.Update(item);
  const auto decoded = Decode<CountMinSketch>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->n(), original.n());
  for (uint64_t item : TestStream(12)) {
    ASSERT_EQ(decoded->Estimate(item), original.Estimate(item));
  }
}

TEST(SerializationTest, CountMinDecodedMergesWithOriginal) {
  CountMinSketch a(4, 256, 14);
  CountMinSketch b(4, 256, 14);
  for (uint64_t item : TestStream(13)) a.Update(item);
  for (uint64_t item : TestStream(14)) b.Update(item);
  auto decoded = Decode<CountMinSketch>(Encode(a));
  ASSERT_TRUE(decoded.has_value());
  decoded->Merge(b);  // Same seed: must be accepted.
  CountMinSketch direct = a;
  direct.Merge(b);
  for (uint64_t item : TestStream(13)) {
    ASSERT_EQ(decoded->Estimate(item), direct.Estimate(item));
  }
}

TEST(SerializationTest, CountMinRejectsCorruption) {
  CountMinSketch original(3, 64, 15);
  for (uint64_t item : TestStream(15)) original.Update(item);
  CorruptionSweep<CountMinSketch>(Encode(original));
}

TEST(SerializationTest, BloomRoundTrip) {
  BloomFilter original = BloomFilter::ForExpectedItems(5000, 0.01, 16);
  for (uint64_t item = 0; item < 5000; ++item) original.Add(item * 3);
  const auto decoded = Decode<BloomFilter>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->added(), original.added());
  for (uint64_t probe = 0; probe < 20000; ++probe) {
    ASSERT_EQ(decoded->MayContain(probe), original.MayContain(probe));
  }
}

TEST(SerializationTest, BloomRejectsCorruption) {
  BloomFilter original(256, 3, 17);
  for (uint64_t item = 0; item < 50; ++item) original.Add(item);
  CorruptionSweep<BloomFilter>(Encode(original));
}

TEST(SerializationTest, KmvRoundTrip) {
  KmvSketch original(256, 18);
  for (uint64_t item = 0; item < 30000; ++item) original.Add(item);
  const auto decoded = Decode<KmvSketch>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->EstimateDistinct(), original.EstimateDistinct());

  // Merging the decoded copy with fresh data must match the original's.
  KmvSketch more(256, 18);
  for (uint64_t item = 30000; item < 60000; ++item) more.Add(item);
  KmvSketch direct = original;
  direct.Merge(more);
  auto decoded_copy = *decoded;
  decoded_copy.Merge(more);
  EXPECT_DOUBLE_EQ(decoded_copy.EstimateDistinct(),
                   direct.EstimateDistinct());
}

TEST(SerializationTest, KmvRejectsCorruption) {
  KmvSketch original(64, 19);
  for (uint64_t item = 0; item < 1000; ++item) original.Add(item);
  CorruptionSweep<KmvSketch>(Encode(original));
}

TEST(SerializationTest, GkRoundTrip) {
  GkSummary original(0.01);
  Rng rng(20);
  for (int i = 0; i < 30000; ++i) original.Update(rng.UniformDouble());
  const auto decoded = Decode<GkSummary>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->n(), original.n());
  EXPECT_EQ(decoded->size(), original.size());
  for (double x : {0.01, 0.3, 0.77, 0.99}) {
    EXPECT_EQ(decoded->Rank(x), original.Rank(x));
  }
}

TEST(SerializationTest, GkRejectsCorruption) {
  GkSummary original(0.05);
  for (int i = 0; i < 2000; ++i) original.Update(i);
  CorruptionSweep<GkSummary>(Encode(original));
}

TEST(SerializationTest, CountSketchRoundTripIsExact) {
  CountSketch original(5, 256, 21);
  for (uint64_t item : TestStream(21)) original.Update(item);
  const auto decoded = Decode<CountSketch>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->n(), original.n());
  for (uint64_t item : TestStream(21)) {
    ASSERT_EQ(decoded->Estimate(item), original.Estimate(item));
  }
  CorruptionSweep<CountSketch>(Encode(original));
}

TEST(SerializationTest, AmsRoundTripIsExact) {
  AmsSketch original(5, 64, 22);
  for (uint64_t item : TestStream(22)) original.Update(item);
  const auto decoded = Decode<AmsSketch>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->EstimateF2(), original.EstimateF2());

  // Decoded copies must merge with originals (same seed).
  AmsSketch more(5, 64, 22);
  for (uint64_t item : TestStream(23)) more.Update(item);
  auto copy = *decoded;
  copy.Merge(more);
  AmsSketch direct = original;
  direct.Merge(more);
  EXPECT_DOUBLE_EQ(copy.EstimateF2(), direct.EstimateF2());
  CorruptionSweep<AmsSketch>(Encode(original));
}

TEST(SerializationTest, DyadicCountMinRoundTrip) {
  DyadicCountMin original(12, 4, 128, 24);
  Rng rng(25);
  for (int i = 0; i < 20000; ++i) {
    original.Update(rng.UniformInt(uint64_t{1} << 12));
  }
  const auto decoded = Decode<DyadicCountMin>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->n(), original.n());
  for (uint64_t lo = 0; lo < (1u << 12); lo += 123) {
    const uint64_t hi = std::min<uint64_t>((1u << 12) - 1, lo + 200);
    ASSERT_EQ(decoded->RangeCount(lo, hi), original.RangeCount(lo, hi));
  }
  CorruptionSweep<DyadicCountMin>(Encode(original));
}

TEST(SerializationTest, EpsApproximationRoundTrip) {
  EpsApproximation original(128, 26, HalvingPolicy::kMorton);
  Rng rng(27);
  for (int i = 0; i < 30000; ++i) {
    original.Update(Point2{rng.UniformDouble(), rng.UniformDouble()});
  }
  const auto decoded = Decode<EpsApproximation>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->n(), original.n());
  EXPECT_EQ(decoded->StoredPoints(), original.StoredPoints());
  EXPECT_EQ(decoded->policy(), original.policy());
  Rng query_rng(28);
  for (const Rect& rect : GenerateRandomRects(30, query_rng)) {
    ASSERT_EQ(decoded->RangeCount(rect), original.RangeCount(rect));
  }
  CorruptionSweep<EpsApproximation>(Encode(original));
}

TEST(SerializationTest, EpsKernelRoundTrip) {
  EpsKernel original(32);
  Rng rng(29);
  for (int i = 0; i < 5000; ++i) {
    original.Update(Point2{rng.UniformDouble(), rng.UniformDouble()});
  }
  const auto decoded = Decode<EpsKernel>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->n(), original.n());
  for (double angle = 0.0; angle < 6.2; angle += 0.3) {
    ASSERT_DOUBLE_EQ(decoded->DirectionalExtent(angle),
                     original.DirectionalExtent(angle));
  }
  CorruptionSweep<EpsKernel>(Encode(original));
}

TEST(SerializationTest, ReservoirRoundTrip) {
  ReservoirSample original(64, 30);
  for (int i = 0; i < 10000; ++i) original.Update(i * 0.5);
  const auto decoded = Decode<ReservoirSample>(Encode(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->n(), original.n());
  EXPECT_EQ(decoded->values(), original.values());
  CorruptionSweep<ReservoirSample>(Encode(original));
}

TEST(SerializationTest, ReservoirRejectsImpossibleFillLevel) {
  ReservoirSample original(64, 31);
  for (int i = 0; i < 10; ++i) original.Update(i);  // Partial: size == n.
  auto bytes = Encode(original);
  // Claim n = 1000 while carrying only 10 values: impossible state.
  bytes[8] = 0xe8;
  bytes[9] = 0x03;
  EXPECT_FALSE(Decode<ReservoirSample>(bytes).has_value());
}

TEST(SerializationTest, CrossTypeBytesAreRejected) {
  MisraGries mg(8);
  mg.Update(1);
  SpaceSaving ss(8);
  ss.Update(1);
  EXPECT_FALSE(Decode<SpaceSaving>(Encode(mg)).has_value());
  EXPECT_FALSE(Decode<MisraGries>(Encode(ss)).has_value());
}

TEST(ByteIoTest, WriterReaderPrimitives) {
  ByteWriter writer;
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefULL);
  writer.PutI64(-42);
  writer.PutDouble(3.25);
  ByteReader reader(writer.bytes());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0.0;
  EXPECT_TRUE(reader.GetU32(&u32));
  EXPECT_TRUE(reader.GetU64(&u64));
  EXPECT_TRUE(reader.GetI64(&i64));
  EXPECT_TRUE(reader.GetDouble(&d));
  EXPECT_EQ(u32, 0xdeadbeef);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(reader.Exhausted());
  EXPECT_FALSE(reader.GetU32(&u32));  // Past the end.
}

}  // namespace
}  // namespace mergeable
