// Determinism and zero-copy tests for the parallel merge engine.
//
// The load-bearing claim (merge_driver.h): ParallelMergeAll is
// byte-identical — via EncodeTo — to the sequential balanced-tree
// MergeAll for every summary type and every thread count, because the
// tree topology is fixed and all randomness is per-node. These tests
// assert exactly that over thread counts {1, 2, 8} and shard counts
// {1, 3, 64}, for the randomized summaries (MergeableQuantiles) as well
// as the deterministic ones.

#include "mergeable/core/merge_driver.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/core/thread_pool.h"
#include "mergeable/frequency/misra_gries.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/quantiles/mergeable_quantiles.h"
#include "mergeable/quantiles/qdigest.h"
#include "mergeable/sketch/count_min.h"
#include "mergeable/stream/generators.h"
#include "mergeable/util/bytes.h"

namespace mergeable {
namespace {

constexpr size_t kShardCounts[] = {1, 3, 64};
constexpr int kThreadCounts[] = {1, 2, 8};

template <typename S>
std::vector<uint8_t> Encoded(const S& summary) {
  ByteWriter writer;
  summary.EncodeTo(writer);
  return writer.TakeBytes();
}

std::vector<uint64_t> ShardStream(size_t shard, uint32_t n = 500) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = n;
  spec.universe = 256;
  return GenerateStream(spec, /*seed=*/shard * 7919 + 13);
}

// Builds per-shard summaries with `factory(shard)` and asserts the
// parallel balanced reduction encodes byte-identically to the
// sequential one for every (threads, shards) combination.
template <typename Factory>
void ExpectParallelMatchesSequential(Factory factory) {
  for (const size_t shards : kShardCounts) {
    auto make_parts = [&] {
      using S = decltype(factory(size_t{0}));
      std::vector<S> parts;
      parts.reserve(shards);
      for (size_t shard = 0; shard < shards; ++shard) {
        parts.push_back(factory(shard));
      }
      return parts;
    };
    const auto sequential =
        MergeAll(make_parts(), MergeTopology::kBalancedTree);
    const std::vector<uint8_t> expected = Encoded(sequential);
    for (const int threads : kThreadCounts) {
      ThreadPool pool(threads);
      const auto parallel = ParallelMergeAll(make_parts(), pool);
      EXPECT_EQ(Encoded(parallel), expected)
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(ParallelMergeTest, SpaceSavingByteIdentical) {
  ExpectParallelMatchesSequential([](size_t shard) {
    SpaceSaving summary(32);
    for (uint64_t item : ShardStream(shard)) summary.Update(item);
    return summary;
  });
}

TEST(ParallelMergeTest, MisraGriesByteIdentical) {
  ExpectParallelMatchesSequential([](size_t shard) {
    MisraGries summary(32);
    for (uint64_t item : ShardStream(shard)) summary.Update(item);
    return summary;
  });
}

TEST(ParallelMergeTest, MergeableQuantilesByteIdentical) {
  // The randomized summary: each instance carries its own RNG (seeded
  // per shard), and merges evolve it from the accumulator's state only —
  // so even the coin flips cannot depend on scheduling.
  ExpectParallelMatchesSequential([](size_t shard) {
    MergeableQuantiles summary(64, /*seed=*/shard * 31 + 7);
    for (uint64_t item : ShardStream(shard)) {
      summary.Update(static_cast<double>(item));
    }
    return summary;
  });
}

TEST(ParallelMergeTest, CountMinByteIdentical) {
  ExpectParallelMatchesSequential([](size_t shard) {
    CountMinSketch sketch(4, 128, /*seed=*/99);
    for (uint64_t item : ShardStream(shard)) sketch.Update(item);
    return sketch;
  });
}

TEST(ParallelMergeTest, QDigestByteIdentical) {
  ExpectParallelMatchesSequential([](size_t shard) {
    QDigest digest(/*log_universe=*/16, /*k=*/64);
    // Zipf item IDs are 64-bit hashes; fold them into the digest universe.
    for (uint64_t item : ShardStream(shard)) digest.Update(item & 0xffff);
    return digest;
  });
}

// ---- Zero-copy verification ----

// A summary that counts copies; the merge drivers promise to move, never
// copy. The counter is atomic because parallel merges run concurrently.
struct CopyCounting {
  uint64_t value = 0;

  static std::atomic<uint64_t>& copies() {
    static std::atomic<uint64_t> count{0};
    return count;
  }

  CopyCounting() = default;
  explicit CopyCounting(uint64_t v) : value(v) {}
  CopyCounting(const CopyCounting& other) : value(other.value) {
    copies().fetch_add(1, std::memory_order_relaxed);
  }
  CopyCounting& operator=(const CopyCounting& other) {
    value = other.value;
    copies().fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  CopyCounting(CopyCounting&&) = default;
  CopyCounting& operator=(CopyCounting&&) = default;

  void Merge(const CopyCounting& other) { value += other.value; }
};

std::vector<CopyCounting> CopyCountingParts(size_t n) {
  std::vector<CopyCounting> parts;
  parts.reserve(n);
  for (size_t i = 0; i < n; ++i) parts.emplace_back(i + 1);
  return parts;
}

class MergeAllTopologyTest : public ::testing::TestWithParam<MergeTopology> {};

TEST_P(MergeAllTopologyTest, MergeAllWithNeverCopies) {
  Rng rng(5);
  const uint64_t before = CopyCounting::copies().load();
  const CopyCounting merged =
      MergeAllWith(CopyCountingParts(37), GetParam(),
                   [](CopyCounting& into, const CopyCounting& from) {
                     into.Merge(from);
                   },
                   &rng);
  EXPECT_EQ(merged.value, 37u * 38u / 2u);
  EXPECT_EQ(CopyCounting::copies().load(), before);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, MergeAllTopologyTest,
                         ::testing::ValuesIn(kAllTopologies));

TEST(ParallelMergeTest, ParallelMergeAllNeverCopies) {
  for (const int threads : kThreadCounts) {
    ThreadPool pool(threads);
    const uint64_t before = CopyCounting::copies().load();
    const CopyCounting merged = ParallelMergeAll(CopyCountingParts(64), pool);
    EXPECT_EQ(merged.value, 64u * 65u / 2u);
    EXPECT_EQ(CopyCounting::copies().load(), before) << "threads=" << threads;
  }
}

// A move-aware merge function must receive the consumed side as an
// rvalue (InvokeMerge): summaries with heavy buffers steal them.
TEST(ParallelMergeTest, MoveAwareMergeFunctionReceivesRvalue) {
  struct MoveMerged {
    uint64_t value = 0;
    bool merged_from_rvalue = false;
  };
  std::vector<MoveMerged> parts(8);
  for (size_t i = 0; i < parts.size(); ++i) parts[i].value = i;
  const MoveMerged merged = MergeAllWith(
      std::move(parts), MergeTopology::kBalancedTree,
      [](MoveMerged& into, MoveMerged&& from) {
        into.value += from.value;
        into.merged_from_rvalue = true;
      });
  EXPECT_EQ(merged.value, 28u);
  EXPECT_TRUE(merged.merged_from_rvalue);
}

// ---- MergeNodeSeed ----

TEST(MergeNodeSeedTest, DeterministicAndPositionSensitive) {
  EXPECT_EQ(MergeNodeSeed(1, 2, 3), MergeNodeSeed(1, 2, 3));
  std::set<uint64_t> seeds;
  for (size_t level = 0; level < 8; ++level) {
    for (size_t index = 0; index < 8; ++index) {
      seeds.insert(MergeNodeSeed(42, level, index));
    }
  }
  EXPECT_EQ(seeds.size(), 64u) << "position seeds must not collide";
  EXPECT_NE(MergeNodeSeed(1, 0, 0), MergeNodeSeed(2, 0, 0));
}

TEST(ParallelMergeTest, SeededMergeFnSeesSameSeedsForEveryThreadCount) {
  // A merge function taking the node seed: the multiset of seeds it
  // observes must depend only on the reduction shape, not on threads.
  auto run = [](int threads) {
    std::vector<CopyCounting> parts = CopyCountingParts(16);
    ThreadPool pool(threads);
    std::atomic<uint64_t> seed_xor{0};
    ParallelMergeAllWith(
        std::move(parts), pool,
        [&seed_xor](CopyCounting& into, CopyCounting& from, uint64_t seed) {
          into.Merge(from);
          seed_xor.fetch_xor(seed, std::memory_order_relaxed);
        },
        /*base_seed=*/777);
    return seed_xor.load();
  };
  const uint64_t expected = run(1);
  EXPECT_NE(expected, 0u);
  EXPECT_EQ(run(2), expected);
  EXPECT_EQ(run(8), expected);
}

TEST(ParallelMergeDeathTest, EmptyPartsAborts) {
  ThreadPool pool(2);
  std::vector<CopyCounting> empty;
  EXPECT_DEATH(ParallelMergeAll(std::move(empty), pool),
               "MergeAll needs at least one summary");
}

}  // namespace
}  // namespace mergeable
