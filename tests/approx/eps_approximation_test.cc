#include "mergeable/approx/eps_approximation.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/approx/range_counting.h"
#include "mergeable/core/merge_driver.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

TEST(EpsApproximationTest, SmallSetIsExact) {
  EpsApproximation summary(128, 1);
  std::vector<Point2> points;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const Point2 p{rng.UniformDouble(), rng.UniformDouble()};
    points.push_back(p);
    summary.Update(p);
  }
  Rng query_rng(3);
  for (const Rect& rect : GenerateRandomRects(50, query_rng)) {
    ASSERT_EQ(summary.RangeCount(rect), ExactRangeCount(points, rect));
  }
}

TEST(EpsApproximationTest, WeightIsConserved) {
  EpsApproximation summary(64, 4);
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    summary.Update(Point2{rng.UniformDouble(), rng.UniformDouble()});
  }
  EXPECT_EQ(summary.n(), 50000u);
  const Rect everything{0.0, 1.0, 0.0, 1.0};
  EXPECT_EQ(summary.RangeCount(everything), 50000u);
  uint64_t weighted_total = 0;
  for (const auto& [point, weight] : summary.WeightedPoints()) {
    weighted_total += weight;
  }
  EXPECT_EQ(weighted_total, 50000u);
}

class EpsApproxPolicyTest : public ::testing::TestWithParam<HalvingPolicy> {};

TEST_P(EpsApproxPolicyTest, StreamingRangeErrorSmall) {
  Rng rng(6);
  const auto points = GeneratePoints(60000, /*clusters=*/0, rng);
  EpsApproximation summary(512, 7, GetParam());
  for (const Point2& p : points) summary.Update(p);

  Rng query_rng(8);
  const auto queries = GenerateRandomRects(100, query_rng);
  EXPECT_LT(MaxRelativeRangeError(summary, points, queries), 0.06);
}

TEST_P(EpsApproxPolicyTest, MergedRangeErrorSmall) {
  Rng rng(9);
  const auto points = GeneratePoints(60000, /*clusters=*/4, rng);

  constexpr int kShards = 16;
  std::vector<EpsApproximation> parts;
  for (int s = 0; s < kShards; ++s) {
    parts.emplace_back(512, 100 + static_cast<uint64_t>(s), GetParam());
  }
  for (size_t i = 0; i < points.size(); ++i) {
    // Contiguous split: shards see different clusters.
    parts[i * kShards / points.size()].Update(points[i]);
  }
  EpsApproximation merged =
      MergeAll(std::move(parts), MergeTopology::kBalancedTree);
  EXPECT_EQ(merged.n(), points.size());

  Rng query_rng(10);
  const auto queries = GenerateRandomRects(100, query_rng);
  EXPECT_LT(MaxRelativeRangeError(merged, points, queries), 0.07);
}

TEST_P(EpsApproxPolicyTest, SpaceStaysLogarithmic) {
  Rng rng(11);
  EpsApproximation summary(256, 12, GetParam());
  for (int i = 0; i < 100000; ++i) {
    summary.Update(Point2{rng.UniformDouble(), rng.UniformDouble()});
  }
  EXPECT_LT(summary.StoredPoints(), 256u * 12u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EpsApproxPolicyTest,
                         ::testing::Values(HalvingPolicy::kRandomPairs,
                                           HalvingPolicy::kSortedX,
                                           HalvingPolicy::kMorton),
                         [](const ::testing::TestParamInfo<HalvingPolicy>&
                                info) {
                           switch (info.param) {
                             case HalvingPolicy::kRandomPairs:
                               return "RandomPairs";
                             case HalvingPolicy::kSortedX:
                               return "SortedX";
                             case HalvingPolicy::kMorton:
                               return "Morton";
                           }
                           return "Unknown";
                         });

TEST(EpsApproximationTest, ExactRangeCountBasics) {
  const std::vector<Point2> points = {
      {0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}, {0.5, 0.1}};
  EXPECT_EQ(ExactRangeCount(points, Rect{0.0, 1.0, 0.0, 1.0}), 4u);
  EXPECT_EQ(ExactRangeCount(points, Rect{0.0, 0.5, 0.0, 0.5}), 3u);
  EXPECT_EQ(ExactRangeCount(points, Rect{0.6, 1.0, 0.6, 1.0}), 1u);
  EXPECT_EQ(ExactRangeCount(points, Rect{0.2, 0.3, 0.2, 0.3}), 0u);
}

TEST(EpsApproximationDeathTest, InvalidParameters) {
  EXPECT_DEATH(EpsApproximation(1, 1), "buffer_size");
}

TEST(EpsApproximationDeathTest, MergeRequiresCompatibleConfig) {
  EpsApproximation a(64, 1, HalvingPolicy::kMorton);
  EpsApproximation b(128, 2, HalvingPolicy::kMorton);
  EXPECT_DEATH(a.Merge(b), "buffer sizes");
  EpsApproximation c(64, 3, HalvingPolicy::kSortedX);
  EXPECT_DEATH(a.Merge(c), "policies");
}

}  // namespace
}  // namespace mergeable
