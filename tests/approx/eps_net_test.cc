#include "mergeable/approx/eps_net.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/approx/range_counting.h"
#include "mergeable/core/merge_driver.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

TEST(EpsNetTest, KeepsEverythingBelowCapacity) {
  EpsNet net(16, 1);
  for (int i = 0; i < 10; ++i) {
    net.Update(Point2{i / 10.0, i / 10.0});
  }
  EXPECT_EQ(net.n(), 10u);
  EXPECT_EQ(net.size(), 10u);
}

TEST(EpsNetTest, CapsAtSampleSize) {
  EpsNet net(32, 2);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    net.Update(Point2{rng.UniformDouble(), rng.UniformDouble()});
  }
  EXPECT_EQ(net.n(), 5000u);
  EXPECT_EQ(net.size(), 32u);
}

TEST(EpsNetTest, HitsEveryHeavyRange) {
  // The defining ε-net property: every rectangle holding >= eps * n
  // points contains a net point. Checked over many random rectangles.
  constexpr double kEpsilon = 0.05;
  Rng rng(4);
  const auto points = GeneratePoints(40000, /*clusters=*/3, rng);
  EpsNet net = EpsNet::ForEpsilon(kEpsilon, 0.01, 5);
  for (const Point2& p : points) net.Update(p);

  Rng query_rng(6);
  const auto queries = GenerateRandomRects(300, query_rng);
  int heavy = 0;
  int missed = 0;
  for (const Rect& rect : queries) {
    const uint64_t exact = ExactRangeCount(points, rect);
    if (exact < static_cast<uint64_t>(kEpsilon * 40000)) continue;
    ++heavy;
    if (!net.Hits(rect)) ++missed;
  }
  EXPECT_GT(heavy, 50);  // The workload produces plenty of heavy ranges.
  EXPECT_EQ(missed, 0);
}

TEST(EpsNetTest, HitsHeavyRangesAfterMerging) {
  constexpr double kEpsilon = 0.05;
  Rng rng(7);
  const auto points = GeneratePoints(40000, /*clusters=*/4, rng);

  constexpr int kShards = 8;
  std::vector<EpsNet> parts;
  for (int s = 0; s < kShards; ++s) {
    parts.push_back(EpsNet::ForEpsilon(kEpsilon, 0.01,
                                       100 + static_cast<uint64_t>(s)));
  }
  for (size_t i = 0; i < points.size(); ++i) {
    parts[i * kShards / points.size()].Update(points[i]);
  }
  const EpsNet merged =
      MergeAll(std::move(parts), MergeTopology::kBalancedTree);
  EXPECT_EQ(merged.n(), points.size());

  Rng query_rng(8);
  int missed = 0;
  for (const Rect& rect : GenerateRandomRects(300, query_rng)) {
    const uint64_t exact = ExactRangeCount(points, rect);
    if (exact < static_cast<uint64_t>(kEpsilon * 40000)) continue;
    if (!merged.Hits(rect)) ++missed;
  }
  EXPECT_EQ(missed, 0);
}

TEST(EpsNetTest, MergeTracksPopulation) {
  EpsNet a(8, 9);
  EpsNet b(8, 10);
  for (int i = 0; i < 100; ++i) a.Update(Point2{0.1, 0.1});
  for (int i = 0; i < 300; ++i) b.Update(Point2{0.9, 0.9});
  a.Merge(b);
  EXPECT_EQ(a.n(), 400u);
  EXPECT_EQ(a.size(), 8u);
  // Sample composition should lean toward the larger population.
  EXPECT_GE(a.EstimateCount(Rect{0.5, 1.0, 0.5, 1.0}), 150u);
}

TEST(EpsNetTest, EmptyNetHitsNothing) {
  EpsNet net(8, 11);
  EXPECT_FALSE(net.Hits(Rect{0.0, 1.0, 0.0, 1.0}));
  EXPECT_EQ(net.EstimateCount(Rect{0.0, 1.0, 0.0, 1.0}), 0u);
}

TEST(EpsNetTest, ForEpsilonSizing) {
  // 8/eps * ln(2/delta): smaller eps or delta = bigger net.
  EXPECT_LT(EpsNet::ForEpsilon(0.1, 0.1, 1).size() + 0u,
            EpsNet::ForEpsilon(0.01, 0.1, 1).size() + 160u);
  EXPECT_GT(EpsNet::ForEpsilon(0.01, 0.01, 1).points().capacity(), 0u);
}

TEST(EpsNetDeathTest, InvalidParameters) {
  EXPECT_DEATH(EpsNet(0, 1), "sample_size");
  EXPECT_DEATH(EpsNet::ForEpsilon(0.0, 0.1, 1), "epsilon");
  EXPECT_DEATH(EpsNet::ForEpsilon(0.1, 1.5, 1), "delta");
}

TEST(EpsNetDeathTest, MergeRequiresEqualSampleSize) {
  EpsNet a(4, 1);
  EpsNet b(8, 2);
  EXPECT_DEATH(a.Merge(b), "different sample sizes");
}

}  // namespace
}  // namespace mergeable
