#include "mergeable/approx/eps_kernel.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/core/merge_driver.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

double ExactExtent(const std::vector<Point2>& points, double angle) {
  const double ux = std::cos(angle);
  const double uy = std::sin(angle);
  double max_dot = -1e300;
  double min_dot = 1e300;
  for (const Point2& p : points) {
    const double dot = p.x * ux + p.y * uy;
    max_dot = std::max(max_dot, dot);
    min_dot = std::min(min_dot, dot);
  }
  return max_dot - min_dot;
}

std::vector<Point2> DiskPoints(int count, uint64_t seed) {
  // A fat point set: uniform over the unit disk.
  Rng rng(seed);
  std::vector<Point2> points;
  points.reserve(static_cast<size_t>(count));
  while (points.size() < static_cast<size_t>(count)) {
    const double x = 2.0 * rng.UniformDouble() - 1.0;
    const double y = 2.0 * rng.UniformDouble() - 1.0;
    if (x * x + y * y <= 1.0) points.push_back(Point2{x, y});
  }
  return points;
}

TEST(EpsKernelTest, NeverOverestimatesWidth) {
  const auto points = DiskPoints(5000, 1);
  EpsKernel kernel(32);
  for (const Point2& p : points) kernel.Update(p);
  for (double angle = 0.0; angle < 6.28; angle += 0.1) {
    ASSERT_LE(kernel.DirectionalExtent(angle),
              ExactExtent(points, angle) + 1e-12);
  }
}

TEST(EpsKernelTest, FatSetWidthWithinEpsilon) {
  constexpr double kEpsilon = 0.05;
  const auto points = DiskPoints(20000, 2);
  EpsKernel kernel = EpsKernel::ForEpsilon(kEpsilon);
  for (const Point2& p : points) kernel.Update(p);
  for (double angle = 0.0; angle < 6.28; angle += 0.05) {
    const double exact = ExactExtent(points, angle);
    const double approx = kernel.DirectionalExtent(angle);
    ASSERT_GE(approx, (1.0 - kEpsilon) * exact) << "angle " << angle;
  }
}

TEST(EpsKernelTest, SizeIsDirectionBound) {
  const auto points = DiskPoints(50000, 3);
  EpsKernel kernel(64);
  for (const Point2& p : points) kernel.Update(p);
  EXPECT_LE(kernel.CorePoints().size(), 64u);
  EXPECT_EQ(kernel.n(), 50000u);
}

TEST(EpsKernelTest, MergeIsExactlySinglePass) {
  // Per-direction maxima are losslessly mergeable: merged kernel must
  // match the single-pass kernel exactly, for any split and tree.
  const auto points = DiskPoints(10000, 4);

  EpsKernel single(48);
  for (const Point2& p : points) single.Update(p);

  for (MergeTopology topology : kAllTopologies) {
    constexpr int kShards = 7;
    std::vector<EpsKernel> parts(kShards, EpsKernel(48));
    for (size_t i = 0; i < points.size(); ++i) {
      parts[i % kShards].Update(points[i]);
    }
    Rng rng(5);
    const EpsKernel merged = MergeAll(std::move(parts), topology, &rng);
    ASSERT_EQ(merged.n(), single.n());
    for (double angle = 0.0; angle < 6.28; angle += 0.2) {
      ASSERT_DOUBLE_EQ(merged.DirectionalExtent(angle),
                       single.DirectionalExtent(angle))
          << ToString(topology) << " angle " << angle;
    }
  }
}

TEST(EpsKernelTest, SinglePointHasZeroExtent) {
  EpsKernel kernel(16);
  kernel.Update(Point2{0.3, 0.7});
  for (double angle : {0.0, 1.0, 2.5}) {
    EXPECT_DOUBLE_EQ(kernel.DirectionalExtent(angle), 0.0);
  }
  EXPECT_EQ(kernel.CorePoints().size(), 1u);
}

TEST(EpsKernelTest, AxisAlignedSegment) {
  EpsKernel kernel(64);
  for (int i = 0; i <= 100; ++i) {
    kernel.Update(Point2{i / 100.0, 0.0});
  }
  EXPECT_NEAR(kernel.DirectionalExtent(0.0), 1.0, 1e-9);
  // Width perpendicular to the segment is 0.
  EXPECT_NEAR(kernel.DirectionalExtent(std::acos(-1.0) / 2), 0.0, 1e-9);
}

TEST(EpsKernelTest, ForEpsilonDirectionsGrowAsEpsilonShrinks) {
  EXPECT_LT(EpsKernel::ForEpsilon(0.1).directions(),
            EpsKernel::ForEpsilon(0.01).directions());
}

TEST(EpsKernelDeathTest, InvalidParameters) {
  EXPECT_DEATH(EpsKernel(3), "directions");
  EXPECT_DEATH(EpsKernel::ForEpsilon(0.0), "epsilon");
  EXPECT_DEATH(EpsKernel::ForEpsilon(1.0), "epsilon");
}

TEST(EpsKernelDeathTest, MergeRequiresSameDirections) {
  EpsKernel a(8);
  EpsKernel b(16);
  EXPECT_DEATH(a.Merge(b), "direction counts");
}

TEST(EpsKernelDeathTest, ExtentOfEmptyAborts) {
  EpsKernel kernel(8);
  EXPECT_DEATH(kernel.DirectionalExtent(0.0), "empty");
}

}  // namespace
}  // namespace mergeable
