#include "mergeable/approx/halving.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/approx/point.h"
#include "mergeable/util/random.h"

namespace mergeable {
namespace {

std::vector<Point2> RandomPoints(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> points;
  points.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    points.push_back(Point2{rng.UniformDouble(), rng.UniformDouble()});
  }
  return points;
}

TEST(MortonCodeTest, OrderedAlongDiagonal) {
  EXPECT_LT(MortonCode(Point2{0.0, 0.0}), MortonCode(Point2{1.0, 1.0}));
  EXPECT_EQ(MortonCode(Point2{0.0, 0.0}), 0u);
}

TEST(MortonCodeTest, ClampsOutOfBox) {
  EXPECT_EQ(MortonCode(Point2{-5.0, -5.0}), MortonCode(Point2{0.0, 0.0}));
  EXPECT_EQ(MortonCode(Point2{5.0, 5.0}), MortonCode(Point2{1.0, 1.0}));
}

TEST(MortonCodeTest, InterleavesAxes) {
  // A step in x changes bit 0 region; a step in y changes bit 1 region.
  const uint64_t origin = MortonCode(Point2{0.0, 0.0});
  const uint64_t dx = MortonCode(Point2{1.0 / 65535.0, 0.0});
  const uint64_t dy = MortonCode(Point2{0.0, 1.0 / 65535.0});
  EXPECT_EQ(dx - origin, 1u);
  EXPECT_EQ(dy - origin, 2u);
}

class HalvingPolicyTest : public ::testing::TestWithParam<HalvingPolicy> {};

TEST_P(HalvingPolicyTest, EvenBufferHalvesExactly) {
  auto points = RandomPoints(128, 1);
  Rng rng(2);
  HalveBuffer(points, GetParam(), rng, nullptr);
  EXPECT_EQ(points.size(), 64u);
}

TEST_P(HalvingPolicyTest, OddBufferLeavesOneLeftover) {
  auto points = RandomPoints(129, 3);
  Rng rng(4);
  std::vector<Point2> leftover;
  HalveBuffer(points, GetParam(), rng, &leftover);
  EXPECT_EQ(points.size(), 64u);
  EXPECT_EQ(leftover.size(), 1u);
}

TEST_P(HalvingPolicyTest, SurvivorsComeFromInput) {
  const auto original = RandomPoints(64, 5);
  auto points = original;
  Rng rng(6);
  HalveBuffer(points, GetParam(), rng, nullptr);
  for (const Point2& p : points) {
    EXPECT_NE(std::find(original.begin(), original.end(), p),
              original.end());
  }
}

TEST_P(HalvingPolicyTest, TinyBuffers) {
  Rng rng(7);
  std::vector<Point2> empty;
  HalveBuffer(empty, GetParam(), rng, nullptr);
  EXPECT_TRUE(empty.empty());

  std::vector<Point2> one = {Point2{0.5, 0.5}};
  std::vector<Point2> leftover;
  HalveBuffer(one, GetParam(), rng, &leftover);
  EXPECT_TRUE(one.empty());
  EXPECT_EQ(leftover.size(), 1u);

  std::vector<Point2> two = {Point2{0.1, 0.1}, Point2{0.9, 0.9}};
  HalveBuffer(two, GetParam(), rng, nullptr);
  EXPECT_EQ(two.size(), 1u);
}

TEST_P(HalvingPolicyTest, ToStringIsNonEmpty) {
  EXPECT_FALSE(ToString(GetParam()).empty());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, HalvingPolicyTest,
                         ::testing::Values(HalvingPolicy::kRandomPairs,
                                           HalvingPolicy::kSortedX,
                                           HalvingPolicy::kMorton),
                         [](const ::testing::TestParamInfo<HalvingPolicy>&
                                info) {
                           switch (info.param) {
                             case HalvingPolicy::kRandomPairs:
                               return "RandomPairs";
                             case HalvingPolicy::kSortedX:
                               return "SortedX";
                             case HalvingPolicy::kMorton:
                               return "Morton";
                           }
                           return "Unknown";
                         });

TEST(HalvingTest, SortedXHasUnitPrefixDiscrepancy) {
  // For 1-D prefix ranges (x <= t), pairing x-neighbours means at most
  // one pair straddles any threshold: |2 * survivors_below - below| <= 1.
  auto points = RandomPoints(256, 8);
  auto original = points;
  Rng rng(9);
  HalveBuffer(points, HalvingPolicy::kSortedX, rng, nullptr);
  for (double t : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const auto below = [t](const std::vector<Point2>& ps) {
      return std::count_if(ps.begin(), ps.end(),
                           [t](const Point2& p) { return p.x <= t; });
    };
    const auto full = static_cast<double>(below(original));
    const auto half = static_cast<double>(below(points));
    EXPECT_LE(std::abs(2.0 * half - full), 1.0) << "threshold " << t;
  }
}

}  // namespace
}  // namespace mergeable
