#include "mergeable/sketch/ams.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/stream/generators.h"
#include "mergeable/stream/partition.h"

namespace mergeable {
namespace {

std::vector<uint64_t> TestStream(uint64_t seed) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 30000;
  spec.universe = 2048;
  return GenerateStream(spec, seed);
}

double ExactF2(const std::vector<uint64_t>& stream) {
  std::map<uint64_t, uint64_t> counts;
  for (uint64_t item : stream) ++counts[item];
  double f2 = 0.0;
  for (const auto& [item, count] : counts) {
    f2 += static_cast<double>(count) * static_cast<double>(count);
  }
  return f2;
}

TEST(AmsTest, SingleItemStream) {
  AmsSketch sketch(5, 16, 1);
  for (int i = 0; i < 100; ++i) sketch.Update(7);
  // F2 of 100 copies of one item is 100^2; each cell holds +-100 so the
  // estimate is exact.
  EXPECT_DOUBLE_EQ(sketch.EstimateF2(), 10000.0);
}

TEST(AmsTest, RelativeErrorSmallWithEnoughCells) {
  const auto stream = TestStream(71);
  const double truth = ExactF2(stream);
  AmsSketch sketch(5, 256, 2);
  for (uint64_t item : stream) sketch.Update(item);
  EXPECT_NEAR(sketch.EstimateF2() / truth, 1.0, 0.25);
}

TEST(AmsTest, MedianOfMeansIsStableAcrossSeeds) {
  const auto stream = TestStream(72);
  const double truth = ExactF2(stream);
  int good = 0;
  for (int seed = 0; seed < 10; ++seed) {
    AmsSketch sketch(5, 128, static_cast<uint64_t>(seed) + 50);
    for (uint64_t item : stream) sketch.Update(item);
    if (std::abs(sketch.EstimateF2() / truth - 1.0) < 0.4) ++good;
  }
  EXPECT_GE(good, 8);
}

TEST(AmsTest, MergeEqualsSinglePassExactly) {
  const auto stream = TestStream(73);
  const auto shards = PartitionStream(stream, 6, PartitionPolicy::kRandom, 3);

  AmsSketch single(5, 64, 9);
  for (uint64_t item : stream) single.Update(item);

  AmsSketch merged(5, 64, 9);
  bool first = true;
  for (const auto& shard : shards) {
    AmsSketch part(5, 64, 9);
    for (uint64_t item : shard) part.Update(item);
    if (first) {
      merged = part;
      first = false;
    } else {
      merged.Merge(part);
    }
  }
  EXPECT_DOUBLE_EQ(merged.EstimateF2(), single.EstimateF2());
}

TEST(AmsTest, NegativeWeightsCancel) {
  AmsSketch sketch(3, 16, 4);
  sketch.Update(11, 5);
  sketch.Update(11, -5);
  EXPECT_DOUBLE_EQ(sketch.EstimateF2(), 0.0);
}

TEST(AmsDeathTest, InvalidParameters) {
  EXPECT_DEATH(AmsSketch(0, 8, 1), "rows");
  EXPECT_DEATH(AmsSketch(3, 0, 1), "cols");
}

TEST(AmsDeathTest, MergeRequiresIdenticalConfig) {
  AmsSketch a(3, 16, 1);
  AmsSketch b(3, 16, 2);
  EXPECT_DEATH(a.Merge(b), "identical shape and seed");
}

}  // namespace
}  // namespace mergeable
