#include "mergeable/sketch/kmv.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

namespace mergeable {
namespace {

TEST(KmvTest, ExactBelowK) {
  KmvSketch sketch(64, 1);
  for (uint64_t item = 0; item < 20; ++item) sketch.Add(item);
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinct(), 20.0);
}

TEST(KmvTest, DuplicatesDoNotInflate) {
  KmvSketch sketch(64, 2);
  for (int round = 0; round < 10; ++round) {
    for (uint64_t item = 0; item < 30; ++item) sketch.Add(item);
  }
  EXPECT_DOUBLE_EQ(sketch.EstimateDistinct(), 30.0);
}

TEST(KmvTest, RelativeErrorScalesWithK) {
  constexpr int kDistinct = 100000;
  KmvSketch sketch(1024, 3);
  for (uint64_t item = 0; item < kDistinct; ++item) sketch.Add(item);
  const double estimate = sketch.EstimateDistinct();
  // Relative error ~ 1/sqrt(k) ~ 3%; allow 5 sigma.
  EXPECT_NEAR(estimate / kDistinct, 1.0, 0.16);
}

TEST(KmvTest, MergeEqualsSinglePassExactly) {
  // The k smallest hashes of a union are a deterministic function of the
  // union, so the merged sketch matches the single-pass sketch exactly.
  KmvSketch single(256, 4);
  KmvSketch left(256, 4);
  KmvSketch right(256, 4);
  for (uint64_t item = 0; item < 50000; ++item) {
    single.Add(item);
    (item % 3 == 0 ? left : right).Add(item);
  }
  left.Merge(right);
  EXPECT_DOUBLE_EQ(left.EstimateDistinct(), single.EstimateDistinct());
}

TEST(KmvTest, MergeWithOverlapCountsDistinctOnce) {
  KmvSketch a(256, 5);
  KmvSketch b(256, 5);
  for (uint64_t item = 0; item < 30000; ++item) a.Add(item);
  for (uint64_t item = 15000; item < 45000; ++item) b.Add(item);
  a.Merge(b);
  EXPECT_NEAR(a.EstimateDistinct() / 45000.0, 1.0, 0.3);
}

TEST(KmvTest, SizeNeverExceedsK) {
  KmvSketch sketch(32, 6);
  for (uint64_t item = 0; item < 10000; ++item) sketch.Add(item);
  EXPECT_EQ(sketch.size(), 32u);
}

TEST(KmvDeathTest, InvalidParameters) {
  EXPECT_DEATH(KmvSketch(1, 1), "k >= 2");
}

TEST(KmvDeathTest, MergeRequiresIdenticalConfig) {
  KmvSketch a(32, 1);
  KmvSketch b(32, 2);
  EXPECT_DEATH(a.Merge(b), "identical k and seed");
  KmvSketch c(64, 1);
  EXPECT_DEATH(a.Merge(c), "identical k and seed");
}

}  // namespace
}  // namespace mergeable
