// Parameterized sweeps over sketch shapes: the guarantees must hold for
// every (depth, width) and epsilon configuration, not just the defaults
// the focused tests use.

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/frequency/misra_gries.h"
#include "mergeable/frequency/space_saving.h"
#include "mergeable/sketch/count_min.h"
#include "mergeable/sketch/count_sketch.h"
#include "mergeable/stream/generators.h"

namespace mergeable {
namespace {

const std::vector<uint64_t>& SweepStream() {
  static const auto* stream = [] {
    StreamSpec spec;
    spec.kind = StreamKind::kZipf;
    spec.n = 30000;
    spec.universe = 4096;
    return new std::vector<uint64_t>(GenerateStream(spec, 555));
  }();
  return *stream;
}

const std::map<uint64_t, uint64_t>& SweepTruth() {
  static const auto* truth = [] {
    auto* counts = new std::map<uint64_t, uint64_t>();
    for (uint64_t item : SweepStream()) ++(*counts)[item];
    return counts;
  }();
  return *truth;
}

using Shape = std::tuple<int, int>;  // (depth, width)

class CountMinShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(CountMinShapeTest, AlwaysUpperBoundsAndBoundsError) {
  const auto [depth, width] = GetParam();
  CountMinSketch sketch(depth, width, /*seed=*/1);
  for (uint64_t item : SweepStream()) sketch.Update(item);
  // One-sided guarantee for every shape.
  for (const auto& [item, count] : SweepTruth()) {
    ASSERT_GE(sketch.Estimate(item), count);
  }
  // Expected per-row overestimate is n / width; depth takes the min.
  // Sanity: the average overestimate cannot exceed a few times n/width.
  double total_over = 0;
  for (const auto& [item, count] : SweepTruth()) {
    total_over += static_cast<double>(sketch.Estimate(item) - count);
  }
  const double mean_over = total_over / static_cast<double>(SweepTruth().size());
  EXPECT_LE(mean_over,
            3.0 * static_cast<double>(SweepStream().size()) / width + 1.0)
      << "depth=" << depth << " width=" << width;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CountMinShapeTest,
    ::testing::Values(Shape{1, 64}, Shape{1, 4096}, Shape{3, 256},
                      Shape{5, 1024}, Shape{8, 128}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      // Built with append instead of operator+ chains: GCC 12's -O3
      // inliner raises a -Wrestrict false positive on the latter.
      std::string name = "d";
      name += std::to_string(std::get<0>(info.param));
      name += 'w';
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

class CountSketchShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(CountSketchShapeTest, ErrorScalesWithWidth) {
  const auto [depth, width] = GetParam();
  CountSketch sketch(depth, width, /*seed=*/2);
  for (uint64_t item : SweepStream()) sketch.Update(item);
  double f2 = 0.0;
  for (const auto& [item, count] : SweepTruth()) {
    f2 += static_cast<double>(count) * static_cast<double>(count);
  }
  const double budget = 8.0 * std::sqrt(f2 / width);
  int violations = 0;
  for (const auto& [item, count] : SweepTruth()) {
    const double error =
        std::abs(static_cast<double>(sketch.Estimate(item)) -
                 static_cast<double>(count));
    if (error > budget) ++violations;
  }
  EXPECT_LE(violations, static_cast<int>(SweepTruth().size() / 50 + 2))
      << "depth=" << depth << " width=" << width;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CountSketchShapeTest,
    ::testing::Values(Shape{1, 512}, Shape{3, 1024}, Shape{5, 256},
                      Shape{7, 2048}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      // Built with append instead of operator+ chains: GCC 12's -O3
      // inliner raises a -Wrestrict false positive on the latter.
      std::string name = "d";
      name += std::to_string(std::get<0>(info.param));
      name += 'w';
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

class CounterEpsilonSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(CounterEpsilonSweepTest, MisraGriesMeetsEveryEpsilon) {
  const double epsilon = 1.0 / GetParam();
  MisraGries mg = MisraGries::ForEpsilon(epsilon);
  for (uint64_t item : SweepStream()) mg.Update(item);
  const auto budget = static_cast<uint64_t>(
      epsilon * static_cast<double>(SweepStream().size()));
  EXPECT_LE(mg.ErrorBound(), budget);
  for (const auto& [item, count] : SweepTruth()) {
    ASSERT_LE(mg.LowerEstimate(item), count);
    ASSERT_LE(count, mg.LowerEstimate(item) + mg.ErrorBound());
  }
}

TEST_P(CounterEpsilonSweepTest, SpaceSavingMeetsEveryEpsilon) {
  const double epsilon = 1.0 / GetParam();
  SpaceSaving ss = SpaceSaving::ForEpsilon(epsilon);
  for (uint64_t item : SweepStream()) ss.Update(item);
  const auto budget = static_cast<uint64_t>(
      epsilon * static_cast<double>(SweepStream().size()));
  EXPECT_LE(ss.MinCount(), budget);
  for (const auto& [item, count] : SweepTruth()) {
    ASSERT_LE(ss.LowerEstimate(item), count);
    ASSERT_LE(count, ss.UpperEstimate(item));
    // Monitored-or-bounded: unmonitored items sit below the minimum.
    if (ss.Count(item) == 0) {
      ASSERT_LE(count, ss.MinCount());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(InverseEpsilons, CounterEpsilonSweepTest,
                         ::testing::Values(2, 5, 10, 50, 100, 1000, 30000),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "inv" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mergeable
