#include "mergeable/sketch/bloom.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/util/bytes.h"

namespace mergeable {
namespace {

TEST(BloomTest, EmptyFilterContainsNothing) {
  BloomFilter filter(1024, 3, 1);
  for (uint64_t item = 0; item < 100; ++item) {
    EXPECT_FALSE(filter.MayContain(item));
  }
  EXPECT_DOUBLE_EQ(filter.EstimatedFpr(), 0.0);
}

TEST(BloomTest, NoFalseNegativesEver) {
  BloomFilter filter = BloomFilter::ForExpectedItems(5000, 0.01, 2);
  for (uint64_t item = 0; item < 5000; ++item) filter.Add(item * 7919);
  for (uint64_t item = 0; item < 5000; ++item) {
    ASSERT_TRUE(filter.MayContain(item * 7919)) << "item " << item;
  }
}

TEST(BloomTest, FalsePositiveRateNearTarget) {
  constexpr double kTargetFpr = 0.01;
  BloomFilter filter = BloomFilter::ForExpectedItems(10000, kTargetFpr, 3);
  for (uint64_t item = 0; item < 10000; ++item) filter.Add(item);

  int false_positives = 0;
  constexpr int kProbes = 20000;
  for (uint64_t probe = 0; probe < kProbes; ++probe) {
    if (filter.MayContain(1000000 + probe)) ++false_positives;
  }
  const double measured = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(measured, 3.0 * kTargetFpr);
  EXPECT_NEAR(filter.EstimatedFpr(), measured, 0.01);
}

TEST(BloomTest, MergeIsUnion) {
  BloomFilter a(4096, 4, 5);
  BloomFilter b(4096, 4, 5);
  for (uint64_t item = 0; item < 200; ++item) a.Add(item);
  for (uint64_t item = 200; item < 400; ++item) b.Add(item);
  a.Merge(b);
  EXPECT_EQ(a.added(), 400u);
  for (uint64_t item = 0; item < 400; ++item) {
    ASSERT_TRUE(a.MayContain(item)) << "item " << item;
  }
}

TEST(BloomTest, MergedFilterEqualsSinglePassBitwise) {
  // OR-merge is exact: membership answers must match a single-pass
  // filter for every probe.
  BloomFilter single(2048, 3, 7);
  BloomFilter left(2048, 3, 7);
  BloomFilter right(2048, 3, 7);
  for (uint64_t item = 0; item < 300; ++item) {
    single.Add(item);
    (item % 2 == 0 ? left : right).Add(item);
  }
  left.Merge(right);
  for (uint64_t probe = 0; probe < 2000; ++probe) {
    ASSERT_EQ(left.MayContain(probe), single.MayContain(probe))
        << "probe " << probe;
  }
}

TEST(BloomTest, ForExpectedItemsPicksSaneShape) {
  const BloomFilter filter = BloomFilter::ForExpectedItems(1000, 0.01, 1);
  // Theory: m ~ 9585 bits, k ~ 7 hashes.
  EXPECT_NEAR(static_cast<double>(filter.bits()), 9585.0, 50.0);
  EXPECT_EQ(filter.hashes(), 7);
}

TEST(BloomTest, AddBatchMatchesScalarExactly) {
  std::vector<uint64_t> items;
  for (uint64_t i = 0; i < 3000; ++i) items.push_back(i * 2654435761u + 17);
  BloomFilter scalar(8192, 5, /*seed=*/4);
  for (uint64_t item : items) scalar.Add(item);
  BloomFilter batched(8192, 5, /*seed=*/4);
  batched.AddBatch(items.data(), items.size());
  ByteWriter scalar_bytes;
  scalar.EncodeTo(scalar_bytes);
  ByteWriter batched_bytes;
  batched.EncodeTo(batched_bytes);
  EXPECT_EQ(batched_bytes.bytes(), scalar_bytes.bytes());
  EXPECT_EQ(batched.added(), scalar.added());
}

TEST(BloomTest, AddBatchOddSizesMatchScalar) {
  std::vector<uint64_t> items;
  for (uint64_t i = 0; i < 600; ++i) items.push_back(i * 11400714819323198485ull);
  for (size_t n : {size_t{0}, size_t{1}, size_t{255}, size_t{256},
                   size_t{257}, size_t{600}}) {
    BloomFilter scalar(1024, 3, /*seed=*/5);
    for (size_t i = 0; i < n; ++i) scalar.Add(items[i]);
    BloomFilter batched(1024, 3, /*seed=*/5);
    batched.AddBatch(items.data(), n);
    ByteWriter scalar_bytes;
    scalar.EncodeTo(scalar_bytes);
    ByteWriter batched_bytes;
    batched.EncodeTo(batched_bytes);
    ASSERT_EQ(batched_bytes.bytes(), scalar_bytes.bytes()) << "n=" << n;
  }
}

TEST(BloomDeathTest, InvalidParameters) {
  EXPECT_DEATH(BloomFilter(4, 2, 1), "8 bits");
  EXPECT_DEATH(BloomFilter(64, 0, 1), "one hash");
  EXPECT_DEATH(BloomFilter::ForExpectedItems(10, 1.5, 1), "fpr");
}

TEST(BloomDeathTest, MergeRequiresIdenticalConfig) {
  BloomFilter a(1024, 3, 1);
  BloomFilter b(1024, 3, 2);
  EXPECT_DEATH(a.Merge(b), "identical parameters");
}

}  // namespace
}  // namespace mergeable
