#include "mergeable/sketch/count_min.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/stream/generators.h"
#include "mergeable/stream/partition.h"
#include "mergeable/util/bytes.h"

namespace mergeable {
namespace {

std::map<uint64_t, uint64_t> TrueCounts(const std::vector<uint64_t>& stream) {
  std::map<uint64_t, uint64_t> counts;
  for (uint64_t item : stream) ++counts[item];
  return counts;
}

std::vector<uint64_t> TestStream(uint64_t seed) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 40000;
  spec.universe = 4096;
  return GenerateStream(spec, seed);
}

TEST(CountMinTest, NeverUnderestimates) {
  const auto stream = TestStream(51);
  CountMinSketch sketch(4, 256, /*seed=*/1);
  for (uint64_t item : stream) sketch.Update(item);
  for (const auto& [item, count] : TrueCounts(stream)) {
    ASSERT_GE(sketch.Estimate(item), count) << "item " << item;
  }
}

TEST(CountMinTest, EpsilonBoundHoldsForMostItems) {
  const auto stream = TestStream(52);
  constexpr double kEpsilon = 0.005;
  constexpr double kDelta = 0.01;
  CountMinSketch sketch =
      CountMinSketch::ForEpsilonDelta(kEpsilon, kDelta, /*seed=*/2);
  for (uint64_t item : stream) sketch.Update(item);

  const auto truth = TrueCounts(stream);
  int violations = 0;
  for (const auto& [item, count] : truth) {
    if (sketch.Estimate(item) > count + kEpsilon * stream.size()) {
      ++violations;
    }
  }
  // Expected failure rate <= delta per item.
  EXPECT_LE(violations, static_cast<int>(3 * kDelta * truth.size() + 3));
}

TEST(CountMinTest, WeightedUpdates) {
  CountMinSketch sketch(4, 64, 3);
  sketch.Update(7, 100);
  sketch.Update(9, 50);
  EXPECT_GE(sketch.Estimate(7), 100u);
  EXPECT_EQ(sketch.n(), 150u);
}

TEST(CountMinTest, MergeEqualsSinglePassExactly) {
  // A plain Count-Min sketch is a linear function of the input, so the
  // merged sketch must match the single-pass sketch counter for counter
  // (checked via estimates for every item in the stream).
  const auto stream = TestStream(53);
  const auto shards = PartitionStream(stream, 8, PartitionPolicy::kRandom, 5);

  CountMinSketch single(5, 512, /*seed=*/7);
  for (uint64_t item : stream) single.Update(item);

  CountMinSketch merged(5, 512, /*seed=*/7);
  {
    bool first = true;
    for (const auto& shard : shards) {
      CountMinSketch part(5, 512, /*seed=*/7);
      for (uint64_t item : shard) part.Update(item);
      if (first) {
        merged = part;
        first = false;
      } else {
        merged.Merge(part);
      }
    }
  }
  EXPECT_EQ(merged.n(), single.n());
  for (const auto& [item, count] : TrueCounts(stream)) {
    ASSERT_EQ(merged.Estimate(item), single.Estimate(item))
        << "item " << item;
  }
}

TEST(CountMinTest, ConservativeIsAtMostPlain) {
  const auto stream = TestStream(54);
  CountMinSketch plain(4, 128, 9, CountMinUpdate::kPlain);
  CountMinSketch conservative(4, 128, 9, CountMinUpdate::kConservative);
  for (uint64_t item : stream) {
    plain.Update(item);
    conservative.Update(item);
  }
  for (const auto& [item, count] : TrueCounts(stream)) {
    ASSERT_LE(conservative.Estimate(item), plain.Estimate(item));
    ASSERT_GE(conservative.Estimate(item), count);
  }
}

TEST(CountMinTest, MergedConservativeSketchesStayUpperBounds) {
  const auto stream = TestStream(55);
  const auto shards =
      PartitionStream(stream, 4, PartitionPolicy::kContiguous);
  CountMinSketch merged(4, 128, 11, CountMinUpdate::kConservative);
  bool first = true;
  for (const auto& shard : shards) {
    CountMinSketch part(4, 128, 11, CountMinUpdate::kConservative);
    for (uint64_t item : shard) part.Update(item);
    if (first) {
      merged = part;
      first = false;
    } else {
      merged.Merge(part);
    }
  }
  for (const auto& [item, count] : TrueCounts(stream)) {
    ASSERT_GE(merged.Estimate(item), count) << "item " << item;
  }
}

TEST(CountMinTest, ForEpsilonDeltaShape) {
  const CountMinSketch sketch = CountMinSketch::ForEpsilonDelta(0.01, 0.01, 1);
  EXPECT_GE(sketch.width(), 271);  // e / 0.01 ~ 271.8
  EXPECT_GE(sketch.depth(), 5);    // ln(100) ~ 4.6
}

TEST(CountMinDeathTest, InvalidParameters) {
  EXPECT_DEATH(CountMinSketch(0, 8, 1), "depth");
  EXPECT_DEATH(CountMinSketch(2, 0, 1), "width");
  EXPECT_DEATH(CountMinSketch::ForEpsilonDelta(0.0, 0.1, 1), "epsilon");
}

std::vector<uint8_t> Encoded(const CountMinSketch& sketch) {
  ByteWriter writer;
  sketch.EncodeTo(writer);
  return writer.TakeBytes();
}

TEST(CountMinTest, UpdateBatchMatchesScalarExactly) {
  const auto stream = TestStream(61);
  CountMinSketch scalar(4, 256, /*seed=*/5);
  for (uint64_t item : stream) scalar.Update(item);
  CountMinSketch batched(4, 256, /*seed=*/5);
  batched.UpdateBatch(stream.data(), stream.size());
  EXPECT_EQ(Encoded(batched), Encoded(scalar));
  EXPECT_EQ(batched.n(), scalar.n());
}

TEST(CountMinTest, UpdateBatchInChunksMatchesOneShot) {
  const auto stream = TestStream(62);
  CountMinSketch one_shot(4, 128, /*seed=*/6);
  one_shot.UpdateBatch(stream.data(), stream.size());
  CountMinSketch chunked(4, 128, /*seed=*/6);
  // Chunk sizes straddle the internal block size (including 0 and 1).
  size_t pos = 0;
  for (size_t chunk : {size_t{1}, size_t{0}, size_t{255}, size_t{256},
                       size_t{257}, size_t{1000}}) {
    const size_t take = std::min(chunk, stream.size() - pos);
    chunked.UpdateBatch(stream.data() + pos, take);
    pos += take;
  }
  chunked.UpdateBatch(stream.data() + pos, stream.size() - pos);
  EXPECT_EQ(Encoded(chunked), Encoded(one_shot));
}

TEST(CountMinTest, UpdateBatchConservativeMatchesScalar) {
  // Conservative updates are order-dependent, so the batch path must
  // fall back to per-item application in stream order.
  const auto stream = TestStream(63);
  CountMinSketch scalar(4, 256, /*seed=*/7, CountMinUpdate::kConservative);
  for (uint64_t item : stream) scalar.Update(item);
  CountMinSketch batched(4, 256, /*seed=*/7, CountMinUpdate::kConservative);
  batched.UpdateBatch(stream.data(), stream.size());
  EXPECT_EQ(Encoded(batched), Encoded(scalar));
}

TEST(CountMinDeathTest, MergeRequiresIdenticalConfig) {
  CountMinSketch a(4, 64, 1);
  CountMinSketch b(4, 64, 2);  // Different seed.
  EXPECT_DEATH(a.Merge(b), "identical shape and seed");
  CountMinSketch c(4, 128, 1);  // Different width.
  EXPECT_DEATH(a.Merge(c), "identical shape and seed");
}

}  // namespace
}  // namespace mergeable
