#include "mergeable/sketch/dyadic_count_min.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/util/random.h"

namespace mergeable {
namespace {

uint64_t ExactRange(const std::vector<uint64_t>& values, uint64_t lo,
                    uint64_t hi) {
  uint64_t count = 0;
  for (uint64_t v : values) {
    if (v >= lo && v <= hi) ++count;
  }
  return count;
}

TEST(DyadicCountMinTest, SmallStreamRangesAreTight) {
  DyadicCountMin sketch(8, 5, 512, 1);
  for (uint64_t v : {3u, 3u, 10u, 200u, 255u}) sketch.Update(v);
  EXPECT_EQ(sketch.n(), 5u);
  EXPECT_EQ(sketch.RangeCount(0, 255), 5u);
  EXPECT_EQ(sketch.RangeCount(3, 3), 2u);
  EXPECT_EQ(sketch.RangeCount(4, 9), 0u);
  EXPECT_EQ(sketch.RangeCount(10, 200), 2u);
}

TEST(DyadicCountMinTest, NeverUnderestimates) {
  constexpr int kLogU = 12;
  DyadicCountMin sketch(kLogU, 4, 256, 2);
  std::vector<uint64_t> values;
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{1} << kLogU);
    values.push_back(v);
    sketch.Update(v);
  }
  Rng query_rng(4);
  for (int q = 0; q < 100; ++q) {
    uint64_t lo = query_rng.UniformInt(uint64_t{1} << kLogU);
    uint64_t hi = query_rng.UniformInt(uint64_t{1} << kLogU);
    if (lo > hi) std::swap(lo, hi);
    ASSERT_GE(sketch.RangeCount(lo, hi), ExactRange(values, lo, hi));
  }
}

TEST(DyadicCountMinTest, EpsilonBoundHolds) {
  constexpr int kLogU = 12;
  constexpr double kEpsilon = 0.02;
  DyadicCountMin sketch =
      DyadicCountMin::ForEpsilonDelta(kEpsilon, 0.01, kLogU, 5);
  std::vector<uint64_t> values;
  Rng rng(6);
  for (int i = 0; i < 30000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{1} << kLogU);
    values.push_back(v);
    sketch.Update(v);
  }
  Rng query_rng(7);
  int violations = 0;
  for (int q = 0; q < 100; ++q) {
    uint64_t lo = query_rng.UniformInt(uint64_t{1} << kLogU);
    uint64_t hi = query_rng.UniformInt(uint64_t{1} << kLogU);
    if (lo > hi) std::swap(lo, hi);
    const uint64_t approx = sketch.RangeCount(lo, hi);
    const uint64_t exact = ExactRange(values, lo, hi);
    if (approx > exact + static_cast<uint64_t>(kEpsilon * 30000)) {
      ++violations;
    }
  }
  EXPECT_LE(violations, 3);
}

TEST(DyadicCountMinTest, QuantilesTrackExactRanks) {
  constexpr int kLogU = 16;
  DyadicCountMin sketch =
      DyadicCountMin::ForEpsilonDelta(0.02, 0.01, kLogU, 8);
  std::vector<uint64_t> values;
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) {
    // Bimodal distribution.
    const uint64_t v = (i % 2 == 0)
                           ? rng.UniformInt(uint64_t{5000})
                           : 40000 + rng.UniformInt(uint64_t{5000});
    values.push_back(v);
    sketch.Update(v);
  }
  for (double phi : {0.1, 0.4, 0.6, 0.9}) {
    const uint64_t answer = sketch.Quantile(phi);
    const auto rank = static_cast<double>(ExactRange(values, 0, answer));
    EXPECT_NEAR(rank, phi * 50000.0, 3.0 * 0.02 * 50000.0) << "phi " << phi;
  }
}

TEST(DyadicCountMinTest, MergeEqualsSinglePassExactly) {
  constexpr int kLogU = 10;
  DyadicCountMin single(kLogU, 4, 128, 10);
  DyadicCountMin left(kLogU, 4, 128, 10);
  DyadicCountMin right(kLogU, 4, 128, 10);
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.UniformInt(uint64_t{1} << kLogU);
    single.Update(v);
    (i % 2 == 0 ? left : right).Update(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.n(), single.n());
  for (uint64_t lo = 0; lo < (1u << kLogU); lo += 97) {
    ASSERT_EQ(left.RangeCount(lo, std::min<uint64_t>((1u << kLogU) - 1,
                                                     lo + 300)),
              single.RangeCount(lo, std::min<uint64_t>((1u << kLogU) - 1,
                                                       lo + 300)));
  }
}

TEST(DyadicCountMinTest, WeightedUpdates) {
  DyadicCountMin sketch(8, 4, 256, 12);
  sketch.Update(100, 50);
  sketch.Update(200, 25);
  EXPECT_EQ(sketch.n(), 75u);
  EXPECT_GE(sketch.RangeCount(100, 100), 50u);
  EXPECT_GE(sketch.RangeCount(0, 255), 75u);
}

TEST(DyadicCountMinTest, FullRangeIsN) {
  DyadicCountMin sketch(6, 4, 64, 13);
  for (uint64_t v = 0; v < 64; ++v) sketch.Update(v);
  // The top level holds a single counter covering everything: exact.
  EXPECT_EQ(sketch.RangeCount(0, 63), 64u);
}

TEST(DyadicCountMinDeathTest, InvalidParameters) {
  EXPECT_DEATH(DyadicCountMin(0, 4, 64, 1), "log_universe");
  EXPECT_DEATH(DyadicCountMin(33, 4, 64, 1), "log_universe");
  EXPECT_DEATH(DyadicCountMin::ForEpsilonDelta(0.0, 0.1, 8, 1), "epsilon");
}

TEST(DyadicCountMinDeathTest, ValueAndRangeValidation) {
  DyadicCountMin sketch(8, 4, 64, 1);
  EXPECT_DEATH(sketch.Update(256), "universe");
  sketch.Update(1);
  EXPECT_DEATH(sketch.RangeCount(5, 4), "invalid range");
  EXPECT_DEATH(sketch.RangeCount(0, 256), "invalid range");
}

TEST(DyadicCountMinDeathTest, MergeRequiresSameUniverse) {
  DyadicCountMin a(8, 4, 64, 1);
  DyadicCountMin b(9, 4, 64, 1);
  EXPECT_DEATH(a.Merge(b), "identical universe");
}

}  // namespace
}  // namespace mergeable
