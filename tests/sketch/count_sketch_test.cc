#include "mergeable/sketch/count_sketch.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "mergeable/stream/generators.h"
#include "mergeable/stream/partition.h"
#include "mergeable/util/bytes.h"

namespace mergeable {
namespace {

std::map<uint64_t, uint64_t> TrueCounts(const std::vector<uint64_t>& stream) {
  std::map<uint64_t, uint64_t> counts;
  for (uint64_t item : stream) ++counts[item];
  return counts;
}

std::vector<uint64_t> TestStream(uint64_t seed) {
  StreamSpec spec;
  spec.kind = StreamKind::kZipf;
  spec.n = 40000;
  spec.universe = 4096;
  return GenerateStream(spec, seed);
}

double StreamF2(const std::vector<uint64_t>& stream) {
  double f2 = 0.0;
  for (const auto& [item, count] : TrueCounts(stream)) {
    f2 += static_cast<double>(count) * static_cast<double>(count);
  }
  return f2;
}

TEST(CountSketchTest, SingleItemExact) {
  CountSketch sketch(5, 64, 1);
  sketch.Update(42, 17);
  EXPECT_EQ(sketch.Estimate(42), 17);
}

TEST(CountSketchTest, ErrorWithinSqrtF2Budget) {
  const auto stream = TestStream(61);
  CountSketch sketch(5, 1024, 2);
  for (uint64_t item : stream) sketch.Update(item);

  // Per-row stddev ~ sqrt(F2 / width); median of 5 rows concentrates.
  const double budget = 6.0 * std::sqrt(StreamF2(stream) / 1024.0);
  const auto truth = TrueCounts(stream);
  int violations = 0;
  for (const auto& [item, count] : truth) {
    const double error =
        std::abs(static_cast<double>(sketch.Estimate(item)) -
                 static_cast<double>(count));
    if (error > budget) ++violations;
  }
  EXPECT_LE(violations, static_cast<int>(truth.size() / 100 + 2));
}

TEST(CountSketchTest, EstimatesAreNearlyUnbiased) {
  // Averaged over many sketch seeds, the estimate of a fixed item should
  // approach its true count (Count-Min, by contrast, is biased upward).
  const auto stream = TestStream(62);
  const auto truth = TrueCounts(stream);
  const uint64_t target = truth.begin()->first;
  const auto target_count = static_cast<double>(truth.at(target));

  double sum = 0.0;
  constexpr int kSeeds = 40;
  for (int seed = 0; seed < kSeeds; ++seed) {
    CountSketch sketch(1, 256, static_cast<uint64_t>(seed) + 100);
    for (uint64_t item : stream) sketch.Update(item);
    sum += static_cast<double>(sketch.Estimate(target));
  }
  const double mean = sum / kSeeds;
  const double sigma = std::sqrt(StreamF2(stream) / 256.0 / kSeeds);
  EXPECT_NEAR(mean, target_count, 4.0 * sigma);
}

TEST(CountSketchTest, MergeEqualsSinglePassExactly) {
  const auto stream = TestStream(63);
  const auto shards = PartitionStream(stream, 8, PartitionPolicy::kRandom, 5);

  CountSketch single(5, 512, 7);
  for (uint64_t item : stream) single.Update(item);

  CountSketch merged(5, 512, 7);
  bool first = true;
  for (const auto& shard : shards) {
    CountSketch part(5, 512, 7);
    for (uint64_t item : shard) part.Update(item);
    if (first) {
      merged = part;
      first = false;
    } else {
      merged.Merge(part);
    }
  }
  for (const auto& [item, count] : TrueCounts(stream)) {
    ASSERT_EQ(merged.Estimate(item), single.Estimate(item))
        << "item " << item;
  }
}

TEST(CountSketchTest, NegativeWeightsCancel) {
  CountSketch sketch(5, 64, 8);
  sketch.Update(7, 10);
  sketch.Update(7, -10);
  EXPECT_EQ(sketch.Estimate(7), 0);
}

TEST(CountSketchTest, UpdateBatchMatchesScalarExactly) {
  const auto stream = TestStream(71);
  CountSketch scalar(5, 128, /*seed=*/9);
  for (uint64_t item : stream) scalar.Update(item);
  CountSketch batched(5, 128, /*seed=*/9);
  batched.UpdateBatch(stream.data(), stream.size());
  ByteWriter scalar_bytes;
  scalar.EncodeTo(scalar_bytes);
  ByteWriter batched_bytes;
  batched.EncodeTo(batched_bytes);
  EXPECT_EQ(batched_bytes.bytes(), scalar_bytes.bytes());
  EXPECT_EQ(batched.n(), scalar.n());
}

TEST(CountSketchTest, UpdateBatchOddSizesMatchScalar) {
  // Sizes around the internal block boundary, plus empty.
  for (size_t n : {size_t{0}, size_t{1}, size_t{255}, size_t{256},
                   size_t{257}, size_t{513}}) {
    const auto stream = TestStream(72);
    CountSketch scalar(3, 64, /*seed=*/10);
    for (size_t i = 0; i < n; ++i) scalar.Update(stream[i]);
    CountSketch batched(3, 64, /*seed=*/10);
    batched.UpdateBatch(stream.data(), n);
    ByteWriter scalar_bytes;
    scalar.EncodeTo(scalar_bytes);
    ByteWriter batched_bytes;
    batched.EncodeTo(batched_bytes);
    ASSERT_EQ(batched_bytes.bytes(), scalar_bytes.bytes()) << "n=" << n;
  }
}

TEST(CountSketchDeathTest, InvalidParameters) {
  EXPECT_DEATH(CountSketch(0, 8, 1), "depth");
  EXPECT_DEATH(CountSketch(2, 0, 1), "width");
}

TEST(CountSketchDeathTest, MergeRequiresIdenticalConfig) {
  CountSketch a(3, 64, 1);
  CountSketch b(3, 64, 2);
  EXPECT_DEATH(a.Merge(b), "identical shape and seed");
}

}  // namespace
}  // namespace mergeable
